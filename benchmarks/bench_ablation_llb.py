"""X3 — LLB priority-direction ablation.

The FLB paper's related-work text describes LLB's candidate selection as
using the "least bottom level", while the LLB paper itself prioritises the
*largest* bottom level.  Our DSC-LLB defaults to 'largest' (DESIGN.md §4.4);
this bench measures what the other reading would have cost.
"""

import numpy as np
import pytest

from repro.bench import run_ablation_llb
from repro.schedulers import dsc, llb


def bench_llb_largest(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 5.0)]
    clustering = dsc(graph)
    schedule = benchmark(llb, graph, clustering, 8, priority="largest")
    assert schedule.complete


def bench_llb_least(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 5.0)]
    clustering = dsc(graph)
    schedule = benchmark(llb, graph, clustering, 8, priority="least")
    assert schedule.complete


@pytest.fixture(scope="module")
def llb_report(bench_tasks, bench_seeds):
    return run_ablation_llb(target_tasks=bench_tasks, seeds=bench_seeds, procs=(4, 16))


def test_llb_largest_no_worse_on_average(llb_report):
    """'largest' must be at least as good as 'least' on suite average —
    the basis for our default (and for reading the paper's 'least' as a
    description slip)."""
    assert llb_report.data["mean"] >= 0.97


def test_llb_both_directions_produce_valid_ratios(llb_report):
    ratios = np.asarray(llb_report.data["ratios"])
    assert (ratios > 0).all()
    assert np.isfinite(ratios).all()
