"""X2 — FLB vs ETF tie-breaking ablation (paper Section 6.2).

FLB and ETF provably pick a pair with the same minimum start time at every
iteration (Theorem 3, tested in tests/test_flb_oracle.py); any makespan
difference comes purely from how ties between equally early pairs are
broken.  The paper attributes FLB's up-to-12% wins over ETF to its dynamic
(message-arrival) priorities versus ETF's static ones.

This bench quantifies the gap distribution on the benchmark suite.
"""

import numpy as np
import pytest

from repro.bench import run_ablation_ties
from repro.schedulers import SCHEDULERS


def bench_ablation_flb_vs_etf(benchmark, suite_by_problem):
    graph = suite_by_problem[("stencil", 5.0)]

    def run():
        return (
            SCHEDULERS["flb"](graph, 8).makespan,
            SCHEDULERS["etf"](graph, 8).makespan,
        )

    flb_span, etf_span = benchmark(run)
    benchmark.extra_info["flb_over_etf"] = round(flb_span / etf_span, 4)


@pytest.fixture(scope="module")
def tie_report(bench_tasks, bench_seeds):
    return run_ablation_ties(target_tasks=bench_tasks, seeds=bench_seeds, procs=(4, 16))


def test_ties_mean_ratio_near_one(tie_report):
    """On suite average FLB and ETF are equivalent to within a few percent
    (they optimise the same criterion)."""
    assert tie_report.data["mean"] == pytest.approx(1.0, abs=0.08)


def test_ties_individual_gaps_bounded(tie_report):
    """Per-instance gaps stay inside a generous band around the paper's
    reported 12%-ish maximum (random weights differ from theirs)."""
    ratios = np.asarray(tie_report.data["ratios"])
    assert ratios.min() > 0.7
    assert ratios.max() < 1.35


def test_ties_report_renders(tie_report):
    assert "FLB/ETF makespan ratio" in tie_report.text


class TestTiePreferenceKnob:
    """The paper resolves EP/non-EP start-time ties toward the non-EP task;
    this measures what the opposite policy would do."""

    def test_policies_close_with_continuous_weights(self, suite_by_problem):
        # Even with continuous weights, EP/non-EP ties occur whenever both
        # candidates are bound by the same processor's ready time, so exact
        # equality is not guaranteed — but the policies stay close.
        from repro.core import flb

        graph = suite_by_problem[("stencil", 0.2)]
        a = flb(graph, 8).makespan
        b = flb(graph, 8, prefer_non_ep_on_tie=False).makespan
        assert b == pytest.approx(a, rel=0.1)

    def test_policies_comparable_with_unit_weights(self):
        import numpy as np

        from repro.core import flb
        from repro.workloads import fork_join, lu, stencil

        ratios = []
        for builder in (
            lambda: lu(20, None, ccr=1.0),
            lambda: stencil(10, 10, None, ccr=1.0),
            lambda: fork_join(6, 8, None, ccr=1.0),
        ):
            g = builder()  # unit weights maximise ties
            paper = flb(g, 8).makespan
            flipped = flb(g, 8, prefer_non_ep_on_tie=False).makespan
            ratios.append(flipped / paper)
        mean = float(np.mean(ratios))
        # Neither policy dominates by a large margin on suite average.
        assert 0.8 < mean < 1.2
