"""Batch dispatch payload and throughput: inline pickle vs. the graph plane.

Two questions, answered at bench scale (``REPRO_BENCH_TASKS``, default 300):

* **bytes/job** — how many bytes cross the supervisor->worker pipe per job
  when the graph rides inline in every ``BatchJob``, vs. when jobs carry a
  16-byte-ish segment key and the graph crosses once through shared memory
  (segment bytes amortised over the sweep).
* **jobs/s** — end-to-end ``schedule_many`` throughput on a repeated-graph
  sweep for the inline path, the keyed path, and the keyed path fronted by
  the content-addressed result cache (second pass = pure hits).

Run directly for a table (recorded in ``results/batch_payload.txt``)::

    PYTHONPATH=src python benchmarks/bench_batch_payload.py [--tasks N]

or through pytest for the ``bench_*`` timings.
"""

import argparse
import pickle
import time
from dataclasses import replace

from repro.batch import BatchJob, BatchScheduler, schedule_many
from repro.graphstore import GraphStore
from repro.resultcache import ResultCache
from repro.util.rng import make_rng
from repro.workloads import lu, lu_size_for_tasks

SWEEP = [(p, a) for p in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
         for a in ("flb", "fcp")]


def _jobs(graph):
    return [BatchJob(graph=graph, procs=p, algo=a, tag=f"{p}/{a}")
            for p, a in SWEEP]


def payload_bytes(graph):
    """(inline bytes/job, keyed bytes/job incl. amortised segment)."""
    jobs = _jobs(graph)
    inline = sum(len(pickle.dumps((job, False))) for job in jobs) / len(jobs)
    with GraphStore() as store:
        key = store.register(graph)
        keyed_wire = sum(
            len(pickle.dumps((replace(job, graph=None, graph_key=key), False)))
            for job in jobs
        ) / len(jobs)
        segment = store.total_bytes()
    return inline, keyed_wire + segment / len(jobs), segment


def _best(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def throughput(graph, workers=2, passes=3, repeats=2):
    """jobs/s for inline, keyed, and keyed+cache serving of the sweep."""
    jobs = _jobs(graph)
    n = passes * len(jobs)

    def inline():
        for _ in range(passes):
            schedule_many(jobs, workers=workers, share_graphs=False)

    def keyed():
        for _ in range(passes):
            schedule_many(jobs, workers=workers, share_graphs=True)

    def cached():
        with BatchScheduler(workers=workers) as bs:
            for _ in range(passes):
                bs.run(jobs)

    return {
        "inline": n / _best(inline, repeats),
        "keyed": n / _best(keyed, repeats),
        "keyed+cache": n / _best(cached, repeats),
    }


# -- pytest-benchmark entry points ------------------------------------------

def bench_dispatch_inline(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 0.2)]
    jobs = _jobs(graph)
    benchmark.extra_info["bytes_per_job"] = round(payload_bytes(graph)[0])
    benchmark(lambda: schedule_many(jobs, workers=2, share_graphs=False))


def bench_dispatch_keyed(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 0.2)]
    jobs = _jobs(graph)
    benchmark.extra_info["bytes_per_job"] = round(payload_bytes(graph)[1])
    benchmark(lambda: schedule_many(jobs, workers=2, share_graphs=True))


def bench_result_cache_hits(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 0.2)]
    jobs = _jobs(graph)
    cache = ResultCache(64)
    schedule_many(jobs, workers=2, cache=cache)  # warm: all misses
    benchmark(lambda: schedule_many(jobs, workers=2, cache=cache))


# -- script mode ------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=None,
                        help="target task count (default REPRO_BENCH_TASKS/300)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--passes", type=int, default=3)
    args = parser.parse_args(argv)

    if args.tasks is None:
        import os
        args.tasks = int(os.environ.get("REPRO_BENCH_TASKS", 300))

    graph = lu(lu_size_for_tasks(args.tasks), make_rng(0), ccr=1.0)
    print(f"graph: lu, V={graph.num_tasks}, E={graph.num_edges}; "
          f"sweep: {len(SWEEP)} jobs x {args.passes} passes, "
          f"workers={args.workers}")

    inline_b, keyed_b, segment = payload_bytes(graph)
    print(f"bytes/job  inline: {inline_b:>10.0f}")
    print(f"bytes/job  keyed:  {keyed_b:>10.0f}  "
          f"(wire {keyed_b - segment / len(SWEEP):.0f} + segment "
          f"{segment}/{len(SWEEP)} jobs)  x{inline_b / keyed_b:.1f} smaller")

    jps = throughput(graph, workers=args.workers, passes=args.passes)
    for label in ("inline", "keyed", "keyed+cache"):
        ratio = jps[label] / jps["inline"]
        print(f"jobs/s  {label:<12}{jps[label]:>8.1f}   x{ratio:.2f} vs inline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
