"""X5 — degradation under sender-port link contention.

The paper's machine model is contention-free; this extension re-executes
schedules on a single-port sender model and measures how much of the
promised makespan survives.  Expected shape: degradation grows as bandwidth
shrinks and as CCR grows, and communication-minimising schedules (DSC-LLB)
degrade less than communication-oblivious ones.
"""

import pytest

from repro.bench import run_contention
from repro.schedulers import SCHEDULERS
from repro.sim import execute_contended


@pytest.mark.parametrize("bandwidth", [0.5, 2.0])
def bench_contended_execution(benchmark, suite_by_problem, bandwidth):
    graph = suite_by_problem[("fft", 5.0)]
    schedule = SCHEDULERS["flb"](graph, 8)
    result = benchmark(execute_contended, schedule, bandwidth)
    assert result.makespan > 0


@pytest.fixture(scope="module")
def contention_report(bench_tasks):
    return run_contention(target_tasks=bench_tasks, seeds=1, procs=8)


def test_contention_monotone_in_bandwidth(contention_report):
    bandwidths = contention_report.data["bandwidths"]
    for algo, means in contention_report.data["means"].items():
        values = [means[bw] for bw in bandwidths]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9, f"{algo}: degradation not monotone"


def test_contention_never_below_one(contention_report):
    for means in contention_report.data["means"].values():
        for value in means.values():
            assert value >= 1.0 - 1e-9


def test_dsc_llb_degrades_least_at_low_bandwidth(contention_report):
    """The communication-minimising multi-step schedule keeps more of its
    promise under severe contention."""
    means = contention_report.data["means"]
    low_bw = contention_report.data["bandwidths"][0]
    assert means["dsc-llb"][low_bw] <= means["flb"][low_bw]
    assert means["dsc-llb"][low_bw] <= means["mcp"][low_bw]


def test_high_bandwidth_converges(contention_report):
    high_bw = contention_report.data["bandwidths"][-1]
    for means in contention_report.data["means"].values():
        assert means[high_bw] == pytest.approx(1.0, abs=0.25)
