"""X6 — duplication quality/cost trade-off (DSH vs FLB).

The paper's Section 1 taxonomy: "Duplicating tasks results in better
scheduling performance but significantly increases scheduling cost."
This bench measures both halves of that sentence.
"""

import numpy as np
import pytest

from repro.bench import run_duplication
from repro.core import flb
from repro.duplication import dsh


def bench_dsh(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 5.0)]
    schedule = benchmark(dsh, graph, 8)
    assert schedule.complete


def bench_flb_same_instance(benchmark, suite_by_problem):
    graph = suite_by_problem[("lu", 5.0)]
    schedule = benchmark(flb, graph, 8)
    assert schedule.complete


@pytest.fixture(scope="module")
def dup_report(bench_tasks):
    return run_duplication(target_tasks=min(bench_tasks, 400), seeds=1, procs=8)


def test_duplication_improves_quality_on_average(dup_report):
    quality = np.asarray(dup_report.data["quality"])  # DSH/FLB makespans
    assert quality.mean() <= 1.02


def test_duplication_costs_more(dup_report):
    cost = np.asarray(dup_report.data["cost"])  # DSH/FLB scheduling times
    assert cost.mean() > 1.5


def test_report_renders(dup_report):
    assert "DSH/FLB makespan ratio" in dup_report.text
