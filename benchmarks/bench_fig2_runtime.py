"""Fig. 2 — scheduling algorithm costs (running time) versus P.

The paper (Pentium Pro 233 MHz) reports: ETF by far the most expensive and
growing steeply with P (185 ms at P=2 to 2.6 s at P=32); MCP growing but an
order cheaper (41 -> 139 ms); DSC-LLB roughly flat (~180 ms); FCP and FLB
cheapest and nearly flat (33-41 ms and 38-49 ms).

Each ``bench_*`` function times one algorithm at one processor count over
the three Fig. 2 problems (LU, Laplace, Stencil); the ``test_fig2_shape``
check asserts the paper's qualitative ordering on this machine.
"""

import pytest

from repro.bench import FIGURE_ALGORITHMS
from repro.metrics import time_scheduler
from repro.schedulers import SCHEDULERS

FIG2_PROBLEMS = ("lu", "laplace", "stencil")
FIG2_PROCS = (2, 8, 32)


def _graphs(suite_by_problem, ccr=0.2):
    return [suite_by_problem[(prob, ccr)] for prob in FIG2_PROBLEMS]


@pytest.mark.parametrize("procs", FIG2_PROCS)
@pytest.mark.parametrize("algo", FIGURE_ALGORITHMS)
def bench_fig2(benchmark, suite_by_problem, algo, procs):
    graphs = _graphs(suite_by_problem)
    scheduler = SCHEDULERS[algo]
    benchmark.extra_info["V"] = sum(g.num_tasks for g in graphs)

    def run():
        return [scheduler(g, procs).makespan for g in graphs]

    spans = benchmark(run)
    assert all(m > 0 for m in spans)


def test_fig2_shape(suite_by_problem):
    """The paper's qualitative cost ordering must hold:

    * ETF is the most expensive at every P and grows superlinearly with P;
    * FLB and FCP are the cheapest and nearly flat in P;
    * FLB stays within a small factor of FCP (paper: comparable);
    * MCP's cost grows with P but stays well below ETF's.
    """
    graphs = _graphs(suite_by_problem)

    def cost(algo, procs):
        return sum(
            time_scheduler(SCHEDULERS[algo], g, procs, repeats=3) for g in graphs
        )

    lo, hi = 2, 32
    costs = {
        algo: {p: cost(algo, p) for p in (lo, hi)}
        for algo in ("flb", "fcp", "mcp", "etf")
    }
    # ETF dominates everyone.
    for algo in ("flb", "fcp", "mcp"):
        assert costs["etf"][lo] > costs[algo][lo]
        assert costs["etf"][hi] > costs[algo][hi]
    # ETF grows strongly with P; FLB and FCP stay nearly flat.
    assert costs["etf"][hi] / costs["etf"][lo] > 3.0
    assert costs["flb"][hi] / costs["flb"][lo] < 2.0
    assert costs["fcp"][hi] / costs["fcp"][lo] < 2.0
    # FLB is within a small constant factor of FCP (paper: "same level").
    assert costs["flb"][hi] < 4.0 * costs["fcp"][hi]
    # MCP at P=32 is far cheaper than ETF at P=32.
    assert costs["mcp"][hi] < 0.5 * costs["etf"][hi]
