"""Fig. 3 — FLB speedup versus P, per problem and CCR.

The paper reports two behaviour classes: Stencil and FFT (regular, local
communication) achieve near-linear speedup, while LU and Laplace (fork/join
heavy) saturate at large P; CCR = 5.0 depresses speedup across the board
relative to CCR = 0.2.

``bench_*`` functions time FLB at the largest processor count per problem;
``test_fig3_shape`` asserts the qualitative speedup behaviour.
"""

import pytest

from repro.bench import PAPER_PROBLEMS
from repro.core import flb
from repro.metrics import speedup

FIG3_PROCS = (1, 2, 4, 8, 16, 32)


@pytest.mark.parametrize("ccr", [0.2, 5.0])
@pytest.mark.parametrize("problem", PAPER_PROBLEMS)
def bench_fig3_flb(benchmark, suite_by_problem, problem, ccr):
    graph = suite_by_problem[(problem, ccr)]
    benchmark.extra_info["V"] = graph.num_tasks
    schedule = benchmark(flb, graph, 32)
    benchmark.extra_info["speedup_P32"] = round(speedup(schedule), 3)
    assert schedule.makespan > 0


def _speedups(graph, procs=FIG3_PROCS):
    return {p: speedup(flb(graph, p)) for p in procs}


def test_fig3_shape_coarse_grain(suite_by_problem):
    """At CCR = 0.2 every problem gains substantially from parallelism, and
    the regular problems (stencil, fft) scale further than LU."""
    s = {prob: _speedups(suite_by_problem[(prob, 0.2)]) for prob in PAPER_PROBLEMS}
    for prob in PAPER_PROBLEMS:
        assert s[prob][1] == pytest.approx(1.0, rel=1e-6)
        assert s[prob][8] > 3.0
        # Speedup should be (weakly) non-decreasing in P, within tolerance.
        for lo, hi in zip(FIG3_PROCS, FIG3_PROCS[1:]):
            assert s[prob][hi] >= s[prob][lo] * 0.9
    # The regular problems dominate LU at scale (the paper's two classes).
    assert s["stencil"][32] > s["lu"][32]
    assert s["fft"][32] > s["lu"][32]


def test_fig3_shape_fine_grain(suite_by_problem):
    """CCR = 5.0 yields uniformly lower speedup than CCR = 0.2 at P = 32."""
    for prob in PAPER_PROBLEMS:
        coarse = speedup(flb(suite_by_problem[(prob, 0.2)], 32))
        fine = speedup(flb(suite_by_problem[(prob, 5.0)], 32))
        assert fine <= coarse + 1e-9


def test_fig3_speedup_well_defined(suite_by_problem):
    """Speedup is >= 1 at P=1 by definition and bounded by P."""
    for (prob, ccr), graph in suite_by_problem.items():
        for procs in (1, 4, 32):
            sp = speedup(flb(graph, procs))
            assert 0 < sp <= procs + 1e-9
