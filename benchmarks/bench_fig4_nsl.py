"""Fig. 4 — normalized schedule lengths (vs MCP) per problem, CCR and P.

The paper's findings: MCP and ETF trade the lead depending on problem and
granularity (MCP up to ~23% better on LU; ETF up to ~5% better on Laplace);
FLB tracks ETF (same selection criterion) and stays comparable to MCP/FCP;
DSC-LLB is consistently worse (typically <= 20%, up to ~42% longer); FLB
consistently outperforms DSC-LLB.

``bench_*`` times the full five-algorithm comparison on one instance;
``test_fig4_shape`` asserts the orderings on suite averages.
"""

import pytest

from repro.bench import FIGURE_ALGORITHMS, run_sweep
from repro.schedulers import SCHEDULERS

FIG4_PROCS = (2, 8, 32)


@pytest.mark.parametrize("problem", ["lu", "stencil", "laplace"])
def bench_fig4_all_algorithms(benchmark, suite_by_problem, problem):
    graph = suite_by_problem[(problem, 5.0)]

    def run():
        return {a: SCHEDULERS[a](graph, 8).makespan for a in FIGURE_ALGORITHMS}

    spans = benchmark(run)
    benchmark.extra_info["nsl_flb"] = round(spans["flb"] / spans["mcp"], 4)
    assert spans["flb"] > 0


@pytest.fixture(scope="module")
def nsl_records(fig_suite):
    """Per-instance makespans for all algorithms at the Fig. 4 processor
    counts, on the (smaller) benchmark suite."""
    instances = [i for i in fig_suite if i.problem in ("lu", "stencil", "laplace")]
    records = run_sweep(instances, FIGURE_ALGORITHMS, FIG4_PROCS)
    spans = {}
    for rec in records:
        spans.setdefault((rec.problem, rec.ccr, rec.seed_index, rec.procs), {})[
            rec.algorithm
        ] = rec.makespan
    return spans


def _mean_nsl(spans, algo, ref="mcp"):
    ratios = [d[algo] / d[ref] for d in spans.values()]
    return sum(ratios) / len(ratios)


def test_fig4_shape_flb_tracks_etf(nsl_records):
    """FLB and ETF share the selection criterion; their suite-average NSLs
    must be close (paper: differences only from tie-breaking, <= ~12%)."""
    assert _mean_nsl(nsl_records, "flb") == pytest.approx(
        _mean_nsl(nsl_records, "etf"), abs=0.12
    )


def test_fig4_shape_one_step_algorithms_comparable(nsl_records):
    """FLB, FCP, ETF all land within ~15% of MCP on suite average."""
    for algo in ("flb", "fcp", "etf"):
        assert _mean_nsl(nsl_records, algo) == pytest.approx(1.0, abs=0.15)


def test_fig4_shape_flb_beats_dsc_llb(nsl_records):
    """The paper's headline: FLB consistently outperforms DSC-LLB.  On suite
    average DSC-LLB must be no better than FLB, and FLB must win the
    majority of per-instance comparisons where they differ."""
    assert _mean_nsl(nsl_records, "dsc-llb") >= _mean_nsl(nsl_records, "flb") - 0.02
    wins = losses = 0
    for d in nsl_records.values():
        if d["flb"] < d["dsc-llb"] - 1e-9:
            wins += 1
        elif d["dsc-llb"] < d["flb"] - 1e-9:
            losses += 1
    assert wins >= losses


def test_fig4_shape_dsc_llb_within_paper_band(nsl_records):
    """DSC-LLB's deficit stays in the paper's reported band (typically
    <= 20%, occasionally up to ~42% worse than the one-step algorithms)."""
    mean = _mean_nsl(nsl_records, "dsc-llb")
    assert mean < 1.45
    worst = max(d["dsc-llb"] / d["mcp"] for d in nsl_records.values())
    assert worst < 2.0
