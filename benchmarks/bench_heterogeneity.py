"""X7 — processor-speed heterogeneity.

The paper's machine is homogeneous; its authors' later work extended these
schedulers to heterogeneous systems.  This bench measures how much the
homogeneous-minded algorithms (FLB, MCP) leave on the table as processor
speeds skew, against HEFT as the heterogeneity-aware reference.
"""

import pytest

from repro.bench import run_heterogeneity
from repro.machine import MachineModel
from repro.schedulers import heft


@pytest.mark.parametrize("skew", [1.0, 4.0])
def bench_heft_under_skew(benchmark, suite_by_problem, skew):
    graph = suite_by_problem[("lu", 0.2)]
    procs = 8
    speeds = tuple(skew ** (-i / (procs - 1)) for i in range(procs))
    machine = MachineModel(procs, speeds=speeds)
    schedule = benchmark(heft, graph, machine=machine)
    assert schedule.complete


@pytest.fixture(scope="module")
def hetero_report(bench_tasks):
    return run_heterogeneity(target_tasks=min(bench_tasks, 400), seeds=1, procs=8)


def test_heft_at_parity_on_homogeneous(hetero_report):
    """At skew 1 (homogeneous) the algorithms are comparable."""
    means = hetero_report.data["means"]
    for algo in means:
        assert means[algo][1.0] == pytest.approx(1.0, abs=0.15)


def test_gap_grows_with_skew(hetero_report):
    """Homogeneous-minded schedulers fall further behind HEFT as the
    machine skews."""
    means = hetero_report.data["means"]
    skews = hetero_report.data["skews"]
    for algo in ("flb", "mcp"):
        values = [means[algo][s] for s in skews]
        assert values[-1] > values[0]
        assert values[-1] > 1.2  # substantial at the largest skew


def test_heft_is_the_reference(hetero_report):
    means = hetero_report.data["means"]
    for s in hetero_report.data["skews"]:
        assert means["heft"][s] == pytest.approx(1.0)
