"""The machine-aware plane end to end: FLB on the paper machine vs HEFT
on related machines, across speed skews.

Unlike :mod:`benchmarks.bench_heterogeneity` (which calls the schedulers
directly to isolate algorithm quality), this benchmark drives the full
first-class plane — ``SchedulingOptions(machine=...)`` through
:func:`repro.api.schedule_graph`, with the independent certifier run on
every schedule (the greedy F001/F002 certificate for FLB, the
related-machines F003 replay for HEFT) — so the numbers cover what a
caller of the public API actually pays, certification included.

For each skew ``s`` the machine has P processors with speeds
``s**(-i/(P-1))`` (geometric from 1 down to 1/s; skew 1 is the paper's
homogeneous machine).  Reported per workload and skew:

* FLB's makespan on the *homogeneous* model of the same machine (speeds
  averaged into one uniform rate — what a heterogeneity-blind deployment
  would provision), executed on the true machine's mean rate;
* HEFT's makespan on the true related-machines model;
* the certify wall time for each.

Run as a script to produce ``results/heterogeneous.txt``::

    PYTHONPATH=src python benchmarks/bench_heterogeneous.py
    PYTHONPATH=src python benchmarks/bench_heterogeneous.py --tasks 400
"""

import argparse
import time
from pathlib import Path

from repro.api import SchedulingOptions, schedule_graph
from repro.machine import MachineModel
from repro.util.rng import make_rng
from repro.verify import certify
from repro.workloads import lu, stencil
from repro.workloads.stencil import stencil_size_for_tasks

PROCS = 8
SKEWS = (1.0, 2.0, 4.0, 8.0)


def _machine(skew: float) -> MachineModel:
    speeds = tuple(skew ** (-i / (PROCS - 1)) for i in range(PROCS))
    return MachineModel(PROCS, speeds=speeds)


def _build(problem: str, tasks: int, seed: int):
    rng = make_rng(seed)
    if problem == "lu":
        n = max(4, round((2 * tasks) ** 0.5))
        return lu(n, rng, ccr=1.0)
    width, steps = stencil_size_for_tasks(tasks)
    return stencil(width, steps, rng, ccr=1.0)


def _run(graph, options):
    t0 = time.perf_counter()
    schedule = schedule_graph(graph, options)
    sched_s = time.perf_counter() - t0
    flavor = "heft" if options.algorithm == "heft" else "flb"
    t0 = time.perf_counter()
    cert = certify(schedule, flavor=flavor)
    cert_s = time.perf_counter() - t0
    assert cert.ok, cert.render()
    return schedule.makespan, sched_s, cert_s


def run(tasks: int, seeds: int):
    lines = [
        "== heterogeneous: the machine-aware plane end to end ==",
        f"FLB on the homogeneous mean-rate model vs HEFT on related machines, "
        f"P={PROCS}, ~{tasks} tasks, {seeds} seed(s); makespans are means, "
        "times are per-schedule certify wall time",
        "",
    ]
    header = (
        f"{'workload':<10} {'skew':>5} {'flb(homog)':>12} {'heft(related)':>14} "
        f"{'ratio':>7} {'certify flb':>12} {'certify heft':>13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for problem in ("lu", "stencil"):
        for skew in SKEWS:
            machine = _machine(skew)
            mean_speed = sum(machine.speeds) / PROCS
            # The heterogeneity-blind deployment: one uniform rate equal to
            # the true machine's mean — same aggregate capacity, no per-
            # processor knowledge.
            homog = MachineModel(PROCS, speeds=(mean_speed,) * PROCS)
            flb_ms = heft_ms = flb_cert = heft_cert = 0.0
            for seed in range(seeds):
                graph = _build(problem, tasks, seed)
                ms, _, c = _run(
                    graph, SchedulingOptions(machine=homog, algorithm="flb")
                )
                flb_ms += ms
                flb_cert += c
                ms, _, c = _run(
                    graph, SchedulingOptions(machine=machine, algorithm="heft")
                )
                heft_ms += ms
                heft_cert += c
            flb_ms /= seeds
            heft_ms /= seeds
            lines.append(
                f"{problem:<10} {skew:>5.1f} {flb_ms:>12.2f} {heft_ms:>14.2f} "
                f"{flb_ms / heft_ms:>7.3f} {flb_cert / seeds:>11.4f}s "
                f"{heft_cert / seeds:>12.4f}s"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=400)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument(
        "--out", default=str(Path("results") / "heterogeneous.txt")
    )
    args = parser.parse_args()
    text = run(args.tasks, args.seeds)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    print(text)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
