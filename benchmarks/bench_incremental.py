"""Warm-start incremental rescheduling: reuse-fraction sweep + perf gate.

Serving traffic reschedules *mutated* DAGs far more often than fresh ones.
The warm-start path (:mod:`repro.incremental` + the ``base=`` replay in
:func:`repro.core.flb_array.flb_array`) diffs the new graph against a base
schedule, replays the clean schedule prefix verbatim, and runs the FLB
kernel only over the dirty suffix — bit-identical to a cold run.

This benchmark measures the payoff across mutation sizes (0.1% .. 50% of
tasks retuned, always *late* tasks — early mutations legitimately kill the
prefix and fall back to cold) on 10^4–10^5-task stencil and LU graphs.
Warm timings are honest end-to-end calls on freshly-built mutants: they
include the vectorized diff, the incremental re-hash of the dirty set, and
the suffix replay.  The base graph's own hash sweep is primed once, as the
serving planes do at base-store time.

Run as a script to produce ``results/incremental.txt``::

    PYTHONPATH=src python benchmarks/bench_incremental.py
    PYTHONPATH=src python benchmarks/bench_incremental.py --max-v 10000

The ``perfgate`` test pins the headline acceptance number: a 10^5-task
reschedule with <= 1% mutated must be at least 5x faster warm than cold,
bit-identical, and pass the independent certifier.
"""

import gc
import math
import time

import numpy as np
import pytest

from repro.core.flb_array import flb_array
from repro.graph.properties import bottom_levels_array, subgraph_hashes
from repro.graph.taskgraph import TaskGraph
from repro.util.rng import make_rng
from repro.workloads import lu, stencil
from repro.workloads.stencil import stencil_size_for_tasks

PROCS = 16
FRACTIONS = (0.001, 0.01, 0.1, 0.5)


def _off_chain_tasks(graph):
    """Tasks that are on no predecessor's max-successor chain, in
    topological order.

    A bottom-level is ``comp + max(comm + BL(succ))``; decreasing the comp
    of a task that never *achieves* that max leaves every other task's
    bottom level bitwise unchanged, so the retune dirties exactly the task
    itself (plus its hash descendants) instead of cascading an ancestor
    chain back to the entry tasks and killing the reusable prefix.  The
    test replicates the exact float ops of ``bottom_levels_array``, so
    ties are conservatively treated as on-chain.
    """
    csr = graph.csr()
    bl = bottom_levels_array(graph)
    comps = graph.comps_array()
    src = np.repeat(np.arange(graph.num_tasks), np.diff(csr.succ_ptr))
    on_max = comps[src] + (csr.succ_comm + bl[csr.succ_ids]) == bl[src]
    critical = np.zeros(graph.num_tasks, dtype=bool)
    critical[csr.succ_ids[on_max]] = True
    return [t for t in graph.topological_order if not critical[t]]


def _mutant(graph, fraction):
    """Rebuild ``graph`` with ``ceil(fraction * V)`` late off-chain tasks
    retuned (comp scaled down).  Deterministic: repeated calls with the
    same arguments build bitwise-identical mutants.

    The latest eligible tasks are picked, so small fractions stay confined
    to the tail of the schedule — the realistic serving delta (retuning
    cost estimates off the critical path).  Large fractions necessarily
    reach early tasks and legitimately fall back to a cold run.
    """
    k = max(1, math.ceil(fraction * graph.num_tasks))
    late = set(_off_chain_tasks(graph)[-k:])
    out = TaskGraph()
    for t in range(graph.num_tasks):
        comp = graph.comp(t)
        out.add_task(comp * 0.75 if t in late else comp, graph._names[t])
    for s, d, c in graph.edges():
        out.add_edge(s, d, c)
    return out.freeze()


def _prime(graph):
    """Warm the caches a served graph would already carry (CSR, bottom
    levels) without touching the subgraph-hash cache the warm path must
    build incrementally."""
    graph.freeze()
    graph.csr()
    bottom_levels_array(graph)
    return graph


def _bench_pair(graph, fraction, repeats):
    """(cold seconds, warm seconds, warm stats) for one mutation size.

    Every repeat gets freshly-built, identically-primed mutants so the
    incremental hash seeding is always inside the warm timed region.  Cold
    and warm runs are *interleaved* (cold, warm, cold, warm, ...) and each
    side takes its min, so a throttling or noisy-neighbour episode hits
    both sides of the ratio instead of whichever block it lands on.
    """
    base = flb_array(_prime(graph), PROCS, backend="array")
    subgraph_hashes(graph)  # primed at base-store time by the serving planes

    cold = warm = float("inf")
    stats = {}
    for _ in range(repeats):
        # Each mutant is built immediately before its timed run (not
        # batched up front): with V=10^5 a batch of prebuilt graphs spreads
        # the interpreter heap across hundreds of MB and the pointer-chasing
        # kernels lose cache locality, doubling the measured times.
        cold_mutant = _prime(_mutant(graph, fraction))
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            flb_array(cold_mutant, PROCS, backend="array")
            cold = min(cold, time.perf_counter() - t0)
        finally:
            gc.enable()
        del cold_mutant
        warm_mutant = _prime(_mutant(graph, fraction))
        gc.collect()
        gc.disable()
        try:
            stats.clear()
            t0 = time.perf_counter()
            flb_array(warm_mutant, PROCS, backend="array", base=base,
                      warm_stats=stats)
            warm = min(warm, time.perf_counter() - t0)
        finally:
            gc.enable()
        del warm_mutant
    return cold, warm, dict(stats)


def run_incremental_sweep(max_v=100_000, procs=PROCS, out=None):
    """Reuse-fraction sweep; returns row dicts and writes ``out``."""
    from pathlib import Path

    from repro.util.tables import format_table

    global PROCS
    PROCS = procs
    graphs = []
    for v in (10_000, 100_000):
        if v <= max_v:
            cells, steps = stencil_size_for_tasks(v)
            graphs.append((f"stencil-{v // 1000}k",
                           stencil(cells, steps, make_rng(7))))
    if max_v >= 10_000:
        graphs.append(("lu-10k", lu(140, make_rng(7))))

    rows = []
    for label, graph in graphs:
        repeats = 3 if graph.num_tasks <= 20_000 else 2
        for fraction in FRACTIONS:
            cold, warm, stats = _bench_pair(graph, fraction, repeats)
            served = "fallback" not in stats
            reuse = float(stats.get("fraction", 0.0)) if served else 0.0
            rows.append({
                "graph": label,
                "V": graph.num_tasks,
                "mutated": fraction,
                "reuse": reuse,
                "cold_ms": cold * 1e3,
                "warm_ms": warm * 1e3,
                "speedup": cold / warm if warm > 0 else float("inf"),
                "served": served,
            })
            print(f"{label:>12}  mutated={fraction:>6.1%}  "
                  f"reuse={reuse:>6.1%}  cold={cold * 1e3:8.1f}ms  "
                  f"warm={warm * 1e3:8.1f}ms  "
                  f"speedup={rows[-1]['speedup']:5.1f}x"
                  f"{'' if served else '  (cold fallback)'}")

    text = "\n".join([
        "== incremental: warm-start rescheduling vs cold array kernel ==",
        f"late-task comp retunes, P={PROCS}; warm includes diff + "
        "incremental re-hash + suffix replay (bit-identical to cold)",
        format_table(
            ["graph", "V", "mutated", "reuse", "cold [ms]", "warm [ms]",
             "speedup"],
            [[r["graph"], r["V"], f"{r['mutated']:.1%}",
              f"{r['reuse']:.1%}" if r["served"] else "fallback",
              r["cold_ms"], r["warm_ms"], f"{r['speedup']:.1f}x"]
             for r in rows],
        ),
    ]) + "\n"
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {out}")
    print(text)
    return rows


# ---------------------------------------------------------------------------
# The acceptance gate
# ---------------------------------------------------------------------------


@pytest.mark.perfgate
def test_warm_start_beats_cold_5x_small_mutation():
    """10^5-task stencil with <= 1% of (late, off-chain) tasks retuned:
    the warm-start reschedule must be >= 5x faster than the cold array
    run, bit-identical to it, and pass the independent certifier."""
    from repro.verify import certify as certify_schedule
    from repro.verify import greedy_flavor

    cells, steps = stencil_size_for_tasks(100_000)
    graph = stencil(cells, steps, make_rng(7))
    cold_s, warm_s, stats = _bench_pair(graph, 0.001, repeats=3)

    assert "fallback" not in stats, f"warm path fell back: {stats}"
    assert stats["reused"] > 0.99 * graph.num_tasks

    speedup = cold_s / warm_s
    assert speedup >= 5.0, (
        f"warm-start speedup {speedup:.1f}x < 5x "
        f"(cold {cold_s * 1e3:.0f}ms, warm {warm_s * 1e3:.0f}ms)"
    )

    # Correctness outside the timed region: exact equality, then the
    # independent certificate on the warm result.
    base = flb_array(graph, PROCS, backend="array")
    mutant = _mutant(graph, 0.001)
    cold = flb_array(_prime(_mutant(graph, 0.001)), PROCS, backend="array")
    warm = flb_array(mutant, PROCS, backend="array", base=base)
    assert warm.makespan == cold.makespan
    for t in range(0, graph.num_tasks, 997):  # stride keeps the check fast
        assert warm.proc_of(t) == cold.proc_of(t)
        assert warm.start_of(t) == cold.start_of(t)
    cert = certify_schedule(warm, flavor=greedy_flavor("flb"))
    assert cert.ok, [v.code for v in cert.violations]


@pytest.mark.perfgate
def test_identical_resubmission_reuses_everything():
    """The no-change delta (an identical resubmission) must replay the
    whole schedule and cost far less than recomputing it."""
    cells, steps = stencil_size_for_tasks(20_000)
    graph = stencil(cells, steps, make_rng(7))
    base = flb_array(_prime(graph), PROCS, backend="array")
    subgraph_hashes(graph)
    resub = _prime(_resub(graph))
    stats = {}
    warm = flb_array(resub, PROCS, backend="array", base=base,
                     warm_stats=stats)
    assert stats.get("reused") == graph.num_tasks
    assert warm.makespan == base.makespan


def _resub(graph):
    """A bitwise-equal rebuild (identical resubmission)."""
    out = TaskGraph()
    for t in range(graph.num_tasks):
        out.add_task(graph.comp(t), graph._names[t])
    for s, d, c in graph.edges():
        out.add_edge(s, d, c)
    return out.freeze()


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    _parser = argparse.ArgumentParser(
        description="Warm-start incremental rescheduling sweep"
    )
    _parser.add_argument("--max-v", type=int, default=100_000)
    _parser.add_argument("--procs", type=int, default=16)
    _parser.add_argument(
        "-o", "--output",
        default=str(
            Path(__file__).resolve().parents[1] / "results" / "incremental.txt"
        ),
    )
    _args = _parser.parse_args()
    run_incremental_sweep(
        max_v=_args.max_v, procs=_args.procs, out=_args.output
    )
