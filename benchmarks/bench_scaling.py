"""X1 — complexity-scaling check for the paper's
``O(V (log W + log P) + E)`` claim.

On layered random graphs of fixed width (constant ``W``) with ``V`` and
``E`` growing linearly, FLB's time per task must stay near-constant, and
doubling ``P`` must cost at most the ``log P`` term.  ETF at the same sizes
grows like ``W * P`` per task, which is what makes it unusable at scale —
contrasted here at the smallest size only.

Run as a script to produce the large-V curve for the array kernel
(``results/scaling.txt``)::

    PYTHONPATH=src python benchmarks/bench_scaling.py          # 10^3 .. 10^6
    PYTHONPATH=src python benchmarks/bench_scaling.py --max-v 100000
"""

import pytest

from repro.core import flb
from repro.metrics import time_scheduler
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import layered_random

WIDTH = 25
SIZES = (500, 1000, 2000, 4000)


def _graph(v):
    return layered_random(v // WIDTH, WIDTH, make_rng(7), edge_density=0.15, ccr=1.0)


@pytest.mark.parametrize("v", SIZES)
def bench_flb_scaling_v(benchmark, v):
    graph = _graph(v)
    benchmark.extra_info["V"] = graph.num_tasks
    benchmark.extra_info["E"] = graph.num_edges
    schedule = benchmark(flb, graph, 16)
    assert schedule.complete


@pytest.mark.parametrize("procs", [2, 16, 128])
def bench_flb_scaling_p(benchmark, procs):
    graph = _graph(2000)
    schedule = benchmark(flb, graph, procs)
    assert schedule.complete


def test_scaling_near_linear_in_v():
    """Time per task from V=500 to V=4000 may grow only modestly (constant
    W, so only cache effects and the log terms move)."""
    per_task = {}
    for v in (500, 4000):
        g = _graph(v)
        per_task[v] = time_scheduler(flb, g, 16, repeats=3) / g.num_tasks
    assert per_task[4000] < 3.0 * per_task[500]


def test_scaling_gentle_in_p():
    """64x more processors must cost far less than 64x more time."""
    g = _graph(2000)
    t2 = time_scheduler(flb, g, 2, repeats=3)
    t128 = time_scheduler(flb, g, 128, repeats=3)
    assert t128 < 4.0 * t2


def test_scaling_flb_beats_etf_at_scale():
    """At V=1000, P=16, FLB must be at least an order of magnitude cheaper
    than ETF (the motivating cost gap)."""
    g = _graph(1000)
    t_flb = time_scheduler(flb, g, 16, repeats=3)
    t_etf = time_scheduler(SCHEDULERS["etf"], g, 16, repeats=1)
    assert t_etf > 10.0 * t_flb


def run_scaling_curve(max_v=1_000_000, procs=16, kernel="auto", out=None):
    """Time the array kernel on square stencil grids from 10^3 up to
    ``max_v`` tasks and write the per-task curve to ``out``.

    Square grids (``cells = steps = sqrt(V)``) keep the shape family fixed
    while V grows, so time/V directly tests the paper's
    ``O(V (log W + log P) + E)`` bound: with bounded degree (E ~ 3V) and
    slowly-growing W, the per-task cost must stay near-flat.  Returns the
    list of row dicts so callers (and the CI artifact step) can assert on
    the flatness ratio.
    """
    import gc
    import math
    import time as _time
    from pathlib import Path

    from repro.core.flb_array import flb_array, resolve_kernel
    from repro.util.rng import make_rng as _make_rng
    from repro.util.tables import format_table
    from repro.workloads import stencil

    backend = resolve_kernel(kernel)
    sizes = [v for v in (1_000, 10_000, 100_000, 1_000_000) if v <= max_v]
    rows = []
    for v in sizes:
        side = int(math.isqrt(v))
        graph = stencil(side, side, _make_rng(7))
        repeats = 3 if v <= 10_000 else 2
        best = float("inf")
        # The million-object graph makes generational GC sweeps dominate
        # the timed region at large V; they are allocator noise, not kernel
        # cost, so collect once up front and keep GC off while timing.
        gc.collect()
        gc.disable()
        try:
            for _ in range(repeats):
                t0 = _time.perf_counter()
                schedule = flb_array(graph, procs, backend=backend)
                best = min(best, _time.perf_counter() - t0)
        finally:
            gc.enable()
        assert schedule.complete
        rows.append({
            "V": graph.num_tasks,
            "E": graph.num_edges,
            "seconds": best,
            "us_per_task": best / graph.num_tasks * 1e6,
            "tasks_per_s": graph.num_tasks / best,
        })
        print(f"V={graph.num_tasks:>9,}  {best:8.3f}s  "
              f"{rows[-1]['us_per_task']:6.2f} us/task  "
              f"{rows[-1]['tasks_per_s']:>9,.0f} tasks/s")

    flat = None
    lo = next((r for r in rows if r["V"] >= 9_000), None)
    hi = rows[-1] if rows[-1]["V"] >= 100_000 else None
    if lo is not None and hi is not None and hi["V"] > lo["V"]:
        flat = hi["us_per_task"] / lo["us_per_task"]

    lines = [
        f"== scaling: FLB array kernel ({backend}) cost scaling in V ==",
        f"square 1-D stencil grids, P={procs}, bounded degree (E ~ 3V)",
        format_table(
            ["V", "E", "time [s]", "us/task", "tasks/s"],
            [[r["V"], r["E"], r["seconds"], r["us_per_task"],
              r["tasks_per_s"]] for r in rows],
        ),
    ]
    if flat is not None:
        lines.append(
            f"time/V from V={lo['V']:,} to V={hi['V']:,}: {flat:.2f}x "
            f"({'flat within 2x — near-linear' if flat < 2.0 else 'NOT flat'})"
        )
    text = "\n".join(lines) + "\n"
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {out}")
    print(text)
    return rows


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    _parser = argparse.ArgumentParser(
        description="FLB array-kernel V-scaling curve (10^3 .. 10^6 tasks)"
    )
    _parser.add_argument("--max-v", type=int, default=1_000_000)
    _parser.add_argument("--procs", type=int, default=16)
    _parser.add_argument("--kernel", default="auto")
    _parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parents[1] / "results" / "scaling.txt"),
    )
    _args = _parser.parse_args()
    run_scaling_curve(
        max_v=_args.max_v, procs=_args.procs, kernel=_args.kernel,
        out=_args.output,
    )
