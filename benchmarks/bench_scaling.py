"""X1 — complexity-scaling check for the paper's
``O(V (log W + log P) + E)`` claim.

On layered random graphs of fixed width (constant ``W``) with ``V`` and
``E`` growing linearly, FLB's time per task must stay near-constant, and
doubling ``P`` must cost at most the ``log P`` term.  ETF at the same sizes
grows like ``W * P`` per task, which is what makes it unusable at scale —
contrasted here at the smallest size only.
"""

import pytest

from repro.core import flb
from repro.metrics import time_scheduler
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import layered_random

WIDTH = 25
SIZES = (500, 1000, 2000, 4000)


def _graph(v):
    return layered_random(v // WIDTH, WIDTH, make_rng(7), edge_density=0.15, ccr=1.0)


@pytest.mark.parametrize("v", SIZES)
def bench_flb_scaling_v(benchmark, v):
    graph = _graph(v)
    benchmark.extra_info["V"] = graph.num_tasks
    benchmark.extra_info["E"] = graph.num_edges
    schedule = benchmark(flb, graph, 16)
    assert schedule.complete


@pytest.mark.parametrize("procs", [2, 16, 128])
def bench_flb_scaling_p(benchmark, procs):
    graph = _graph(2000)
    schedule = benchmark(flb, graph, procs)
    assert schedule.complete


def test_scaling_near_linear_in_v():
    """Time per task from V=500 to V=4000 may grow only modestly (constant
    W, so only cache effects and the log terms move)."""
    per_task = {}
    for v in (500, 4000):
        g = _graph(v)
        per_task[v] = time_scheduler(flb, g, 16, repeats=3) / g.num_tasks
    assert per_task[4000] < 3.0 * per_task[500]


def test_scaling_gentle_in_p():
    """64x more processors must cost far less than 64x more time."""
    g = _graph(2000)
    t2 = time_scheduler(flb, g, 2, repeats=3)
    t128 = time_scheduler(flb, g, 128, repeats=3)
    assert t128 < 4.0 * t2


def test_scaling_flb_beats_etf_at_scale():
    """At V=1000, P=16, FLB must be at least an order of magnitude cheaper
    than ETF (the motivating cost gap)."""
    g = _graph(1000)
    t_flb = time_scheduler(flb, g, 16, repeats=3)
    t_etf = time_scheduler(SCHEDULERS["etf"], g, 16, repeats=1)
    assert t_etf > 10.0 * t_flb
