"""Serving front-end under offered load: goodput vs shed rate.

Drives a real :class:`repro.serve.BackgroundServer` (localhost HTTP, the
wrapped scheduler running inline) with an open-loop request generator at
increasing offered rates.  Every request schedules the same registered
graph at a *distinct* processor count, so each admitted request is real
scheduling work (no result-cache hits) and the admission controller's
bounded backlog actually fills.

The interesting shape: goodput climbs with offered load until the service
saturates at roughly ``1 / service_time``, then flattens while the shed
rate (429 + ``Retry-After``) absorbs the excess — the fast-failure
behaviour the bounded queue buys over unbounded buffering.

Run directly to write the curve to ``results/serving.txt``::

    PYTHONPATH=src python benchmarks/bench_serving.py

or through pytest (``pytest benchmarks/bench_serving.py``) for the smoke
variants.
"""

import concurrent.futures
import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import SchedulingOptions
from repro.serve import BackgroundServer, ServeConfig
from repro.graph.io import to_json
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import lu, lu_size_for_tasks

#: Offered request rates (requests/second) for the sweep.  The top rates
#: sit well past the single-dispatcher capacity (~1/service_time) so the
#: shed-rate column actually engages.
OFFERED_RATES = (10, 50, 100, 200, 400)

#: Seconds of offered load per rate step.
WINDOW_SECONDS = 2.0

#: Admission bound — small, so the saturation knee shows at bench scale.
MAX_BACKLOG = 8

_TASKS = 2000


def _post(base: str, path: str, payload: dict) -> tuple:
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


class _LoadStep:
    """One offered-rate step's tallies."""

    def __init__(self, offered: int) -> None:
        self.offered = offered
        self.sent = 0
        self.ok = 0
        self.shed = 0
        self.other = 0
        self.latencies: list = []
        self.retry_hints: list = []
        self._lock = threading.Lock()

    def record(self, status: int, seconds: float, headers: dict) -> None:
        with self._lock:
            if status == 200:
                self.ok += 1
                self.latencies.append(seconds)
            elif status == 429:
                self.shed += 1
                hint = headers.get("Retry-After")
                if hint is not None:
                    self.retry_hints.append(int(hint))
            else:
                self.other += 1


def _drive(base: str, fingerprint: str, offered: int, window: float,
           procs_counter: list) -> _LoadStep:
    """Open-loop load: one request every ``1/offered`` seconds."""
    step = _LoadStep(offered)
    n_requests = max(1, int(offered * window))

    def fire(i: int) -> None:
        procs_counter[0] += 1
        payload = {
            "fingerprint": fingerprint,
            "procs": 2 + procs_counter[0],  # distinct => no cache hits
            "tenant": f"tenant-{i % 4}",
            "tag": f"load-{offered}-{i}",
        }
        t0 = time.perf_counter()
        status, _body, headers = _post(base, "/v1/schedule", payload)
        step.record(status, time.perf_counter() - t0, headers)

    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(max_workers=64) as pool:
        futures = []
        for i in range(n_requests):
            due = start + i / offered
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, i))
            step.sent += 1
        for fut in futures:
            fut.result()
    step.window = time.perf_counter() - start
    return step


def run_sweep(rates=OFFERED_RATES, window=WINDOW_SECONDS,
              max_backlog=MAX_BACKLOG, tasks=_TASKS):
    """Run the offered-load sweep; returns (steps, metadata dict)."""
    graph = lu(lu_size_for_tasks(tasks), make_rng(0))
    doc = json.loads(to_json(graph))
    config = ServeConfig(
        port=0, max_backlog=max_backlog,
        options=SchedulingOptions(),
    )
    steps = []
    with BackgroundServer(config) as srv:
        base = f"http://{srv.host}:{srv.port}"
        status, reg, _ = _post(base, "/v1/graphs", {"graph": doc})
        assert status == 200, reg
        fingerprint = reg["fingerprint"]
        procs_counter = [0]
        for offered in rates:
            steps.append(
                _drive(base, fingerprint, offered, window, procs_counter)
            )
        with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
            metrics_text = resp.read().decode()
    meta = {
        "graph_tasks": graph.num_tasks,
        "max_backlog": max_backlog,
        "window_seconds": window,
        "metrics_text": metrics_text,
    }
    return steps, meta


def render(steps, meta) -> str:
    rows = []
    for s in steps:
        goodput = s.ok / s.window if s.window else 0.0
        shed_rate = s.shed / s.sent if s.sent else 0.0
        lat = sorted(s.latencies)
        p50 = lat[len(lat) // 2] * 1e3 if lat else float("nan")
        hint = (sum(s.retry_hints) / len(s.retry_hints)
                if s.retry_hints else float("nan"))
        rows.append([s.offered, s.sent, s.ok, s.shed,
                     round(goodput, 1), round(shed_rate, 3),
                     round(p50, 1), hint])
    table = format_table(
        ["offered[rps]", "sent", "ok(200)", "shed(429)",
         "goodput[rps]", "shed_rate", "p50[ms]", "retry_hint[s]"],
        rows,
        title=f"serving: offered load vs goodput / shed rate "
              f"(V={meta['graph_tasks']}, max_backlog={meta['max_backlog']}, "
              f"window={meta['window_seconds']:g}s per step)",
    )
    header = (
        "Scheduling-as-a-service load sweep: the bounded admission queue\n"
        "converts overload into fast 429s with a Retry-After hint derived\n"
        "from the observed service-time EWMA, instead of unbounded queueing.\n"
        "Distinct procs per request defeat the result cache, so every 200\n"
        "is a real scheduling computation.  Produced by\n"
        "benchmarks/bench_serving.py (PYTHONPATH=src python "
        "benchmarks/bench_serving.py).\n"
    )
    return header + "\n" + table + "\n"


def main(out: str = "results/serving.txt") -> int:
    steps, meta = run_sweep()
    text = render(steps, meta)
    print(text)
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"(written to {path})")
    total_ok = sum(s.ok for s in steps)
    return 0 if total_ok else 1


# -- pytest entry points (smoke-sized) ---------------------------------------


def test_sweep_smoke():
    """A miniature sweep: the service stays up, sheds are well-formed, and
    at least the low-rate step achieves goodput."""
    steps, meta = run_sweep(rates=(5, 40), window=1.0, max_backlog=4,
                            tasks=400)
    assert steps[0].ok > 0
    assert all(s.other == 0 for s in steps)  # nothing but 200s and 429s
    for s in steps:
        assert all(h >= 1 for h in s.retry_hints)
    assert "repro_serve_requests_total" in meta["metrics_text"]


if __name__ == "__main__":
    raise SystemExit(main())
