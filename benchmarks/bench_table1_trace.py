"""Table 1 — FLB execution trace on the Fig. 1 example graph (P = 2).

Benchmarks FLB on the paper's 8-task example and verifies, inside the
benchmark file itself, that the recorded trace matches the published Table 1
row for row (the exhaustive per-cell checks live in
``tests/test_flb_trace.py``).
"""


from repro.bench import run_table1
from repro.core import TraceRecorder, flb
from repro.workloads import paper_example

#: (task, proc, start, finish) per iteration, transcribed from Table 1.
TABLE1_PLACEMENTS = [
    (0, 0, 0.0, 2.0),
    (3, 0, 2.0, 5.0),
    (1, 1, 3.0, 5.0),
    (2, 0, 5.0, 7.0),
    (4, 1, 5.0, 8.0),
    (5, 0, 7.0, 10.0),
    (6, 1, 8.0, 10.0),
    (7, 0, 12.0, 14.0),
]


def test_table1_placements_reproduced():
    report = run_table1()
    assert report.data["placements"] == TABLE1_PLACEMENTS
    assert report.data["makespan"] == 14.0


def test_table1_report_renders():
    report = run_table1()
    assert "t7 -> p0, [12 - 14]" in report.text
    assert "makespan 14" in report.text


def bench_flb_paper_example(benchmark):
    graph = paper_example()
    schedule = benchmark(flb, graph, 2)
    assert schedule.makespan == 14.0


def bench_flb_paper_example_with_trace(benchmark):
    graph = paper_example()

    def run():
        recorder = TraceRecorder(graph)
        flb(graph, 2, observer=recorder)
        return recorder

    recorder = benchmark(run)
    assert len(recorder.rows) == 8
