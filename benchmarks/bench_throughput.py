"""FLB fast-path scheduling throughput (tasks placed per second).

The CSR fast path (``docs/performance.md``) is the repo's headline perf
work; these benchmarks track it directly.  ``bench_flb_throughput`` times
the fast path per processor count over the Fig. 2 problems;
``bench_seed_vs_fast`` times the preserved pre-CSR implementation
(``repro.bench.perfgate.seed_flb``) on the same inputs so a
``pytest benchmarks/bench_throughput.py`` run shows the before/after pair.

``test_fast_path_beats_seed`` asserts the acceptance floor — the fast path
must clear 2x the seed implementation's throughput — which is the same
claim ``BENCH_sched.json`` records at full (V~2000) scale.
"""

import pytest

from repro.bench.perfgate import measure_throughput, seed_flb
from repro.core import flb

FIG2_PROBLEMS = ("lu", "laplace", "stencil")
FIG2_PROCS = (2, 8, 32)


def _graphs(suite_by_problem, ccr=0.2):
    return [suite_by_problem[(prob, ccr)] for prob in FIG2_PROBLEMS]


@pytest.mark.parametrize("procs", FIG2_PROCS)
def bench_flb_throughput(benchmark, suite_by_problem, procs):
    graphs = _graphs(suite_by_problem)
    total_tasks = sum(g.num_tasks for g in graphs)
    benchmark.extra_info["V"] = total_tasks

    def run():
        return [flb(g, procs).makespan for g in graphs]

    spans = benchmark(run)
    assert all(m > 0 for m in spans)
    benchmark.extra_info["tasks_per_s"] = round(total_tasks / benchmark.stats.stats.median, 1)


@pytest.mark.parametrize("impl", ["fast", "seed"])
def bench_seed_vs_fast(benchmark, suite_by_problem, impl):
    graphs = _graphs(suite_by_problem)
    scheduler = flb if impl == "fast" else seed_flb

    def run():
        return [scheduler(g, 8).makespan for g in graphs]

    spans = benchmark(run)
    assert all(m > 0 for m in spans)


@pytest.mark.perfgate
def test_fast_path_beats_seed(suite_by_problem, bench_tasks):
    """Acceptance floor: the fast path schedules at >= 2x seed throughput.

    Measured through the same aggregate :func:`measure_throughput` the gate
    uses, at the conftest's bench scale (override with ``REPRO_BENCH_TASKS``).
    """
    result = measure_throughput(
        target_tasks=bench_tasks, seeds=1, procs=(2, 8, 32), repeats=3,
        kernel="object",
    )
    assert result["speedup_vs_seed"] >= 2.0, result


@pytest.mark.perfgate
def test_array_kernel_beats_seed_4x(suite_by_problem, bench_tasks):
    """The interpreted NumPy array kernel's own floor: >= 4x seed throughput
    (the measured full-scale figure is recorded in BENCH_sched.json and
    docs/performance.md; this asserts the documented floor at bench scale)."""
    result = measure_throughput(
        target_tasks=bench_tasks, seeds=1, procs=(2, 8, 32), repeats=3,
        kernel="array",
    )
    assert result["speedup_vs_seed"] >= 4.0, result


@pytest.mark.perfgate
def test_numba_kernel_beats_seed_10x(suite_by_problem, bench_tasks):
    """The njit-compiled kernel's floor: >= 10x seed throughput.  Skipped
    when numba is not installed (the fallback path is covered by
    test_array_kernel_beats_seed_4x)."""
    from repro.core.flb_array import numba_available

    if not numba_available():
        pytest.skip("numba not installed")
    from repro.core._flb_kernel import get_compiled_kernel

    get_compiled_kernel()  # JIT-compile outside the timed region
    result = measure_throughput(
        target_tasks=bench_tasks, seeds=1, procs=(2, 8, 32), repeats=3,
        kernel="numba",
    )
    assert result["speedup_vs_seed"] >= 10.0, result


@pytest.mark.perfgate
def test_fast_and_seed_agree(suite_by_problem):
    """The two implementations must produce identical schedules — the gate
    would be meaningless if the fast path bought speed with different output."""
    for graph in _graphs(suite_by_problem):
        for procs in (2, 8, 32):
            fast = flb(graph, procs)
            seed = seed_flb(graph, procs)
            assert fast.makespan == seed.makespan
            assert all(
                fast.proc_of(t) == seed.proc_of(t)
                and fast.start_of(t) == seed.start_of(t)
                for t in range(graph.num_tasks)
            )
