"""Shared fixtures for the benchmark harness.

Sizes default to a few hundred tasks so the exhaustive-scan baselines (ETF,
DLS) finish promptly; set ``REPRO_BENCH_TASKS=2000`` (and optionally
``REPRO_BENCH_SEEDS``) to run at the paper's scale, as recorded in
EXPERIMENTS.md.
"""

import os

import pytest

from repro.bench import paper_suite

def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_TASKS = _env_int("REPRO_BENCH_TASKS", 300)
BENCH_SEEDS = _env_int("REPRO_BENCH_SEEDS", 2)


@pytest.fixture(scope="session")
def bench_tasks():
    return BENCH_TASKS


@pytest.fixture(scope="session")
def bench_seeds():
    return BENCH_SEEDS


@pytest.fixture(scope="session")
def suite_by_problem():
    """One representative instance per (problem, ccr) at bench scale."""
    instances = paper_suite(BENCH_TASKS, seeds=1)
    return {(inst.problem, inst.ccr): inst.graph for inst in instances}


@pytest.fixture(scope="session")
def fig_suite():
    """The multi-seed suite used by the figure reproductions."""
    return paper_suite(BENCH_TASKS, seeds=BENCH_SEEDS)
