#!/usr/bin/env python
"""Command-line throughput gate: measure FLB tasks/s and compare against the
baseline stored in ``BENCH_sched.json``.

Exit status 1 on regression (throughput more than --tolerance below the
baseline), 0 otherwise.  See ``docs/performance.md``.

Examples::

    PYTHONPATH=src python benchmarks/perf_gate.py                  # full gate
    PYTHONPATH=src python benchmarks/perf_gate.py --tasks 300      # smoke
    PYTHONPATH=src python benchmarks/perf_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.perfgate import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_TOLERANCE,
    run_gate,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=2000,
                        help="target tasks per instance (paper scale: 2000)")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--procs", nargs="+", type=int, default=[2, 8, 32])
    parser.add_argument("--repeats", type=int, default=3)
    def _tolerance(text):
        value = float(text)
        if not 0 <= value < 1:
            raise argparse.ArgumentTypeError(
                f"tolerance must be in [0, 1), got {value}"
            )
        return value

    parser.add_argument("--tolerance", type=_tolerance, default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop below baseline")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE_PATH),
                        help="baseline JSON path")
    parser.add_argument("--update-baseline", action="store_true",
                        help="replace the stored baseline with this run")
    parser.add_argument("--no-write", action="store_true",
                        help="do not touch the baseline file")
    parser.add_argument("--no-seed", action="store_true",
                        help="skip timing the seed implementation "
                        "(faster; no speedup_vs_seed in the record)")
    from repro.core.flb_array import KERNEL_CHOICES

    parser.add_argument("--kernel", choices=KERNEL_CHOICES, default="auto",
                        help="FLB backend to measure (auto resolves to numba "
                        "when importable, else the NumPy array kernel; "
                        "object = the CSR fast path)")
    args = parser.parse_args(argv)

    result = run_gate(
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        update_baseline=args.update_baseline,
        write=not args.no_write,
        target_tasks=args.tasks,
        seeds=args.seeds,
        procs=tuple(args.procs),
        repeats=args.repeats,
        include_seed=not args.no_seed,
        kernel=args.kernel,
    )
    print(result.message)
    if "speedup_vs_seed" in result.current:
        print(
            f"{result.current.get('kernel', 'object')} kernel: "
            f"{result.current['tasks_per_s']:,.0f} tasks/s, "
            f"seed: {result.current['seed_tasks_per_s']:,.0f} tasks/s "
            f"({result.current['speedup_vs_seed']:.2f}x)"
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
