#!/usr/bin/env python3
"""Compare every scheduler in the registry on one realistic workload:
schedule quality (makespan, NSL vs MCP) and scheduling cost side by side.

Run:  python examples/compare_schedulers.py [V] [P]
"""

import sys

from repro.metrics import comm_stats, speedup, time_scheduler
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import lu, lu_size_for_tasks

def main(target_tasks: int = 800, procs: int = 8) -> None:
    graph = lu(lu_size_for_tasks(target_tasks), make_rng(42), ccr=1.0)
    print(
        f"workload: LU decomposition, V = {graph.num_tasks}, "
        f"E = {graph.num_edges}, CCR = 1.0, P = {procs}\n"
    )

    mcp_span = SCHEDULERS["mcp"](graph, procs).makespan
    rows = []
    for name in sorted(SCHEDULERS):
        scheduler = SCHEDULERS[name]
        schedule = scheduler(graph, procs)
        schedule.validate()
        ms = time_scheduler(scheduler, graph, procs, repeats=3) * 1e3
        stats = comm_stats(schedule)
        rows.append(
            [
                name,
                schedule.makespan,
                schedule.makespan / mcp_span,
                speedup(schedule),
                stats.remote_messages,
                ms,
            ]
        )
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["algorithm", "makespan", "NSL(vs MCP)", "speedup", "remote msgs", "time [ms]"],
            rows,
        )
    )
    print(
        "\nNSL < 1 beats MCP; the paper's headline is that FLB matches the"
        "\nexpensive one-step algorithms at a fraction of their cost."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
