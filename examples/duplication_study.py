#!/usr/bin/env python3
"""Extension study: what does task duplication buy, and what does it cost?

The paper's Section 1 places duplication-based schedulers (DSH and friends)
above list schedulers in quality and far above them in cost.  This example
measures both sides on fork-heavy workloads, where duplicating ancestors
pays the most.

Run:  python examples/duplication_study.py
"""

from repro.core import flb
from repro.duplication import dsh
from repro.metrics import time_scheduler
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import fft, lu, out_tree, paper_example

def main() -> None:
    print("Paper's Fig. 1 example, P = 4:")
    d = dsh(paper_example(), 4)
    f = flb(paper_example(), 4)
    print(f"  FLB makespan {f.makespan:g}; DSH makespan {d.makespan:g} "
          f"(duplicated {d.total_copies() - 8} task copies)")
    for t in range(8):
        copies = d.copies_of(t)
        if len(copies) > 1:
            where = ", ".join(f"P{c.proc}@{c.start:g}" for c in copies)
            print(f"  task t{t} duplicated: {where}")
    print()

    workloads = [
        ("out_tree(5,2) ccr=5", lambda: out_tree(5, 2, make_rng(0), ccr=5.0)),
        ("lu(14) ccr=5", lambda: lu(14, make_rng(1), ccr=5.0)),
        ("lu(14) ccr=0.2", lambda: lu(14, make_rng(1), ccr=0.2)),
        ("fft(64) ccr=5", lambda: fft(64, make_rng(2), ccr=5.0)),
    ]
    rows = []
    for label, builder in workloads:
        g = builder()
        f = flb(g, 8)
        d = dsh(g, 8)
        t_f = time_scheduler(flb, g, 8, repeats=1)
        t_d = time_scheduler(dsh, g, 8, repeats=1)
        rows.append(
            [
                label,
                f.makespan,
                d.makespan,
                d.makespan / f.makespan,
                d.duplication_ratio(),
                t_d / t_f,
            ]
        )
    print(
        format_table(
            ["workload", "FLB", "DSH", "DSH/FLB", "copies/task", "cost ratio"],
            rows,
            title="duplication trade-off at P = 8",
        )
    )
    print(
        "\nreading: DSH/FLB < 1 is the quality gain from duplication;"
        "\n'cost ratio' is how much more compile time it charges — the"
        "\ntrade-off the paper's taxonomy describes."
    )


if __name__ == "__main__":
    main()
