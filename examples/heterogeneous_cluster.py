#!/usr/bin/env python3
"""Extension scenario: scheduling onto a machine with mixed processor speeds
(e.g. two fast nodes and two older, half-speed nodes).

The paper's algorithms assume identical processors; they stay *correct* on a
skewed machine (the validity checker and executor honour per-processor
durations) but waste the fast nodes.  HEFT, the heterogeneity-aware
extension, minimises finish times instead of start times.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.machine import MachineModel
from repro.metrics import utilization
from repro.schedule import render_gantt
from repro.schedulers import SCHEDULERS
from repro.sim import execute
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import lu

def main() -> None:
    graph = lu(14, make_rng(5), ccr=1.0)
    speeds = (2.0, 2.0, 1.0, 1.0)
    machine = MachineModel(4, speeds=speeds)
    print(
        f"LU(14), V = {graph.num_tasks}, on 4 processors with speeds {speeds}\n"
    )

    rows = []
    schedules = {}
    for algo in ("heft", "flb", "mcp", "dsc-llb"):
        s = SCHEDULERS[algo](graph, machine=machine)
        s.validate()
        assert execute(s).makespan <= s.makespan + 1e-6
        schedules[algo] = s
        util = utilization(s)
        rows.append([algo, s.makespan, *(f"{u:.0%}" for u in util)])
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["algorithm", "makespan", "P0(2x)", "P1(2x)", "P2(1x)", "P3(1x)"],
            rows,
            title="makespan and per-processor utilisation",
        )
    )

    best = rows[0][0]
    print(f"\n{best} schedule:")
    print(render_gantt(schedules[best], width=72))
    print(
        "\nreading: HEFT loads the fast processors harder; the homogeneous-"
        "\nminded schedulers treat all four alike and lose on makespan."
    )


if __name__ == "__main__":
    main()
