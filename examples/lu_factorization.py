#!/usr/bin/env python3
"""Domain scenario: compiling a dense LU factorisation for a distributed-
memory machine.  Shows the compile-time workflow end to end — generate the
elimination DAG, pick a processor count using FLB's speedup curve, inspect
the chosen schedule, and check its communication profile.

Run:  python examples/lu_factorization.py
"""

from repro.core import flb
from repro.graph import critical_path_length, width
from repro.metrics import comm_stats, efficiency, speedup, utilization
from repro.schedule import render_gantt
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import lu

def main() -> None:
    # A 40x40 elimination: 819 tasks.
    graph = lu(40, make_rng(7), ccr=0.5)
    print(
        f"LU(40): V = {graph.num_tasks}, E = {graph.num_edges}, "
        f"W = {width(graph)}, CP = {critical_path_length(graph):.1f}, "
        f"serial time = {graph.total_comp():.1f}\n"
    )

    # Sweep processor counts to choose a deployment size.
    rows = []
    schedules = {}
    for procs in (1, 2, 4, 8, 16, 32):
        s = flb(graph, procs)
        schedules[procs] = s
        rows.append(
            [procs, s.makespan, speedup(s), efficiency(s), s.num_procs_used()]
        )
    print(format_table(["P", "makespan", "speedup", "efficiency", "procs used"], rows))

    # Efficiency collapses past the graph's parallelism; pick the knee.
    knee = max(
        (p for p, s in schedules.items() if efficiency(s) >= 0.5),
        default=1,
    )
    chosen = schedules[knee]
    print(f"\nchosen deployment: P = {knee} (last size with efficiency >= 50%)")

    stats = comm_stats(chosen)
    print(
        f"communication: {stats.remote_messages}/{stats.total_messages} messages cross "
        f"processors ({stats.remote_fraction:.0%}), remote volume {stats.remote_volume:.1f}"
    )
    util = utilization(chosen)
    print("utilisation:", "  ".join(f"P{p}={u:.0%}" for p, u in enumerate(util)))

    # A small instance's Gantt chart to see the elimination wavefront.
    small = flb(lu(7, make_rng(7), ccr=0.5), 4)
    print("\nLU(7) on 4 processors:")
    print(render_gantt(small, width=72))


if __name__ == "__main__":
    main()
