#!/usr/bin/env python3
"""Reproduce the paper's Section 5 walkthrough: the FLB execution trace
(Table 1) on the Fig. 1 example graph, scheduled on two processors.

Run:  python examples/paper_trace.py
"""

from repro.core import OracleObserver, TraceRecorder, flb, format_trace
from repro.graph import bottom_levels, critical_path_length, to_dot, width
from repro.schedule import render_gantt
from repro.workloads import paper_example

def main() -> None:
    graph = paper_example()
    print("The Fig. 1 task graph (reconstructed from the Table 1 trace):")
    print(f"  V = {graph.num_tasks}, E = {graph.num_edges}, "
          f"width = {width(graph)}, critical path = {critical_path_length(graph):g}")
    bl = bottom_levels(graph)
    print("  bottom levels:", {graph.name(t): bl[t] for t in graph.tasks()})
    print()

    # Run FLB with both the trace recorder and the Theorem-3 oracle attached.
    recorder = TraceRecorder(graph)
    schedule = flb(graph, 2, observer=recorder)

    oracle = OracleObserver()
    flb(graph, 2, observer=oracle)
    print(f"Theorem 3 verified on all {oracle.iterations} iterations "
          f"({oracle.tie_iterations} EP/non-EP tie, resolved to non-EP).\n")

    print("Execution trace (the paper's Table 1):")
    print(format_trace(recorder))
    print()
    print(render_gantt(schedule, width=70))
    print(f"\nmakespan = {schedule.makespan:g}  (paper: 14)")
    print("\nGraphviz source of the example graph:")
    print(to_dot(graph))


if __name__ == "__main__":
    main()
