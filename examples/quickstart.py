#!/usr/bin/env python3
"""Quickstart: build a task graph, schedule it with FLB, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import TaskGraph, schedule_graph
from repro.metrics import summarize
from repro.schedule import render_gantt
from repro.sim import execute

def main() -> None:
    # 1. Describe the parallel program as a weighted DAG: computation cost
    #    per task, communication cost per dependency.
    g = TaskGraph()
    load = g.add_task(2.0, name="load")
    left = g.add_task(4.0, name="left")
    right = g.add_task(4.0, name="right")
    merge = g.add_task(3.0, name="merge")
    report = g.add_task(1.0, name="report")
    g.add_edge(load, left, comm=1.0)
    g.add_edge(load, right, comm=1.0)
    g.add_edge(left, merge, comm=2.0)
    g.add_edge(right, merge, comm=2.0)
    g.add_edge(merge, report, comm=0.5)
    g.freeze()

    # 2. Schedule on 2 processors with FLB (the paper's algorithm).
    schedule = schedule_graph(g, 2, algorithm="flb")
    schedule.validate()

    # 3. Inspect.
    print(schedule.as_table())
    print()
    print(render_gantt(schedule, width=60))
    print()
    for key, value in summarize(schedule).items():
        print(f"  {key:>16s}: {value:.3f}")

    # 4. Cross-check by discrete-event re-execution.
    result = execute(schedule)
    assert result.matches(schedule)
    print(f"\nre-executed makespan: {result.makespan:g} (matches the schedule)")

    # 5. Compare against a baseline in one line.
    mcp = schedule_graph(g, 2, algorithm="mcp")
    print(f"FLB vs MCP makespan: {schedule.makespan:g} vs {mcp.makespan:g}")


if __name__ == "__main__":
    main()
