#!/usr/bin/env python3
"""Extension experiment (X4): how fragile is a compile-time schedule when
run-time task and message costs deviate from the estimates?

The schedule's assignment and per-processor order are frozen (that is the
point of compile-time scheduling); execution is self-timed.  We perturb
weights with mean-preserving lognormal noise and measure the achieved
makespan through the discrete-event executor.

Run:  python examples/robustness_perturbation.py
"""

import numpy as np

from repro.core import flb
from repro.schedulers import mcp
from repro.sim import execute_perturbed
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import fft

def main() -> None:
    graph = fft(128, make_rng(11), ccr=1.0)
    procs = 8
    draws = 40
    print(f"workload: FFT(128), V = {graph.num_tasks}, P = {procs}, {draws} draws per cell\n")

    rows = []
    for name, scheduler in (("flb", flb), ("mcp", mcp)):
        planned = scheduler(graph, procs)
        for cv in (0.1, 0.25, 0.5):
            achieved = [
                execute_perturbed(planned, make_rng(1000 + i), cv, cv).makespan
                for i in range(draws)
            ]
            arr = np.asarray(achieved) / planned.makespan
            rows.append(
                [
                    name,
                    cv,
                    planned.makespan,
                    arr.mean(),
                    arr.std(),
                    arr.max(),
                ]
            )
    print(
        format_table(
            ["algorithm", "noise cv", "planned", "mean rel.", "std rel.", "worst rel."],
            rows,
            title="achieved makespan relative to planned, under weight noise",
        )
    )
    print(
        "\nreading: 'mean rel.' near 1.0 means the schedule absorbs noise well;"
        "\nthe growth with cv shows how much slack compile-time schedules need."
    )


if __name__ == "__main__":
    main()
