#!/usr/bin/env python3
"""Inspecting a schedule like a performance engineer: slack analysis, idle
accounting, critical chain, persistence, and SVG export.

Run:  python examples/schedule_inspection.py [output.svg]
"""

import sys

from repro.core import flb
from repro.schedule import (
    critical_tasks,
    idle_profile,
    render_gantt,
    save_gantt_svg,
    save_schedule,
    slack_times,
)
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import lu

def main(svg_path: str = "/tmp/lu_schedule.svg") -> None:
    graph = lu(12, make_rng(21), ccr=2.0)
    schedule = flb(graph, 4)
    print(f"LU(12) on 4 processors with FLB: makespan {schedule.makespan:.2f}\n")
    print(render_gantt(schedule, width=72))

    # Which tasks actually pin the makespan?
    slack = slack_times(schedule)
    crit = critical_tasks(schedule)
    print(f"\nschedule-critical chain ({len(crit)} tasks):")
    print("  " + " -> ".join(graph.name(t) for t in sorted(crit, key=schedule.start_of)))

    # The most slack-rich tasks are rescheduling candidates.
    rows = sorted(
        ((graph.name(t), schedule.start_of(t), slack[t]) for t in graph.tasks()),
        key=lambda r: -r[2],
    )[:5]
    print()
    print(format_table(["task", "start", "slack"], rows, title="largest slacks"))

    # Where does each processor lose time?
    profile = idle_profile(schedule)
    rows = [
        (
            f"P{p}",
            profile.busy[p],
            profile.idle_leading[p],
            profile.idle_internal[p],
            profile.idle_trailing[p],
        )
        for p in range(4)
    ]
    print()
    print(
        format_table(
            ["proc", "busy", "lead idle", "comm stalls", "tail idle"],
            rows,
            title="idle accounting",
        )
    )

    # Persist for downstream tools, and export a vector Gantt.
    save_schedule(schedule, "/tmp/lu_schedule.json")
    save_gantt_svg(schedule, svg_path)
    print(f"\nwrote /tmp/lu_schedule.json and {svg_path}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
