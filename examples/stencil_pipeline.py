#!/usr/bin/env python3
"""Domain scenario: a time-stepped stencil kernel at different granularities.

The paper's Fig. 3/4 story in miniature: the same stencil pipeline is
scheduled at CCR 0.2 (coarse grain — communication cheap relative to
computation) and CCR 5.0 (fine grain), showing how granularity drives both
achievable speedup and the value of DSC's communication-zeroing clustering.

Run:  python examples/stencil_pipeline.py
"""

from repro.core import flb
from repro.metrics import speedup
from repro.schedulers import dsc, dsc_llb
from repro.util.rng import make_rng
from repro.util.tables import format_series_chart, format_table
from repro.workloads import stencil

def main() -> None:
    procs_list = (1, 2, 4, 8, 16, 32)
    rows = []
    series = {}
    for ccr in (0.2, 5.0):
        graph = stencil(40, 50, make_rng(3), ccr=ccr)
        speedups = [speedup(flb(graph, p)) for p in procs_list]
        series[f"CCR={ccr:g}"] = speedups
        rows.append([f"CCR={ccr:g}", *(f"{s:.2f}" for s in speedups)])
        clustering = dsc(graph)
        print(
            f"CCR={ccr:g}: DSC folds {graph.num_tasks} tasks into "
            f"{clustering.num_clusters} clusters "
            f"(virtual makespan {clustering.makespan:.1f} vs serial {graph.total_comp():.1f})"
        )
    print()
    print(format_table(["grain", *(f"P={p}" for p in procs_list)], rows,
                       title="FLB speedup on stencil(40x50)"))
    print()
    print(format_series_chart(list(procs_list), series,
                              title="speedup vs P", x_label="P", y_label="speedup"))

    # Fine grain also widens the FLB vs DSC-LLB gap the paper reports.
    print()
    for ccr in (0.2, 5.0):
        graph = stencil(40, 50, make_rng(3), ccr=ccr)
        f = flb(graph, 8).makespan
        d = dsc_llb(graph, 8).makespan
        print(f"CCR={ccr:g}: FLB {f:8.1f}  DSC-LLB {d:8.1f}  (DSC-LLB/FLB = {d/f:.3f})")


if __name__ == "__main__":
    main()
