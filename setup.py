"""Setup shim: enables `pip install -e .` in offline environments without
the `wheel` package (legacy editable path). All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
