"""repro — reproduction of "FLB: Fast Load Balancing for Distributed-Memory
Machines" (Rădulescu & van Gemund, ICPP 1999).

Public API highlights:

* :class:`repro.graph.TaskGraph` — the weighted task-DAG program model.
* :mod:`repro.workloads` — LU / Laplace / Stencil / FFT and other generators.
* :func:`repro.core.flb` — the paper's FLB scheduling algorithm.
* :mod:`repro.schedulers` — baselines (ETF, MCP, FCP, DLS, HLFET, DSC-LLB)
  and the ``schedule_graph(graph, procs, algorithm=...)`` entry point.
* :mod:`repro.sim` — discrete-event re-execution of schedules.
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  tables and figures.
"""

from repro._version import __version__
from repro.core import flb
from repro.graph import TaskGraph
from repro.machine import MachineModel

__all__ = ["__version__", "TaskGraph", "MachineModel", "flb", "schedule_graph"]


def schedule_graph(graph, num_procs, algorithm="flb", **kwargs):
    """Schedule ``graph`` on ``num_procs`` processors with the named algorithm.

    Convenience wrapper around :func:`repro.schedulers.get_scheduler`; see
    :data:`repro.schedulers.SCHEDULERS` for available algorithm names.
    (Named ``schedule_graph`` rather than ``schedule`` to avoid shadowing the
    :mod:`repro.schedule` subpackage.)
    """
    from repro.schedulers import get_scheduler

    return get_scheduler(algorithm)(graph, num_procs, **kwargs)
