"""repro — reproduction of "FLB: Fast Load Balancing for Distributed-Memory
Machines" (Rădulescu & van Gemund, ICPP 1999), grown into a batch scheduling
service.

Public API (snapshot-tested in ``tests/test_public_api.py``):

* :class:`repro.TaskGraph` / :class:`repro.MachineModel` — the weighted
  task-DAG program model and the machine it runs on.
* :func:`repro.flb` — the paper's FLB scheduling algorithm
  (:mod:`repro.schedulers` holds the baselines: ETF, MCP, FCP, DLS, ...).
* :class:`repro.SchedulingOptions` — the unified options record accepted by
  every entry point (:mod:`repro.api`).
* :func:`repro.schedule_graph` — schedule one graph in-process.
* :func:`repro.schedule_many` / :class:`repro.BatchScheduler` — the batch
  serving front-end over supervised worker processes (:mod:`repro.batch`).
* :class:`repro.ServeConfig` / :class:`repro.BackgroundServer` — the HTTP
  scheduling service over a ``BatchScheduler`` (:mod:`repro.serve`, run it
  with ``repro-sched serve`` or :func:`repro.serve.serve`): admission
  control, weighted-fair tenancy, coalescing, graceful drain.
* :func:`repro.lint` / :func:`repro.certify` — the verification plane
  (:mod:`repro.verify`): DAG linting before, independent certification after.
* :class:`repro.MetricsRegistry` — the observability plane
  (:mod:`repro.obs`): counters/histograms, spans, Prometheus + JSONL export.

Heavier subsystems stay behind their submodules and import lazily here
(PEP 562), so ``import repro`` does not pay for the batch/verify planes
until they are used.
"""

from __future__ import annotations

from typing import Any, List

from repro._version import __version__
from repro.core import flb
from repro.graph import TaskGraph

__all__ = [
    "__version__",
    "TaskGraph",
    "MachineModel",
    "flb",
    "schedule_graph",
    "schedule_many",
    "BatchScheduler",
    "SchedulingOptions",
    "MetricsRegistry",
    "lint",
    "certify",
    "ServeConfig",
    "BackgroundServer",
]

#: Lazily imported public names: attribute -> (module, attribute there).
_LAZY = {
    "MachineModel": ("repro.machine", "MachineModel"),
    "schedule_graph": ("repro.api", "schedule_graph"),
    "SchedulingOptions": ("repro.api", "SchedulingOptions"),
    "schedule_many": ("repro.batch", "schedule_many"),
    "BatchScheduler": ("repro.batch", "BatchScheduler"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "lint": ("repro.verify", "lint"),
    "certify": ("repro.verify", "certify"),
    "ServeConfig": ("repro.serve", "ServeConfig"),
    "BackgroundServer": ("repro.serve", "BackgroundServer"),
}


def __getattr__(name: str) -> Any:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY))
