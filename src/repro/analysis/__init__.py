"""Project-aware source analysis: the A-rule engine behind
``repro-sched analyze <paths>``.

See :mod:`repro.analysis.engine` for the architecture and
``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    ERROR,
    INFO,
    WARNING,
    AnalysisIssue,
    AnalysisReport,
    AnalysisRule,
    BaselineEntry,
    analyze_paths,
    rule_catalogue,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "AnalysisIssue",
    "AnalysisReport",
    "AnalysisRule",
    "BaselineEntry",
    "DEFAULT_BASELINE_PATH",
    "analyze_paths",
    "apply_baseline",
    "load_baseline",
    "rule_catalogue",
    "write_baseline",
]
