"""Suppression baseline: justified, checked-in exceptions to the A-rules.

A static analyzer that cannot say "yes, we know, and here is why" either
gets ignored or gets weakened rule by rule.  The baseline is the third
option: a JSON file of :class:`~repro.analysis.engine.BaselineEntry`
records, each carrying a mandatory human-readable ``reason``, matched on
``(code, path, context)`` — the enclosing function/class qualname, not
the line number, so suppressions survive unrelated edits to the file.

The contract, enforced by :func:`apply_baseline` + ``--strict``:

* an entry without a non-empty ``reason`` fails to load (unjustified
  suppressions are config errors);
* an entry that matches nothing is reported as *stale* and fails a
  ``--strict`` run — the baseline can shrink or stay honest, never rot;
* ``repro-sched analyze --write-baseline FILE`` snapshots the current
  findings with placeholder reasons for the author to justify.

The default file is ``tools/analysis-baseline.json`` relative to the
working directory (the repo root in CI); see ``docs/static-analysis.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.analysis.engine import AnalysisIssue, AnalysisReport, BaselineEntry

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

#: Where ``repro-sched analyze`` looks when ``--baseline`` is not given.
DEFAULT_BASELINE_PATH = "tools/analysis-baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Tuple[BaselineEntry, ...]:
    """Parse a baseline file; raises ``ValueError`` on malformed entries."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"baseline {path}: expected an object with version={_FORMAT_VERSION}"
        )
    entries_raw = doc.get("entries")
    if not isinstance(entries_raw, list):
        raise ValueError(f"baseline {path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for i, item in enumerate(entries_raw):
        if not isinstance(item, dict):
            raise ValueError(f"baseline {path}: entry {i} is not an object")
        try:
            entry = BaselineEntry(
                code=str(item["code"]),
                path=str(item["path"]),
                context=str(item.get("context", "*")),
                reason=str(item["reason"]),
            )
        except KeyError as exc:
            raise ValueError(
                f"baseline {path}: entry {i} is missing field {exc}"
            ) from exc
        if not entry.reason.strip():
            raise ValueError(
                f"baseline {path}: entry {i} ({entry.code} at {entry.path}) "
                f"has an empty reason — every suppression must be justified"
            )
        entries.append(entry)
    return tuple(entries)


def apply_baseline(
    report: AnalysisReport, entries: Tuple[BaselineEntry, ...]
) -> AnalysisReport:
    """Split ``report``'s issues into active and suppressed.

    An entry may suppress any number of findings (``context="*"`` covers
    a whole file); entries that match nothing come back in
    ``unused_baseline`` for staleness reporting.  Staleness is judged
    only for entries whose file was in this run's scope — a ``tests/``
    entry is not stale during a ``src/``-only run, just out of scope.
    """
    if not entries:
        return report
    analyzed = set(report.file_paths)
    active: List[AnalysisIssue] = []
    suppressed: List[AnalysisIssue] = list(report.suppressed)
    used = [False] * len(entries)
    for issue in report.issues:
        hit = False
        for i, entry in enumerate(entries):
            if entry.matches(issue):
                used[i] = True
                hit = True
        (suppressed if hit else active).append(issue)
    unused = tuple(
        e for e, u in zip(entries, used) if not u and e.path in analyzed
    )
    return AnalysisReport(
        issues=tuple(active),
        suppressed=tuple(suppressed),
        unused_baseline=report.unused_baseline + unused,
        files=report.files,
        file_paths=report.file_paths,
    )


def write_baseline(
    report: AnalysisReport, path: Union[str, Path]
) -> Tuple[BaselineEntry, ...]:
    """Snapshot the report's active findings as a baseline file.

    Reasons are written as a placeholder the author must replace —
    :func:`load_baseline` accepts them (they are non-empty) but review
    should not.
    """
    entries: List[BaselineEntry] = []
    seen: Dict[Tuple[str, str, str], None] = {}
    for issue in report.issues:
        key = (issue.code, issue.path, issue.context)
        if key in seen:
            continue
        seen[key] = None
        entries.append(
            BaselineEntry(
                code=issue.code,
                path=issue.path,
                context=issue.context,
                reason="TODO: justify this suppression",
            )
        )
    doc: Dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "entries": [e.to_dict() for e in entries],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return tuple(entries)
