"""Source-level static analysis: the A-rule engine.

The verification plane (:mod:`repro.verify`) checks runtime artifacts —
graphs before scheduling (``G`` codes) and schedules after (``S``/``F``
codes).  This package is the complementary layer: it checks *the source
itself* for the project's cross-cutting invariants, the ones every past
correctness bug violated silently — a blocking call inside the asyncio
front-end, a lock shared across ``fork()``, a result-cache key built
without :func:`repro.resultcache.make_key`, a ``_prop_cache`` write
outside the graph plane.

The machinery mirrors :mod:`repro.verify.graphlint`: every check is a
registered :class:`AnalysisRule` with a stable code (``A101``..), a
severity, and a title; :func:`rule_catalogue` lists them all (rendered in
``docs/static-analysis.md``).  Codes are grouped by invariant family:

* ``A1xx`` — concurrency: event-loop blocking, fork-shared locks,
  shared-memory lifecycle (:mod:`repro.analysis.rules_concurrency`);
* ``A2xx`` — frozenness: frozen-dataclass mutation, graph-plane
  private-cache access, post-``freeze()`` mutation
  (:mod:`repro.analysis.rules_frozen`);
* ``A3xx`` — cache/metrics discipline: hand-rolled cache keys, metric
  naming conventions, warn-once latches without a reset hook
  (:mod:`repro.analysis.rules_cachekeys`), and the machine-model options
  migration — legacy ``SchedulingOptions(procs=...)`` constructions
  (:mod:`repro.analysis.rules_machine`).

Analysis is two-pass: pass one parses every file and builds a
:class:`~repro.analysis.project.ProjectIndex` (project-wide facts such as
the set of frozen dataclass names), pass two runs each rule over each
file with the index in hand, so a rule can recognise
``SchedulingOptions`` as frozen even when the mutation happens two
packages away from the definition.

``repro-sched analyze <paths>`` exposes the engine on the command line
with ``--json``, ``--strict``, and a checked-in suppression baseline
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.project import ProjectIndex, build_index

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "AnalysisIssue",
    "AnalysisReport",
    "AnalysisRule",
    "BaselineEntry",
    "FileContext",
    "analyze_paths",
    "dotted_name",
    "rule",
    "rule_catalogue",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Either spelling of a function definition node.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Directory names never descended into when expanding directory arguments.
#: ``fixtures`` covers the adversarial rule fixtures under
#: ``tests/fixtures/analysis/`` — deliberately-violating sources that the
#: test suite analyzes by explicit path (explicit file arguments are
#: always analyzed; only directory expansion skips).
_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    "build",
    "dist",
    "fixtures",
}


@dataclass(frozen=True)
class AnalysisIssue:
    """One finding: a stable rule code, a severity, and a source location.

    ``context`` is the dotted qualname of the enclosing function/class
    (``"<module>"`` at module scope).  Baseline suppressions match on
    ``(code, path, context)`` rather than the line number, so a finding
    stays suppressed across unrelated edits to the same file.
    """

    code: str
    severity: str
    message: str
    path: str
    line: int
    context: str = "<module>"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "context": self.context,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(frozen=True)
class BaselineEntry:
    """One justified suppression: a finding the project accepts knowingly.

    ``context`` may be ``"*"`` to match every context in the file (for
    module-scoped idioms); ``reason`` is mandatory and human-readable —
    an unjustified suppression is a config error, not a suppression.
    """

    code: str
    path: str
    context: str
    reason: str

    def matches(self, issue: AnalysisIssue) -> bool:
        if self.code != issue.code or self.path != issue.path:
            return False
        return self.context == "*" or self.context == issue.context

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "context": self.context,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """All findings for one run, split into active and suppressed.

    ``unused_baseline`` lists stale suppressions — baseline entries that
    matched nothing; under ``--strict`` they fail the run so the baseline
    can only shrink or stay honest, never rot.
    """

    issues: Tuple[AnalysisIssue, ...]
    suppressed: Tuple[AnalysisIssue, ...] = ()
    unused_baseline: Tuple[BaselineEntry, ...] = ()
    files: int = 0
    #: Display paths of every analyzed file — baseline staleness is only
    #: judged for entries whose file was actually in this run's scope.
    file_paths: Tuple[str, ...] = ()

    @property
    def errors(self) -> Tuple[AnalysisIssue, ...]:
        return tuple(i for i in self.issues if i.severity == ERROR)

    @property
    def warnings(self) -> Tuple[AnalysisIssue, ...]:
        return tuple(i for i in self.issues if i.severity == WARNING)

    def ok(self, strict: bool = False) -> bool:
        """True when the tree is clean: no unsuppressed errors (and, under
        ``strict``, no warnings and no stale baseline entries either)."""
        if self.errors:
            return False
        return not (strict and (self.warnings or self.unused_baseline))

    def codes(self) -> Tuple[str, ...]:
        return tuple(i.code for i in self.issues)

    def to_dict(self, strict: bool = False) -> Dict[str, object]:
        return {
            "ok": self.ok(strict),
            "strict": strict,
            "files": self.files,
            "issues": [i.to_dict() for i in self.issues],
            "suppressed": [i.to_dict() for i in self.suppressed],
            "unused_baseline": [e.to_dict() for e in self.unused_baseline],
        }

    def render(self) -> str:
        """Human-readable report, one line per issue."""
        lines = [f"analyzed {self.files} file(s)"]
        if not self.issues and not self.unused_baseline:
            note = f" ({len(self.suppressed)} suppressed)" if self.suppressed else ""
            lines.append(f"  clean: no issues found{note}")
        for issue in self.issues:
            lines.append(
                f"  {issue.location()}: {issue.code} [{issue.severity}] "
                f"{issue.message}"
            )
        for entry in self.unused_baseline:
            lines.append(
                f"  {entry.path}: stale baseline entry {entry.code} "
                f"(context {entry.context!r}) matched nothing — remove it"
            )
        if self.suppressed and self.issues:
            lines.append(f"  ({len(self.suppressed)} finding(s) suppressed by baseline)")
        return "\n".join(lines)


class FileContext:
    """Everything a rule needs about one source file.

    Wraps the parsed AST with a parent map so rules can ask for the
    enclosing function/class of any node, plus the file's dotted module
    name (``repro.core.flb_array`` for ``src/repro/core/flb_array.py``)
    for package-scoped rules, and the project-wide :class:`ProjectIndex`.
    """

    def __init__(
        self, path: str, module: str, tree: ast.Module, index: ProjectIndex
    ) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.index = index
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first (excluding ``node`` itself)."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionNode]:
        """Innermost ``def``/``async def`` containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the scope holding ``node`` (``"<module>"`` at
        module scope) — the ``context`` key baseline entries match on."""
        parts: List[str] = []
        scope: Optional[ast.AST] = node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            scope = self._parents.get(node)
        while scope is not None:
            if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(scope.name)
            scope = self._parents.get(scope)
        if not parts:
            return "<module>"
        return ".".join(reversed(parts))

    def issue(
        self, node: ast.AST, code: str, severity: str, message: str
    ) -> AnalysisIssue:
        """Construct an issue anchored at ``node`` in this file."""
        line = getattr(node, "lineno", 0)
        return AnalysisIssue(
            code=code,
            severity=severity,
            message=message,
            path=self.path,
            line=int(line),
            context=self.qualname(node),
        )


RuleFn = Callable[[FileContext], List[AnalysisIssue]]


@dataclass(frozen=True)
class AnalysisRule:
    """A registered source check: stable code, default severity, title."""

    code: str
    severity: str
    title: str
    fn: RuleFn = field(repr=False, compare=False)


_RULES: List[AnalysisRule] = []


def rule(code: str, severity: str, title: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under ``code`` in the global registry."""

    def register(fn: RuleFn) -> RuleFn:
        _RULES.append(AnalysisRule(code=code, severity=severity, title=title, fn=fn))
        return fn

    return register


def rule_catalogue() -> List[AnalysisRule]:
    """All registered rules in code order (for docs and ``--json`` output)."""
    _load_rules()
    return sorted(_RULES, key=lambda r: r.code)


def _load_rules() -> None:
    """Import the rule modules (self-registering, like graphlint's)."""
    from repro.analysis import (  # noqa: F401  (imported for registration)
        rules_cachekeys,
        rules_concurrency,
        rules_frozen,
        rules_machine,
    )


# -- shared AST helpers ------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"`` (else None).

    ``time.sleep`` -> ``"time.sleep"``; ``self._lock.acquire`` ->
    ``"self._lock.acquire"``; calls, subscripts, or literals in the chain
    yield ``None`` — rules treat those as unresolvable and stay silent.
    """
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword ``name`` in ``call``, if present."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# -- file collection and the two-pass driver ---------------------------------


def _module_name(path: Path) -> str:
    """Dotted module guess for ``path``: strip everything up to ``src/``.

    Files outside a ``src`` layout (tests, fixtures) keep their full
    relative dotted path, which is never under ``repro.`` — so rules
    scoped to a package (e.g. A202's ``repro.graph`` exemption) treat
    them as foreign code and stay live on test fixtures by construction.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in (".", ""))


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.append(sub)
        elif p.suffix == ".py" and p.is_file():
            found.append(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    seen: Dict[Path, None] = {}
    for p in found:
        seen.setdefault(p, None)
    return list(seen)


def _display_path(path: Path) -> str:
    """Stable path string for reports and baseline matching.

    Relative to the current directory when possible (the common case:
    running from the repo root), posix separators either way.
    """
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(paths: Sequence[str]) -> AnalysisReport:
    """Run every registered rule over the given files/directories.

    Two passes: parse everything and build the :class:`ProjectIndex`,
    then run the rules per file.  Unparseable files report as ``A000``
    errors instead of aborting the run — the analyzer's job is to report
    every problem, not to stop at the first.
    """
    _load_rules()
    files = collect_files(paths)
    parsed: List[Tuple[Path, str, ast.Module]] = []
    issues: List[AnalysisIssue] = []
    for path in files:
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            issues.append(
                AnalysisIssue(
                    code="A000",
                    severity=ERROR,
                    message=f"cannot parse: {exc}",
                    path=display,
                    line=getattr(exc, "lineno", 0) or 0,
                )
            )
            continue
        parsed.append((path, display, tree))
    index = build_index([(display, tree) for _, display, tree in parsed])
    for path, display, tree in parsed:
        ctx = FileContext(display, _module_name(path), tree, index)
        for reg in rule_catalogue():
            issues.extend(reg.fn(ctx))
    issues.sort(key=lambda i: (i.path, i.line, i.code))
    return AnalysisReport(
        issues=tuple(issues),
        files=len(files),
        file_paths=tuple(_display_path(p) for p in files),
    )


def _rule_docs() -> List[Dict[str, Any]]:
    """Catalogue rows for ``--json`` output and the docs generator."""
    return [
        {"code": r.code, "severity": r.severity, "title": r.title}
        for r in rule_catalogue()
    ]
