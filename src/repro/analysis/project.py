"""Pass one of the analyzer: project-wide facts the per-file rules need.

A rule looking at ``opts.timeout = 3.0`` cannot know from that file alone
that ``opts`` holds a frozen dataclass — the ``@dataclass(frozen=True)``
decorator lives two packages away.  The :class:`ProjectIndex` is built
once from every parsed file before any rule runs, so pass two can answer
"is this class frozen?" by name across module boundaries.

The index is deliberately name-based rather than import-resolving: the
project has no duplicate class names across packages, and a name-level
index keeps the analyzer dependency-free and fast (one AST walk per
file).  A rule that needs more context should grow the index, not parse
imports ad hoc.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

__all__ = ["ProjectIndex", "build_index"]


@dataclass(frozen=True)
class ProjectIndex:
    """Cross-file facts, keyed by bare name.

    ``frozen_dataclasses`` — every class declared ``@dataclass(frozen=True)``
    anywhere in the analyzed tree (``SchedulingOptions``, ``ServeConfig``,
    ``BatchJob``, ...); consumed by rule A201.

    ``class_modules`` — defining module of each indexed class, for
    diagnostics.
    """

    frozen_dataclasses: FrozenSet[str]
    class_modules: Dict[str, str]

    def is_frozen_dataclass(self, name: str) -> bool:
        return name in self.frozen_dataclasses


def _is_frozen_dataclass_decorator(node: ast.expr) -> bool:
    """True for ``@dataclass(frozen=True)`` (bare or ``dataclasses.``-qualified).

    Only a literal ``frozen=True`` counts: a computed flag is not a
    statically-knowable frozen contract.
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name != "dataclass":
        return False
    for kw in node.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def build_index(files: Sequence[Tuple[str, ast.Module]]) -> ProjectIndex:
    """Scan every ``(display_path, tree)`` pair into a :class:`ProjectIndex`."""
    frozen: List[str] = []
    class_modules: Dict[str, str] = {}
    for display, tree in files:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_modules.setdefault(node.name, display)
            if any(_is_frozen_dataclass_decorator(d) for d in node.decorator_list):
                frozen.append(node.name)
    return ProjectIndex(
        frozen_dataclasses=frozenset(frozen),
        class_modules=class_modules,
    )
