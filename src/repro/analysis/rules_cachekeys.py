"""A3xx — cache and metrics discipline rules.

A301 is the PR 7 bug class verbatim: the batch plane once built result
cache keys as inline tuples that silently omitted the resolved kernel, so
an ``array``-kernel result answered ``numba`` requests.  The fix routed
every key through :func:`repro.resultcache.make_key`; this rule keeps it
that way.  A302 pins the metric naming contract documented in
:mod:`repro.obs.metrics` (counters ``*_total``, duration histograms
``*_seconds`` — size histograms must declare explicit ``buckets``).
A303 guards testability: a module-level warn-once latch without a
``reset_*`` hook makes the warning untestable after the first test that
trips it.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.engine import (
    ERROR,
    WARNING,
    AnalysisIssue,
    FileContext,
    dotted_name,
    keyword_arg,
    rule,
)

__all__: List[str] = []

#: Method names that consult or populate a mapping by key.
_KEYED_METHODS = {"get", "put", "setdefault", "pop"}

#: Receiver-name substrings marking a result/coalescing cache.
_CACHE_MARKERS = ("cache", "coalesc", "inflight", "in_flight")

#: The one module allowed to spell the key tuple out: the key factory.
_KEY_FACTORY_MODULE = "repro.resultcache"


def _receiver_is_cache(func: ast.Attribute) -> bool:
    name = dotted_name(func.value)
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _CACHE_MARKERS)


@rule("A301", ERROR, "cache key built inline instead of via make_key")
def _check_inline_cache_keys(ctx: FileContext) -> List[AnalysisIssue]:
    """Flags a literal tuple used as the key of a cache-named mapping —
    ``get``/``put``/``setdefault``/``pop`` calls and subscripts alike.
    An inline tuple cannot share the key factory's validation (kernel
    must be resolved, never ``"auto"``) or pick up new key fields when
    the schema grows; route it through
    :func:`repro.resultcache.make_key`."""
    if ctx.module == _KEY_FACTORY_MODULE:
        return []
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        tuple_key: ast.AST
        if isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _KEYED_METHODS
                and _receiver_is_cache(func)
                and node.args
                and isinstance(node.args[0], ast.Tuple)
            ):
                continue
            tuple_key = node.args[0]
        elif isinstance(node, ast.Subscript):
            if not (
                isinstance(node.value, (ast.Name, ast.Attribute))
                and isinstance(node.slice, ast.Tuple)
            ):
                continue
            name = dotted_name(node.value)
            if name is None or not any(
                marker in name.lower() for marker in _CACHE_MARKERS
            ):
                continue
            tuple_key = node.slice
        else:
            continue
        issues.append(
            ctx.issue(
                tuple_key,
                "A301",
                ERROR,
                "inline tuple used as a cache key; build keys with "
                "repro.resultcache.make_key so every field (including the "
                "resolved kernel) is validated in one place",
            )
        )
    return issues


@rule("A302", WARNING, "metric name outside the documented conventions")
def _check_metric_names(ctx: FileContext) -> List[AnalysisIssue]:
    """Counters must end in ``_total`` and histograms in ``_seconds``
    (the convention :mod:`repro.obs.metrics` documents and the Grafana
    dashboards assume).  A histogram measuring something other than a
    duration is fine — but then it must declare explicit ``buckets``,
    which is also what makes it render sensibly."""
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("counter", "histogram"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        name = first.value
        if func.attr == "counter" and not name.endswith("_total"):
            issues.append(
                ctx.issue(
                    first,
                    "A302",
                    WARNING,
                    f"counter {name!r} does not end in _total "
                    f"(repro.obs.metrics naming convention)",
                )
            )
        elif (
            func.attr == "histogram"
            and not name.endswith("_seconds")
            and keyword_arg(node, "buckets") is None
            and len(node.args) < 2  # buckets may also be passed positionally
        ):
            issues.append(
                ctx.issue(
                    first,
                    "A302",
                    WARNING,
                    f"histogram {name!r} neither ends in _seconds nor "
                    f"declares explicit buckets; duration histograms take "
                    f"the _seconds suffix, size histograms take buckets=",
                )
            )
    return issues


def _module_level_latches(tree: ast.Module) -> Set[str]:
    """Module-scope boolean names ending in ``_warned`` (warn-once latches)."""
    latches: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if not isinstance(stmt.value.value, bool):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id.endswith("_warned"):
                    latches.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if (
                isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, bool)
                and stmt.target.id.endswith("_warned")
            ):
                latches.add(stmt.target.id)
    return latches


@rule("A303", WARNING, "warn-once latch without a reset_* hook")
def _check_warn_once_reset(ctx: FileContext) -> List[AnalysisIssue]:
    """A ``*_warned`` module global flips once per process; without a
    ``reset_*`` function that clears it, no test after the first can
    observe the warning (the flb_array kernel exposes
    ``reset_kernel_state()`` for exactly this)."""
    latches = _module_level_latches(ctx.tree)
    if not latches:
        return []
    resettable: Set[str] = set()
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        if not stmt.name.startswith("reset_"):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in latches:
                        resettable.add(target.id)
    issues: List[AnalysisIssue] = []
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        names: List[str] = []
        if isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt.target, ast.Name):
            names = [stmt.target.id]
        for name in names:
            if name in latches and name not in resettable:
                issues.append(
                    ctx.issue(
                        stmt,
                        "A303",
                        WARNING,
                        f"warn-once latch {name} has no module-level "
                        f"reset_* function assigning it; add one so tests "
                        f"can re-arm the warning",
                    )
                )
    return issues
