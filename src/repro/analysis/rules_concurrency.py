"""A1xx — concurrency rules: event-loop blocking, fork sharing, shm lifecycle.

These guard the serving plane's three concurrency regimes: the asyncio
event loop (one blocked coroutine stalls every connection), ``fork()``-ed
worker processes (a lock captured mid-acquire deadlocks the child — the
PR 2 timeout bug's family), and POSIX shared memory (a segment without an
unlink path leaks past process exit; CI's ``/dev/shm`` check catches it
only after the fact).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.engine import (
    ERROR,
    AnalysisIssue,
    FileContext,
    dotted_name,
    keyword_arg,
    rule,
)

__all__: List[str] = []

#: Exact dotted calls that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "select.select",
    "socket.create_connection",
}
#: Any call into these modules blocks (process spawn + wait, etc.).
_BLOCKING_PREFIXES = ("subprocess.",)
#: Method names that block regardless of receiver: pipe/connection/socket
#: reads and the multiprocessing join family.
_BLOCKING_METHODS = {"recv", "recv_bytes", "join_thread"}
#: Blocking builtins: synchronous file I/O and terminal reads.
_BLOCKING_BUILTINS = {"open", "input"}

#: threading primitives that must not be constructed at module scope in a
#: forking module (the factory names, as importable from ``threading``).
_THREADING_PRIMITIVES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _async_scope_calls(
    ctx: FileContext, func: ast.AsyncFunctionDef
) -> List[ast.Call]:
    """Calls lexically inside ``func``'s own async body — nested ``def``s,
    ``async def``s, and lambdas run in their own context and are skipped
    (a sync helper handed to ``asyncio.to_thread`` is the *fix*, not a
    finding)."""
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


@rule("A101", ERROR, "blocking call inside an async function")
def _check_async_blocking(ctx: FileContext) -> List[AnalysisIssue]:
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for call in _async_scope_calls(ctx, node):
            name = dotted_name(call.func)
            blocked: Optional[str] = None
            if name is not None and name in _BLOCKING_CALLS:
                blocked = name
            elif name is not None and name.startswith(_BLOCKING_PREFIXES):
                blocked = name
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _BLOCKING_METHODS
            ):
                blocked = f"<obj>.{call.func.attr}"
            elif (
                isinstance(call.func, ast.Name)
                and call.func.id in _BLOCKING_BUILTINS
            ):
                blocked = call.func.id
            if blocked is not None:
                issues.append(
                    ctx.issue(
                        call,
                        "A101",
                        ERROR,
                        f"blocking call {blocked}() inside async def "
                        f"{node.name}; it stalls the event loop — await an "
                        f"async equivalent or move it to asyncio.to_thread / "
                        f"run_in_executor",
                    )
                )
    return issues


def _threading_imports(tree: ast.Module) -> Set[str]:
    """Names bound by ``from threading import ...`` at any level."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _imports_multiprocessing(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and any(
            a.name.split(".")[0] == "multiprocessing" for a in node.names
        ):
            return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "multiprocessing":
                return True
    return False


def _is_module_scope(ctx: FileContext, node: ast.AST) -> bool:
    """True when no function or class encloses ``node``."""
    return not any(
        isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda))
        for a in ctx.ancestors(node)
    )


@rule("A102", ERROR, "module-level threading primitive in a forking module")
def _check_fork_shared_lock(ctx: FileContext) -> List[AnalysisIssue]:
    """A lock created at import time in a module that also drives
    ``multiprocessing`` is inherited by every forked child in whatever
    state a sibling thread left it — acquired by a thread that does not
    exist in the child means deadlocked forever.  Locks belong on
    instances created after the fork decision, or in the child itself."""
    if not _imports_multiprocessing(ctx.tree):
        return []
    from_threading = _threading_imports(ctx.tree)
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = dotted_name(value.func)
        primitive = None
        if name is not None and name.startswith("threading."):
            short = name.split(".", 1)[1]
            if short in _THREADING_PRIMITIVES:
                primitive = name
        elif name in _THREADING_PRIMITIVES and name in from_threading:
            primitive = f"threading.{name}"
        if primitive is None or not _is_module_scope(ctx, node):
            continue
        issues.append(
            ctx.issue(
                node,
                "A102",
                ERROR,
                f"module-level {primitive}() in a module that forks worker "
                f"processes; the child inherits it in an arbitrary state "
                f"(possibly held forever) — create it per instance after "
                f"the fork, or key it to the owning process",
            )
        )
    return issues


def _has_finally_unlink(func: ast.AST) -> bool:
    """True when some ``try``'s ``finally`` in ``func`` calls ``.unlink()``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "unlink"
                ):
                    return True
    return False


def _has_finalizer(scope: Optional[ast.AST]) -> bool:
    """True when ``scope`` registers a ``weakref.finalize`` (the class-level
    unlink discipline :class:`repro.graphstore.GraphStore` uses) or an
    ``atexit`` hook."""
    if scope is None:
        return False
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in ("weakref.finalize", "finalize", "atexit.register"):
            return True
    return False


@rule("A103", ERROR, "SharedMemory(create=True) without an unlink path")
def _check_shm_lifecycle(ctx: FileContext) -> List[AnalysisIssue]:
    """Every created segment needs a deterministic unlink: either a
    ``try/finally`` in the creating function or a ``weakref.finalize`` /
    ``atexit`` hook registered by the owning class or module — otherwise
    the segment outlives the process in ``/dev/shm``."""
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "SharedMemory":
            continue
        create = keyword_arg(node, "create")
        if not (isinstance(create, ast.Constant) and create.value is True):
            continue
        func = ctx.enclosing_function(node)
        if func is not None and _has_finally_unlink(func):
            continue
        if _has_finalizer(ctx.enclosing_class(node)):
            continue
        if func is None and _has_finalizer(ctx.tree):
            continue
        issues.append(
            ctx.issue(
                node,
                "A103",
                ERROR,
                "SharedMemory(create=True) with no matching unlink: add a "
                "try/finally calling .unlink(), or register a "
                "weakref.finalize/atexit finalizer on the owner",
            )
        )
    return issues
