"""A2xx — frozenness rules: immutable things must stay immutable.

The scheduling planes lean hard on freeze-then-share: frozen option
dataclasses (``SchedulingOptions``, ``ServeConfig``) cross thread and
process boundaries by reference, and a frozen :class:`~repro.graph.TaskGraph`
memoizes derived quantities (``_prop_cache``) and its content hash
(``_fingerprint``) on the assumption that nothing mutates after
``freeze()``.  Each rule here guards one way that assumption silently
breaks.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.analysis.engine import (
    ERROR,
    WARNING,
    AnalysisIssue,
    FileContext,
    dotted_name,
    rule,
)

__all__: List[str] = []

#: TaskGraph attributes owned by the graph plane (see A202).
_GRAPH_PRIVATE_ATTRS = {"_prop_cache", "_fingerprint"}

#: TaskGraph methods that mutate the graph (see A203).
_GRAPH_MUTATORS = {"add_task", "add_tasks", "add_edge", "set_name"}

#: Module prefix allowed to touch the graph plane's private state.
_GRAPH_PACKAGE = "repro.graph"


def _function_scopes(ctx: FileContext) -> List[ast.AST]:
    """Every analysis scope: the module plus each (async) function."""
    scopes: List[ast.AST] = [ctx.tree]
    for node in ctx.walk():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _scope_nodes(scope: ast.AST) -> List[ast.AST]:
    """Every AST node lexically in ``scope``'s own body — nested functions,
    classes, and lambdas are boundaries (their bodies belong to *their*
    scope, and get their own pass)."""
    out: List[ast.AST] = []
    body: List[ast.stmt] = (
        scope.body
        if isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef))
        else []
    )
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _own_statements(scope: ast.AST) -> List[ast.stmt]:
    """Statements belonging to ``scope`` itself, nested scopes excluded."""
    return [n for n in _scope_nodes(scope) if isinstance(n, ast.stmt)]


@rule("A201", ERROR, "attribute assignment to a frozen dataclass instance")
def _check_frozen_mutation(ctx: FileContext) -> List[AnalysisIssue]:
    """Two shapes: ``x = FrozenThing(...); x.field = v`` (raises
    ``FrozenInstanceError`` at runtime, but only on the path that hits
    it), and ``object.__setattr__(obj, ...)`` — the documented escape
    hatch, legal only inside ``__post_init__`` of the frozen class
    itself."""
    frozen = ctx.index.frozen_dataclasses
    issues: List[AnalysisIssue] = []
    for scope in _function_scopes(ctx):
        stmts = _own_statements(scope)
        bound: Dict[str, str] = {}
        for stmt in stmts:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                ctor = stmt.value.func
                cls = ctor.id if isinstance(ctor, ast.Name) else (
                    ctor.attr if isinstance(ctor, ast.Attribute) else None
                )
                if cls in frozen:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            bound[target.id] = cls
        if not bound:
            continue
        for stmt in stmts:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in bound
                ):
                    cls = bound[target.value.id]
                    issues.append(
                        ctx.issue(
                            stmt,
                            "A201",
                            ERROR,
                            f"assignment to {target.value.id}.{target.attr} "
                            f"but {target.value.id} holds frozen dataclass "
                            f"{cls}; build a new instance "
                            f"(dataclasses.replace) instead",
                        )
                    )
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        if dotted_name(node.func) != "object.__setattr__":
            continue
        func = ctx.enclosing_function(node)
        cls = ctx.enclosing_class(node)
        if (
            func is not None
            and func.name == "__post_init__"
            and cls is not None
            and cls.name in frozen
        ):
            continue
        issues.append(
            ctx.issue(
                node,
                "A201",
                ERROR,
                "object.__setattr__ outside a frozen dataclass's "
                "__post_init__: this bypasses the frozen contract the "
                "sharing planes rely on",
            )
        )
    return issues


@rule("A202", ERROR, "graph-plane private state touched outside repro.graph")
def _check_prop_cache_access(ctx: FileContext) -> List[AnalysisIssue]:
    """``_prop_cache``/``_fingerprint`` are owned by :mod:`repro.graph`:
    outside it, reads couple callers to the memo's private key scheme and
    writes can poison every later consumer of the frozen graph.  Use the
    public memo API (``TaskGraph.memo_get``/``memo_set``) instead."""
    if ctx.module == _GRAPH_PACKAGE or ctx.module.startswith(_GRAPH_PACKAGE + "."):
        return []
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in _GRAPH_PRIVATE_ATTRS:
            continue
        kind = "write to" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read of"
        issues.append(
            ctx.issue(
                node,
                "A202",
                ERROR,
                f"direct {kind} TaskGraph.{node.attr} outside repro.graph; "
                f"use the public memo API (memo_get/memo_set) or a "
                f"repro.graph.properties accessor",
            )
        )
    return issues


@rule("A203", WARNING, "TaskGraph mutated after freeze() in the same function")
def _check_mutate_after_freeze(ctx: FileContext) -> List[AnalysisIssue]:
    """``freeze()`` is a one-way door: a later ``add_task``/``add_edge``
    on the same variable raises ``FrozenGraphError`` at runtime — but only
    on the path that executes it.  Statement-ordered per function;
    modules inside :mod:`repro.graph` are exempt (the graph plane owns
    the freeze machinery itself)."""
    if ctx.module == _GRAPH_PACKAGE or ctx.module.startswith(_GRAPH_PACKAGE + "."):
        return []
    issues: List[AnalysisIssue] = []
    for scope in _function_scopes(ctx):
        frozen_at: Dict[str, int] = {}
        calls: List[Tuple[int, str, str, ast.Call]] = []
        for node in _scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            calls.append((node.lineno, func.value.id, func.attr, node))
        for lineno, var, method, _node in calls:
            if method == "freeze":
                prev = frozen_at.get(var)
                frozen_at[var] = lineno if prev is None else min(prev, lineno)
        for lineno, var, method, node in calls:
            frozen_line = frozen_at.get(var)
            if (
                method in _GRAPH_MUTATORS
                and frozen_line is not None
                and lineno > frozen_line
            ):
                issues.append(
                    ctx.issue(
                        node,
                        "A203",
                        WARNING,
                        f"{var}.{method}() after {var}.freeze() on line "
                        f"{frozen_line}: frozen graphs are immutable — "
                        f"mutate a copy(mutable=True) instead",
                    )
                )
    return issues
