"""A3xx (continued) — machine-model discipline rules.

A304 polices the PR 10 options migration: :class:`repro.api.SchedulingOptions`
now takes a first-class ``machine=MachineModel(...)`` and keeps the integer
``procs=`` only as a warn-once legacy shim.  New code spelling ``procs=``
re-enters the deprecated path (and, under a ``simplefilter("error")`` test,
explodes); this rule flags every such construction outside the shim layer
itself.  The deliberate legacy-coverage sites in ``tests/test_api_options.py``
are carried in ``tools/analysis-baseline.json``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import (
    WARNING,
    AnalysisIssue,
    FileContext,
    dotted_name,
    keyword_arg,
    rule,
)

__all__: List[str] = []

#: The one module allowed to construct the legacy form: the shim layer that
#: resolves ``procs`` into the homogeneous ``MachineModel``.
_SHIM_MODULE = "repro.api"


@rule("A304", WARNING, "SchedulingOptions built with legacy procs=")
def _check_legacy_procs_options(ctx: FileContext) -> List[AnalysisIssue]:
    """Flags ``SchedulingOptions(procs=...)`` constructions with a non-None
    value: the integer form is a deprecated warn-once shim that resolves to
    the homogeneous clique.  Spell the target explicitly —
    ``SchedulingOptions(machine=MachineModel(P))`` — so heterogeneous
    machines, cache fingerprints, and the warning-free path all hold."""
    if ctx.module == _SHIM_MODULE:
        return []
    issues: List[AnalysisIssue] = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "SchedulingOptions":
            continue
        value = keyword_arg(node, "procs")
        if value is None:
            continue
        if isinstance(value, ast.Constant) and value.value is None:
            continue
        issues.append(
            ctx.issue(
                value,
                "A304",
                WARNING,
                "SchedulingOptions(procs=...) uses the deprecated integer "
                "shim; pass machine=MachineModel(...) instead "
                "(docs/machine-model.md)",
            )
        )
    return issues
