"""Unified scheduling API: one options object for every entry point.

The three serving entry points — :func:`repro.schedule_graph` (one graph,
in-process), :func:`repro.batch.schedule_many` (a batch across worker
processes) and :meth:`repro.batch.BatchScheduler.run` (the long-lived
serving front-end) — grew drifting per-function keyword sets (``validate``
here, ``certify`` there, ``timeout``/``retries`` only on the batch side).
:class:`SchedulingOptions` replaces that drift with a single frozen
dataclass accepted by all three::

    from repro import SchedulingOptions, schedule_graph, schedule_many

    opts = SchedulingOptions(machine=MachineModel(8), validate=True)
    schedule = schedule_graph(graph, opts)
    results = schedule_many(jobs, workers=4, options=opts.replace(timeout=5.0))

The legacy keywords keep working through shims that emit a single
:class:`DeprecationWarning` per call and produce **bit-identical**
schedules (enforced by ``tests/test_api_options.py``).  Pool-shape
parameters that are not scheduling semantics (``workers``, ``grace``,
``backoff``, ``share_graphs``, ``cache``, ``store``) stay ordinary
keywords and never warn.

Fields (see each entry point for which ones it consumes):

* ``machine`` / ``algorithm`` — the scheduling request itself; used by
  :func:`schedule_graph`.  ``machine`` is a full
  :class:`~repro.machine.MachineModel` (processor count plus the
  heterogeneous hooks: ``speeds``, ``latency``, ``comm_scale``); the
  legacy ``procs`` field still works as a warn-once shim that resolves
  to the homogeneous default ``MachineModel(procs)`` (mixing both is a
  :class:`TypeError`; see ``docs/machine-model.md``).  Batch entry
  points take the request per :class:`~repro.batch.BatchJob`; a batch
  ``options.machine`` supplies the default machine for jobs that carry
  only an integer ``procs``.
* ``validate`` — re-check every schedule from first principles.
* ``certify`` — run the independent checker (:mod:`repro.verify`).
* ``timeout`` / ``retries`` — per-job execution budget and worker-death
  retries; batch-only (an in-process call cannot be contained).
* ``metrics`` — a :class:`repro.obs.MetricsRegistry` to record into;
  ``None`` (default) disables all instrumentation.
* ``kernel`` — which FLB implementation serves the request: ``"auto"``
  (default; numba when importable, array otherwise), ``"array"``
  (NumPy state vectors, interpreted), ``"numba"`` (njit-compiled) or
  ``"object"`` (the reference heap scheduler).  The ``REPRO_KERNEL``
  environment variable overrides this field; non-FLB algorithms ignore
  it.  See :mod:`repro.core.flb_array`.
* ``warm_start`` — reuse the clean prefix of a previously computed base
  schedule and replay FLB only over the dirty suffix
  (:mod:`repro.incremental`).  Bit-identical to a cold run, with a silent
  cold fallback (counted under ``incr_fallback_total``) whenever no
  usable base exists.  FLB array/numba kernels only; other requests
  ignore the flag.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graph.taskgraph import TaskGraph
    from repro.machine.model import MachineModel
    from repro.schedule.schedule import Schedule

__all__ = [
    "SchedulingOptions",
    "schedule_graph",
    "schedule_graph_async",
    "resolve_job_kernel",
    "UNSET",
    "resolve_options",
    "reset_options_deprecations",
]


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit default."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unset>"

    def __bool__(self) -> bool:
        return False


#: Default value for deprecated keyword shims: any other value means the
#: caller really passed the keyword, which triggers the deprecation path.
UNSET = _Unset()

#: Warn-once latch for the legacy ``procs=`` options field.
_procs_field_warned = False


def reset_options_deprecations() -> None:
    """Re-arm the one-per-process ``procs=`` deprecation warning (tests)."""
    global _procs_field_warned
    _procs_field_warned = False


@dataclass(frozen=True)
class SchedulingOptions:
    """The one scheduling-options record shared by every entry point.

    ``machine`` is the canonical spelling of the scheduling target; the
    legacy ``procs`` integer still works as a warn-once shim resolving to
    the homogeneous ``MachineModel(procs)``.  After construction both
    fields are populated (``procs`` mirrors ``machine.num_procs``), so
    existing readers of ``options.procs`` keep working; passing *both* at
    construction is a :class:`TypeError`, exactly like mixing ``options``
    with legacy keywords at an entry point.
    """

    procs: Optional[int] = None
    algorithm: str = "flb"
    validate: bool = False
    certify: bool = False
    timeout: Optional[float] = None
    retries: int = 2
    metrics: Optional[MetricsRegistry] = None
    kernel: str = "auto"
    warm_start: bool = False
    machine: Optional["MachineModel"] = None

    def __post_init__(self) -> None:
        global _procs_field_warned
        if self.procs is not None and self.machine is not None:
            # Only a caller can hand us both: the mirror backfill below
            # runs after this check, and replace() strips the mirror.
            raise TypeError(
                "SchedulingOptions: pass machine=MachineModel(...) or the "
                "legacy procs=, not both"
            )
        if self.procs is not None:
            if self.procs < 1:
                raise ValueError(f"procs must be >= 1, got {self.procs}")
            if not _procs_field_warned:
                _procs_field_warned = True
                warnings.warn(
                    "SchedulingOptions(procs=...) is deprecated; pass "
                    "machine=MachineModel(procs) instead (see "
                    "docs/machine-model.md). This warning is emitted once "
                    "per process.",
                    DeprecationWarning,
                    stacklevel=3,
                )
            from repro.machine.model import MachineModel

            object.__setattr__(self, "machine", MachineModel(self.procs))
        elif self.machine is not None:
            object.__setattr__(self, "procs", self.machine.num_procs)
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        from repro.core.flb_array import KERNEL_CHOICES, KernelSelectionError

        if self.kernel not in KERNEL_CHOICES:
            raise KernelSelectionError(
                f"unknown scheduling kernel kernel={self.kernel!r}; valid "
                f"values: {', '.join(KERNEL_CHOICES)}"
            )

    def replace(self, **changes: Any) -> "SchedulingOptions":
        """A copy with ``changes`` applied (frozen dataclasses are immutable).

        ``procs`` is derived state (the mirror of ``machine.num_procs``),
        so unless ``changes`` re-specifies it the copy is rebuilt from
        ``machine`` alone — replacing an unrelated field can never trip
        the procs/machine mixing check and never re-warns.
        """
        base = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        if "procs" in changes and "machine" not in changes:
            base["machine"] = None
        else:
            base["procs"] = None
        base.update(changes)
        return SchedulingOptions(**base)


def resolve_options(
    entry_point: str,
    options: Optional[SchedulingOptions],
    legacy: Dict[str, Any],
    stacklevel: int = 3,
) -> SchedulingOptions:
    """Fold an entry point's deprecated keywords into a ``SchedulingOptions``.

    ``legacy`` maps field name to the received value, with :data:`UNSET`
    standing for "not passed".  Exactly one :class:`DeprecationWarning` is
    emitted per call that used any legacy keyword; mixing ``options`` with
    legacy keywords is a :class:`TypeError` (the ambiguity has no right
    answer).
    """
    supplied = {k: v for k, v in legacy.items() if v is not UNSET}
    supplied_names = sorted(supplied)
    if options is not None:
        if supplied:
            raise TypeError(
                f"{entry_point}: pass either options=SchedulingOptions(...) or "
                f"the legacy keyword(s) {supplied_names}, not both"
            )
        return options
    if supplied.get("procs") is not None:
        # Resolve the legacy integer here so the options constructor's own
        # procs-field shim does not fire a second warning for this call.
        from repro.machine.model import MachineModel

        supplied["machine"] = MachineModel(supplied.pop("procs"))
    opts = SchedulingOptions(**supplied)
    if supplied_names:
        warnings.warn(
            f"{entry_point}: the {supplied_names} keyword(s) are deprecated; "
            f"pass options=SchedulingOptions(...) instead "
            f"(see docs/performance.md, 'Unified scheduling options')",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return opts


def resolve_job_kernel(algo: str, kernel: str) -> str:
    """The backend that will actually serve an ``(algo, kernel)`` request.

    This is the supervisor-side twin of the decision every execution path
    makes (``schedule_graph``, the batch worker body, the serving plane):
    non-FLB algorithms and registry overrides of ``"flb"`` always run the
    ``object`` path; FLB requests resolve through
    :func:`repro.core.flb_array.resolve_kernel` (honouring ``REPRO_KERNEL``
    and the numba fallback).  Result-cache and request-coalescing keys are
    built from this resolved name so that cached results can never
    misreport the backend that computed them, and so that ``auto`` and its
    resolution share one cache entry.
    """
    if algo != "flb":
        return "object"
    from repro.core.flb_array import resolve_kernel, stock_flb_registered

    if not stock_flb_registered():
        return "object"
    return resolve_kernel(kernel)


async def schedule_graph_async(
    graph: "TaskGraph",
    options: Optional[SchedulingOptions] = None,
    *,
    machine: Optional["MachineModel"] = None,
    **kwargs: Any,
) -> "Schedule":
    """Async-friendly :func:`schedule_graph`: runs the (CPU-bound,
    GIL-holding-in-bursts) kernel in the default thread executor so an
    asyncio event loop — e.g. the :mod:`repro.serve` front-end — stays
    responsive while a schedule is computed.

    Semantics are exactly :func:`schedule_graph` with the canonical
    ``options`` spelling; legacy keywords are not accepted here (this
    entry point is newer than the deprecation).
    """
    import asyncio
    import functools

    return await asyncio.get_running_loop().run_in_executor(
        None,
        functools.partial(
            schedule_graph, graph, options=options, machine=machine, **kwargs
        ),
    )


def schedule_graph(
    graph: "TaskGraph",
    num_procs: Any = None,
    algorithm: Any = UNSET,
    *,
    options: Optional[SchedulingOptions] = None,
    machine: Optional["MachineModel"] = None,
    base: Optional["Schedule"] = None,
    **kwargs: Any,
) -> "Schedule":
    """Schedule ``graph`` in-process with the configured algorithm.

    The canonical form takes a :class:`SchedulingOptions` (keyword or as
    the second positional argument)::

        schedule_graph(graph, SchedulingOptions(machine=MachineModel(8),
                                                algorithm="etf"))
        schedule_graph(graph, options=opts, machine=hetero_machine)

    ``options.machine`` carries the target machine (heterogeneous models
    included); the ``machine=`` keyword, when given, overrides it for this
    call.  The legacy ``options.procs`` integer resolves to the
    homogeneous ``MachineModel(procs)`` and yields a bit-identical
    schedule.

    ``options.validate`` re-checks the result from first principles;
    ``options.certify`` additionally runs the independent checker
    (:func:`repro.verify.certify`, including the FLB/ETF greedy
    certificate) and raises
    :class:`~repro.exceptions.InvalidScheduleError` on a failed
    certificate.  ``options.metrics`` records a ``sched.kernel`` span with
    the kernel wall time (``timeout``/``retries`` do not apply in-process
    and are ignored).  Extra keywords (``observer=...``,
    ``prefer_non_ep_on_tie=...``) pass through to the algorithm.

    The legacy form ``schedule_graph(graph, num_procs, algorithm="flb")``
    keeps working, emits one :class:`DeprecationWarning`, and returns a
    bit-identical schedule.

    ``base`` passes an explicit warm-start base schedule;
    ``options.warm_start`` alone consults the process-global
    :func:`repro.incremental.base_cache` instead and stores this run's
    result there for future deltas.  Either way the FLB array/numba path
    replays the base's clean prefix when it can and silently runs cold
    when it cannot (see :mod:`repro.incremental`); the object path ignores
    warm-start entirely.
    """
    from repro.schedulers import get_scheduler

    if isinstance(num_procs, SchedulingOptions):
        if options is not None:
            raise TypeError("schedule_graph: options passed twice")
        options = num_procs
        num_procs = None
    opts = resolve_options(
        "schedule_graph",
        options,
        {
            "procs": num_procs if num_procs is not None else UNSET,
            "algorithm": algorithm,
        },
    )
    # The machine= keyword wins over options.machine for this call; the
    # options mirror guarantees opts.machine is set whenever opts.procs is.
    eff_machine = machine if machine is not None else opts.machine
    metrics = opts.metrics
    kernel = "object"
    if opts.algorithm == "flb" and "observer" not in kwargs:
        # Observers need the instrumented object scheduler, and a registry
        # override of "flb" must win; everything else is eligible for the
        # array-native kernel.
        from repro.core.flb_array import resolve_kernel, stock_flb_registered

        if stock_flb_registered():
            kernel = resolve_kernel(opts.kernel)
    if kernel != "object":
        from repro.core.flb_array import flb_array

        warm_base = base
        if warm_base is None and opts.warm_start:
            from repro.incremental import base_cache

            warm_base = base_cache().get(graph.fingerprint())

        def _run() -> "Schedule":
            result = flb_array(
                graph,
                opts.procs,
                machine=eff_machine,
                backend=kernel,
                metrics=metrics,
                base=warm_base,
                **kwargs,
            )
            if opts.warm_start:
                from repro.incremental import base_cache

                base_cache().put(graph.fingerprint(), result)
            return result

    else:
        scheduler = get_scheduler(opts.algorithm)

        def _run() -> "Schedule":
            return scheduler(graph, opts.procs, machine=eff_machine, **kwargs)

    if metrics is not None:
        with metrics.span("sched.kernel", algo=opts.algorithm, kernel=kernel) as s:
            schedule = _run()
            s.annotate(
                procs=schedule.num_procs,
                tasks=graph.num_tasks,
                makespan=schedule.makespan,
            )
    else:
        schedule = _run()
    if opts.validate and not opts.certify:
        schedule.validate()
    if opts.certify:
        # The certificate subsumes validation: it checks the structural
        # invariants plus the greedy certificate where the algorithm owes one.
        from repro.exceptions import InvalidScheduleError
        from repro.verify import certify as certify_schedule
        from repro.verify import greedy_flavor

        if metrics is not None:
            with metrics.span("verify.certify", algo=opts.algorithm):
                cert = certify_schedule(schedule, flavor=greedy_flavor(opts.algorithm))
        else:
            cert = certify_schedule(schedule, flavor=greedy_flavor(opts.algorithm))
        if not cert.ok:
            detail = "; ".join(f"{v.code} {v.message}" for v in cert.violations[:5])
            raise InvalidScheduleError(f"certification failed: {detail}")
    return schedule
