"""Parallel batch scheduling: fan many (graph, procs, algo) jobs across
supervised worker processes.

The north-star for this reproduction is serving scheduling requests at
scale: one request is a task graph plus a machine size plus an algorithm
choice, and the answer is a schedule summary.  :func:`schedule_many` is that
front-end — it fans a list of :class:`BatchJob` across supervised worker
processes (:mod:`repro.workerpool`; scheduling is pure CPU-bound Python, so
processes, not threads) with per-job error capture: one malformed graph or
crashed worker produces a :class:`BatchResult` with ``error`` set instead of
poisoning the whole batch.

The failure contract is the point (and what a plain
``ProcessPoolExecutor`` cannot deliver):

* **deadlines hold** — a job that exceeds ``timeout`` has its worker killed
  and its slot replaced, so a scheduler hung in an infinite loop delays the
  batch by at most ``timeout + grace``, never forever;
* **timeouts measure execution, not queueing** — the budget clock starts
  when the worker begins the job, so jobs queued behind a slow one are
  never falsely expired; :attr:`BatchResult.queue_seconds` and
  :attr:`BatchResult.seconds` report the two phases separately;
* **worker deaths are retried** — a job whose worker is OOM-killed or
  segfaults is re-run up to ``retries`` times with exponential backoff
  before being reported as ``worker-died``;
* **failures are typed** — :attr:`BatchResult.error_kind` is one of
  :data:`ERROR_KINDS` (``timeout`` / ``worker-died`` / ``scheduler-error``
  / ``invalid-schedule``), so callers branch on the kind instead of
  parsing tracebacks.

Results deliberately carry scalar summaries (makespan, speedup, processors
used, timing) rather than full :class:`~repro.schedule.Schedule` objects:
a schedule is ``O(V)`` to pickle and batches are large; callers that need
placements re-run the single job in-process — schedulers are deterministic,
so the re-run reproduces the batch answer exactly.

``repro-sched batch`` exposes this on the command line, and
:func:`repro.bench.runner.run_sweep` uses it to parallelize the quality
figures (Figs. 3/4) when asked for ``workers > 1``.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro import workerpool

__all__ = [
    "BatchJob",
    "BatchResult",
    "schedule_many",
    "batch_throughput",
    "ERROR_KINDS",
    "TIMEOUT",
    "WORKER_DIED",
    "SCHEDULER_ERROR",
    "INVALID_SCHEDULE",
]

# The batch error taxonomy (BatchResult.error_kind for failed jobs):
TIMEOUT = "timeout"                    # exceeded the per-job execution budget
WORKER_DIED = "worker-died"            # worker killed/crashed; retries exhausted
SCHEDULER_ERROR = "scheduler-error"    # the scheduling algorithm raised
INVALID_SCHEDULE = "invalid-schedule"  # schedule failed validation / degenerate
ERROR_KINDS = (TIMEOUT, WORKER_DIED, SCHEDULER_ERROR, INVALID_SCHEDULE)


@dataclass(frozen=True)
class BatchJob:
    """One scheduling request.

    ``tag`` is an opaque caller identifier echoed into the result (problem
    name, request id, ...).  ``machine`` overrides the default homogeneous
    clique of ``procs`` processors.
    """

    graph: TaskGraph
    procs: int
    algo: str = "flb"
    tag: str = ""
    machine: Optional[MachineModel] = None


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :class:`BatchJob`; ``error`` is ``None`` on success.

    ``seconds`` is execution time only; ``queue_seconds`` is the wait
    between submission and execution start (always 0 when running inline).
    ``error_kind`` is one of :data:`ERROR_KINDS` whenever ``error`` is set.
    ``attempts`` counts runs including the final one (> 1 only after
    worker-death retries).
    """

    tag: str
    algo: str
    procs: int
    num_tasks: int
    makespan: float
    speedup: float
    procs_used: int
    seconds: float
    error: Optional[str] = None
    error_kind: Optional[str] = None
    queue_seconds: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def _failed_result(
    job: BatchJob,
    seconds: float,
    error: str,
    error_kind: str,
    queue_seconds: float = 0.0,
    attempts: int = 1,
) -> BatchResult:
    return BatchResult(
        tag=job.tag,
        algo=job.algo,
        procs=job.procs,
        num_tasks=job.graph.num_tasks if job.graph is not None else 0,
        makespan=float("nan"),
        speedup=float("nan"),
        procs_used=0,
        seconds=seconds,
        error=error,
        error_kind=error_kind,
        queue_seconds=queue_seconds,
        attempts=attempts,
    )


def _run_job(job: BatchJob, validate: bool) -> BatchResult:
    """Worker body: schedule one job, mapping any failure to ``error``.

    Top-level so worker processes can import it; exceptions are rendered to
    strings here because traceback objects do not cross process boundaries.
    A raising scheduler is a ``scheduler-error``; a schedule that fails
    validation (or is too degenerate to summarize) is ``invalid-schedule``.
    """
    from repro.metrics.metrics import speedup as speedup_of
    from repro.schedulers import get_scheduler

    t0 = time.perf_counter()
    try:
        scheduler = get_scheduler(job.algo)
        schedule = scheduler(job.graph, job.procs if job.machine is None else None,
                             machine=job.machine)
    except Exception:
        return _failed_result(
            job, time.perf_counter() - t0, traceback.format_exc(limit=8),
            SCHEDULER_ERROR,
        )
    try:
        if validate:
            schedule.validate()
        return BatchResult(
            tag=job.tag,
            algo=job.algo,
            procs=schedule.num_procs,
            num_tasks=job.graph.num_tasks,
            makespan=schedule.makespan,
            speedup=speedup_of(schedule),
            procs_used=schedule.num_procs_used(),
            seconds=time.perf_counter() - t0,
            error=None,
        )
    except Exception:
        return _failed_result(
            job, time.perf_counter() - t0, traceback.format_exc(limit=8),
            INVALID_SCHEDULE,
        )


def _run_packed(packed) -> BatchResult:
    """Module-level runner for the worker pool (must be picklable)."""
    job, validate = packed
    return _run_job(job, validate)


def schedule_many(
    jobs: Iterable[BatchJob],
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    validate: bool = False,
    *,
    grace: float = 1.0,
    retries: int = 2,
    backoff: float = 0.1,
) -> List[BatchResult]:
    """Schedule every job, in parallel when ``workers > 1``.

    Parameters
    ----------
    jobs:
        The scheduling requests; results come back in the same order.
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker (or one job) everything runs inline in this process.
    timeout:
        Per-job execution budget in seconds, measured from the moment a
        worker starts the job (queue wait never counts).  An overrunning
        job's worker is **killed** and the pool slot replaced, so a hung
        scheduler delays the batch by at most ``timeout + grace``; the job
        gets a ``timeout`` :class:`BatchResult` and every other job still
        completes.  Ignored when running inline (a hung job would hang the
        caller's own process either way — use ``workers >= 2`` for
        containment).
    validate:
        Re-check every produced schedule from first principles
        (:meth:`~repro.schedule.Schedule.validate`) inside the worker; a
        violation is reported as ``invalid-schedule``.
    grace:
        Slack for detecting and killing an overrunning worker past
        ``timeout``, and the force-kill budget at shutdown.
    retries:
        How many times a job whose worker *died* (OOM-kill, segfault) is
        re-run before reporting ``worker-died``; timeouts are never retried
        (schedulers are deterministic — an overrun would simply repeat).
    backoff:
        Base delay in seconds before a death retry; doubles per attempt.

    Returns
    -------
    list[BatchResult]
        One result per job, ``error``/``error_kind`` set for failures —
        never raises for a job-level problem.
    """
    jobs = list(jobs)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(jobs) <= 1:
        # Parameter validation still applies on the inline path so callers
        # get consistent errors regardless of batch size.
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if grace <= 0:
            raise ValueError(f"grace must be positive, got {grace}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        return [_run_job(job, validate) for job in jobs]

    outcomes = workerpool.run_supervised(
        [(job, validate) for job in jobs],
        _run_packed,
        workers=min(workers, len(jobs)),
        timeout=timeout,
        grace=grace,
        retries=retries,
        backoff=backoff,
    )
    results: List[BatchResult] = []
    for job, outcome in zip(jobs, outcomes):
        if outcome.kind == workerpool.COMPLETED:
            results.append(replace(
                outcome.value,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        elif outcome.kind == workerpool.TIMEOUT:
            results.append(_failed_result(
                job, outcome.seconds,
                f"timeout: job exceeded its {timeout:g}s budget "
                f"({outcome.error})",
                TIMEOUT,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        elif outcome.kind == workerpool.DIED:
            results.append(_failed_result(
                job, outcome.seconds,
                f"worker-died: {outcome.error}",
                WORKER_DIED,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        else:  # RAISED: _run_job catches everything, so this is exotic
            results.append(_failed_result(
                job, outcome.seconds, outcome.error or "worker raised",
                SCHEDULER_ERROR,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
    return results


def batch_throughput(results: Sequence[BatchResult], wall_seconds: float) -> float:
    """Aggregate scheduling throughput: total tasks scheduled per second of
    batch wall-clock time (failed jobs contribute no tasks)."""
    if wall_seconds <= 0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    return sum(r.num_tasks for r in results if r.ok) / wall_seconds
