"""Parallel batch scheduling: fan many (graph, procs, algo) jobs across
worker processes.

The north-star for this reproduction is serving scheduling requests at
scale: one request is a task graph plus a machine size plus an algorithm
choice, and the answer is a schedule summary.  :func:`schedule_many` is that
front-end — it fans a list of :class:`BatchJob` across a
``ProcessPoolExecutor`` (scheduling is pure CPU-bound Python, so processes,
not threads), with per-job wall-clock timeouts and per-job error capture:
one malformed graph or crashed worker produces a :class:`BatchResult` with
``error`` set instead of poisoning the whole batch.

Results deliberately carry scalar summaries (makespan, speedup, processors
used, timing) rather than full :class:`~repro.schedule.Schedule` objects:
a schedule is ``O(V)`` to pickle and batches are large; callers that need
placements re-run the single job in-process — schedulers are deterministic,
so the re-run reproduces the batch answer exactly.

``repro-sched batch`` exposes this on the command line, and
:func:`repro.bench.runner.run_sweep` uses it to parallelize the quality
figures (Figs. 3/4) when asked for ``workers > 1``.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel

__all__ = ["BatchJob", "BatchResult", "schedule_many", "batch_throughput"]


@dataclass(frozen=True)
class BatchJob:
    """One scheduling request.

    ``tag`` is an opaque caller identifier echoed into the result (problem
    name, request id, ...).  ``machine`` overrides the default homogeneous
    clique of ``procs`` processors.
    """

    graph: TaskGraph
    procs: int
    algo: str = "flb"
    tag: str = ""
    machine: Optional[MachineModel] = None


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :class:`BatchJob`; ``error`` is ``None`` on success."""

    tag: str
    algo: str
    procs: int
    num_tasks: int
    makespan: float
    speedup: float
    procs_used: int
    seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_job(job: BatchJob, validate: bool) -> BatchResult:
    """Worker body: schedule one job, mapping any failure to ``error``.

    Top-level so worker processes can import it; exceptions are rendered to
    strings here because traceback objects do not cross process boundaries.
    """
    from repro.metrics.metrics import speedup as speedup_of
    from repro.schedulers import get_scheduler

    t0 = time.perf_counter()
    try:
        scheduler = get_scheduler(job.algo)
        schedule = scheduler(job.graph, job.procs if job.machine is None else None,
                             machine=job.machine)
        if validate:
            schedule.validate()
        return BatchResult(
            tag=job.tag,
            algo=job.algo,
            procs=schedule.num_procs,
            num_tasks=job.graph.num_tasks,
            makespan=schedule.makespan,
            speedup=speedup_of(schedule),
            procs_used=schedule.num_procs_used(),
            seconds=time.perf_counter() - t0,
            error=None,
        )
    except Exception:
        return BatchResult(
            tag=job.tag,
            algo=job.algo,
            procs=job.procs,
            num_tasks=job.graph.num_tasks if job.graph is not None else 0,
            makespan=float("nan"),
            speedup=float("nan"),
            procs_used=0,
            seconds=time.perf_counter() - t0,
            error=traceback.format_exc(limit=8),
        )


def _timeout_result(job: BatchJob, seconds: float, timeout: float) -> BatchResult:
    return BatchResult(
        tag=job.tag,
        algo=job.algo,
        procs=job.procs,
        num_tasks=job.graph.num_tasks,
        makespan=float("nan"),
        speedup=float("nan"),
        procs_used=0,
        seconds=seconds,
        error=f"timeout: job exceeded {timeout:g}s",
    )


def schedule_many(
    jobs: Iterable[BatchJob],
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    validate: bool = False,
) -> List[BatchResult]:
    """Schedule every job, in parallel when ``workers > 1``.

    Parameters
    ----------
    jobs:
        The scheduling requests; results come back in the same order.
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker (or one job) everything runs inline in this process.
    timeout:
        Per-job wall-clock budget in seconds.  A job that exceeds it gets a
        ``timeout`` :class:`BatchResult`; jobs not yet started are cancelled
        and re-run inline (so the returned list is always complete) — only
        the overrunning job is lost.  Ignored when running inline.
    validate:
        Re-check every produced schedule from first principles
        (:meth:`~repro.schedule.Schedule.validate`) inside the worker.

    Returns
    -------
    list[BatchResult]
        One result per job, ``error`` set for failures — never raises for a
        job-level problem.
    """
    jobs = list(jobs)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(jobs) <= 1:
        return [_run_job(job, validate) for job in jobs]

    results: List[Optional[BatchResult]] = [None] * len(jobs)
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        future_index = {}
        started = {}
        for i, job in enumerate(jobs):
            fut = pool.submit(_run_job, job, validate)
            future_index[fut] = i
            started[fut] = time.perf_counter()
        pending = set(future_index)
        while pending:
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = time.perf_counter()
            for fut in done:
                i = future_index[fut]
                try:
                    results[i] = fut.result()
                except Exception:  # worker process died (e.g. OOM-kill)
                    results[i] = replace(
                        _run_job_error_stub(jobs[i]),
                        error=traceback.format_exc(limit=4),
                    )
            if timeout is not None:
                expired = [f for f in pending if now - started[f] > timeout]
                for fut in expired:
                    i = future_index[fut]
                    if fut.cancel():
                        # Never started: run it inline so the batch stays
                        # complete; the pool was merely saturated.
                        results[i] = _run_job(jobs[i], validate)
                    else:
                        results[i] = _timeout_result(
                            jobs[i], now - started[fut], timeout
                        )
                    pending.discard(fut)
        pool.shutdown(wait=False, cancel_futures=True)
    return [r for r in results if r is not None]


def _run_job_error_stub(job: BatchJob) -> BatchResult:
    return _timeout_result(job, 0.0, 0.0)


def batch_throughput(results: Sequence[BatchResult], wall_seconds: float) -> float:
    """Aggregate scheduling throughput: total tasks scheduled per second of
    batch wall-clock time (failed jobs contribute no tasks)."""
    if wall_seconds <= 0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    return sum(r.num_tasks for r in results if r.ok) / wall_seconds
