"""Parallel batch scheduling: fan many (graph, procs, algo) jobs across
supervised worker processes.

The north-star for this reproduction is serving scheduling requests at
scale: one request is a task graph plus a machine size plus an algorithm
choice, and the answer is a schedule summary.  :func:`schedule_many` is that
front-end — it fans a list of :class:`BatchJob` across supervised worker
processes (:mod:`repro.workerpool`; scheduling is pure CPU-bound Python, so
processes, not threads) with per-job error capture: one malformed graph or
crashed worker produces a :class:`BatchResult` with ``error`` set instead of
poisoning the whole batch.

The failure contract is the point (and what a plain
``ProcessPoolExecutor`` cannot deliver):

* **deadlines hold** — a job that exceeds ``timeout`` has its worker killed
  and its slot replaced, so a scheduler hung in an infinite loop delays the
  batch by at most ``timeout + grace``, never forever;
* **timeouts measure execution, not queueing** — the budget clock starts
  when the worker begins the job, so jobs queued behind a slow one are
  never falsely expired; :attr:`BatchResult.queue_seconds` and
  :attr:`BatchResult.seconds` report the two phases separately;
* **worker deaths are retried** — a job whose worker is OOM-killed or
  segfaults is re-run up to ``retries`` times with exponential backoff
  before being reported as ``worker-died``;
* **failures are typed** — :attr:`BatchResult.error_kind` is one of
  :data:`ERROR_KINDS` (``timeout`` / ``worker-died`` / ``scheduler-error``
  / ``invalid-schedule``), so callers branch on the kind instead of
  parsing tracebacks.

Results deliberately carry scalar summaries (makespan, speedup, processors
used, timing) rather than full :class:`~repro.schedule.Schedule` objects:
a schedule is ``O(V)`` to pickle and batches are large; callers that need
placements re-run the single job in-process — schedulers are deterministic,
so the re-run reproduces the batch answer exactly.

Graphs themselves do not ride the pipe either, when they can avoid it: the
**graph plane** (:mod:`repro.graphstore`) registers each distinct graph
once into POSIX shared memory, keyed by its content fingerprint, and jobs
carry the small segment key instead of an ``O(V + E)`` pickle.  One-shot
graphs below :data:`INLINE_ONESHOT_MAX` tasks+edges still travel inline
(a tiny pickle beats a segment round-trip).  On top of that, an optional
content-addressed :class:`~repro.resultcache.ResultCache` answers repeated
``(graph, procs, algo)`` requests in ``O(1)`` without dispatching a worker
at all — schedulers are deterministic, so cache hits are exact.
:class:`BatchScheduler` bundles both into a long-lived serving front-end.

``repro-sched batch`` exposes this on the command line, and
:func:`repro.bench.runner.run_sweep` uses it to parallelize the quality
figures (Figs. 3/4) when asked for ``workers > 1``.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api import UNSET, SchedulingOptions, resolve_job_kernel, resolve_options
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.resultcache import DEFAULT_CACHE_SIZE, CacheKey, ResultCache
from repro.resultcache import make_key as make_cache_key
from repro import graphstore, workerpool

__all__ = [
    "BatchJob",
    "BatchResult",
    "BatchScheduler",
    "schedule_many",
    "batch_throughput",
    "batch_stats",
    "ERROR_KINDS",
    "TIMEOUT",
    "WORKER_DIED",
    "SCHEDULER_ERROR",
    "INVALID_SCHEDULE",
    "INLINE_ONESHOT_MAX",
]

#: One-shot graphs with fewer than this many tasks+edges are pickled inline
#: instead of going through shared memory: for tiny graphs the pickle is a
#: few KiB and a segment create/attach round-trip costs more than it saves.
#: Any graph referenced by two or more jobs in a batch is always shared.
INLINE_ONESHOT_MAX = 512

# The batch error taxonomy (BatchResult.error_kind for failed jobs):
TIMEOUT = "timeout"                    # exceeded the per-job execution budget
WORKER_DIED = "worker-died"            # worker killed/crashed; retries exhausted
SCHEDULER_ERROR = "scheduler-error"    # the scheduling algorithm raised
INVALID_SCHEDULE = "invalid-schedule"  # schedule failed validation / degenerate
ERROR_KINDS = (TIMEOUT, WORKER_DIED, SCHEDULER_ERROR, INVALID_SCHEDULE)


@dataclass(frozen=True)
class BatchJob:
    """One scheduling request.

    ``tag`` is an opaque caller identifier echoed into the result (problem
    name, request id, ...).  The target machine is either ``machine`` (a
    full :class:`~repro.machine.MachineModel`, heterogeneous models
    included) or the legacy ``procs`` integer, which resolves to the
    homogeneous clique ``MachineModel(procs)``; passing both with
    disagreeing processor counts is a :class:`ValueError`.  A job carrying
    neither inherits the batch default
    (``SchedulingOptions.machine``) at dispatch time.

    ``graph_key`` is the graph-plane alternative to ``graph``: the name of
    a shared-memory segment registered via :class:`repro.graphstore.GraphStore`
    (typically :meth:`BatchScheduler.register`).  Submit either a ``graph``
    (the dispatcher decides whether to share it) or ``graph=None`` plus a
    ``graph_key`` for a pre-registered graph; workers resolve keys through
    their per-process decoded-graph LRU.

    ``base_fingerprint`` names the preferred warm-start base for a delta
    request: when the batch runs with warm-start enabled
    (``SchedulingOptions.warm_start``), the FLB array path looks this
    fingerprint up in the process-global
    :func:`repro.incremental.base_cache` and replays only the dirty
    suffix of the graph against that base's schedule.  ``None`` falls
    back to the most recently stored base; a miss or an unusable base
    runs cold — the answer is bit-identical either way.
    """

    graph: Optional[TaskGraph]
    procs: Optional[int] = None
    algo: str = "flb"
    tag: str = ""
    machine: Optional[MachineModel] = None
    graph_key: Optional[str] = None
    base_fingerprint: Optional[str] = None

    def __post_init__(self) -> None:
        if (
            self.procs is not None
            and self.machine is not None
            and self.machine.num_procs != self.procs
        ):
            raise ValueError(
                f"BatchJob procs={self.procs} conflicts with "
                f"machine.num_procs={self.machine.num_procs}"
            )


#: Memo of homogeneous machines by processor count, so the per-job
#: ``procs -> MachineModel`` resolution shares one instance (and its
#: memoized fingerprint) across a whole batch.
_homog_machines: Dict[int, MachineModel] = {}


def _homogeneous(procs: int) -> MachineModel:
    machine = _homog_machines.get(procs)
    if machine is None:
        machine = MachineModel(procs)
        _homog_machines[procs] = machine
    return machine


def _effective_machine(
    job: BatchJob, default: Optional[MachineModel]
) -> Optional[MachineModel]:
    """The machine a job will actually run on: the job's own ``machine``,
    else the homogeneous clique of its ``procs``, else the batch default."""
    if job.machine is not None:
        return job.machine
    if job.procs is not None:
        return _homogeneous(job.procs)
    return default


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :class:`BatchJob`; ``error`` is ``None`` on success.

    ``seconds`` is execution time only; ``queue_seconds`` is the wait
    between submission and execution start (always 0 when running inline).
    ``error_kind`` is one of :data:`ERROR_KINDS` whenever ``error`` is set.
    ``attempts`` counts runs including the final one (> 1 only after
    worker-death retries).  ``cached`` marks a result-cache hit: no worker
    ran, ``seconds``/``queue_seconds`` are 0, and the summary numbers are
    bit-identical to the original computation (schedulers are
    deterministic).  ``certified`` marks a schedule that passed the
    independent checker (:func:`repro.verify.certify`), including the
    FLB/ETF greedy certificate where the algorithm owes one; it is only
    ever ``True`` when the batch ran with ``certify=True``.  ``phases`` is
    the worker-measured phase breakdown in seconds (``attach`` /
    ``schedule`` / ``certify``), populated only when the batch ran with
    metrics enabled; the observability plane adds ``queue`` and the
    dispatch/reply residual (``other``) supervisor-side (see
    docs/observability.md).  ``kernel`` names the FLB backend that served
    the job (``object`` / ``array`` / ``numba``; always ``object`` for
    non-FLB algorithms and for failed or cached results).  ``warm`` is
    the warm-start outcome when the batch ran with warm-start enabled and
    a base schedule was available: either the replay accounting
    (``reused`` / ``replayed`` / ``total`` / ``dirty`` / ``fraction``) or
    ``{"fallback": reason}`` when the base could not be reused; ``None``
    when warm-start was off or no base existed yet.
    """

    tag: str
    algo: str
    procs: int
    num_tasks: int
    makespan: float
    speedup: float
    procs_used: int
    seconds: float
    error: Optional[str] = None
    error_kind: Optional[str] = None
    queue_seconds: float = 0.0
    attempts: int = 1
    cached: bool = False
    certified: bool = False
    phases: Optional[Dict[str, float]] = None
    kernel: str = "object"
    warm: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _failed_result(
    job: BatchJob,
    seconds: float,
    error: str,
    error_kind: str,
    queue_seconds: float = 0.0,
    attempts: int = 1,
    phases: Optional[Dict[str, float]] = None,
) -> BatchResult:
    # Resolved without building a MachineModel: the job may be failing
    # precisely because its procs are un-modelable (e.g. procs=0).
    if job.machine is not None:
        procs = job.machine.num_procs
    else:
        procs = job.procs if job.procs is not None else 0
    return BatchResult(
        tag=job.tag,
        algo=job.algo,
        procs=procs,
        num_tasks=job.graph.num_tasks if job.graph is not None else 0,
        makespan=float("nan"),
        speedup=float("nan"),
        procs_used=0,
        seconds=seconds,
        error=error,
        error_kind=error_kind,
        queue_seconds=queue_seconds,
        attempts=attempts,
        phases=phases,
    )


def _run_job(
    job: BatchJob,
    validate: bool,
    certify: bool = False,
    measure: bool = False,
    kernel: str = "auto",
    warm_start: bool = False,
    machine: Optional[MachineModel] = None,
) -> BatchResult:
    """Worker body: schedule one job, mapping any failure to ``error``.

    ``machine`` is the batch-level default model; the job's own
    ``machine``/``procs`` win over it (see :func:`_effective_machine`).

    Top-level so worker processes can import it; exceptions are rendered to
    strings here because traceback objects do not cross process boundaries.
    A raising scheduler is a ``scheduler-error``; a schedule that fails
    validation or certification (or is too degenerate to summarize) is
    ``invalid-schedule``.  With ``measure`` (metrics enabled), per-phase
    durations are captured into :attr:`BatchResult.phases` — two extra
    clock reads per phase, nothing more.

    With ``warm_start``, FLB array/numba jobs consult the process-global
    :func:`repro.incremental.base_cache` (preferring
    ``job.base_fingerprint``) for a base schedule to replay, and publish
    their own result there afterwards.  On the pool path each worker
    process keeps its own base cache, warming up as it serves; the inline
    path (single jobs, the serving front-end) shares the supervisor's.
    """
    from repro.metrics.metrics import speedup as speedup_of
    from repro.schedulers import get_scheduler

    phases: Optional[Dict[str, float]] = {} if measure else None
    t0 = time.perf_counter()
    try:
        if job.graph is None and job.graph_key is not None:
            # Graph-plane dispatch: resolve the key through this process's
            # decoded-graph LRU (decodes from shared memory at most once
            # per worker per graph).
            job = replace(job, graph=graphstore.attach(job.graph_key))
            if phases is not None:
                phases["attach"] = time.perf_counter() - t0
        resolved = "object"
        if job.algo == "flb":
            from repro.core.flb_array import resolve_kernel, stock_flb_registered

            if stock_flb_registered():
                resolved = resolve_kernel(kernel)
        eff_machine = _effective_machine(job, machine)
        t_sched = time.perf_counter()
        warm: Optional[Dict[str, Any]] = None
        if resolved != "object":
            from repro.core.flb_array import flb_array

            base = None
            if warm_start:
                from repro.incremental import base_cache

                base = base_cache().get(job.base_fingerprint)
                warm = {}
            schedule = flb_array(
                job.graph, machine=eff_machine, backend=resolved,
                base=base, warm_stats=warm,
            )
            if warm_start:
                from repro.incremental import base_cache

                base_cache().put(job.graph.fingerprint(), schedule)
            if warm and "fallback" not in warm:
                # The reused prefix is replayed and the dirty suffix runs
                # the interpreted array driver — report the backend that
                # actually served the job.
                resolved = "array"
        else:
            scheduler = get_scheduler(job.algo)
            schedule = scheduler(job.graph, machine=eff_machine)
        if phases is not None:
            phases["schedule"] = time.perf_counter() - t_sched
    except Exception:
        return _failed_result(
            job, time.perf_counter() - t0, traceback.format_exc(limit=8),
            SCHEDULER_ERROR, phases=phases,
        )
    try:
        if validate:
            schedule.validate()
        certified = False
        if certify:
            from repro.verify.certify import certify as certify_schedule
            from repro.verify.certify import greedy_flavor

            t_cert = time.perf_counter()
            cert = certify_schedule(schedule, flavor=greedy_flavor(job.algo))
            if phases is not None:
                phases["certify"] = time.perf_counter() - t_cert
            if not cert.ok:
                detail = "; ".join(
                    f"{v.code} {v.message}" for v in cert.violations[:5]
                )
                more = (
                    f" (+{len(cert.violations) - 5} more)"
                    if len(cert.violations) > 5 else ""
                )
                return _failed_result(
                    job, time.perf_counter() - t0,
                    f"certification failed: {detail}{more}",
                    INVALID_SCHEDULE, phases=phases,
                )
            certified = True
        return BatchResult(
            tag=job.tag,
            algo=job.algo,
            procs=schedule.num_procs,
            num_tasks=job.graph.num_tasks,
            makespan=schedule.makespan,
            speedup=speedup_of(schedule),
            procs_used=schedule.num_procs_used(),
            seconds=time.perf_counter() - t0,
            error=None,
            certified=certified,
            phases=phases,
            kernel=resolved,
            warm=warm or None,
        )
    except Exception:
        return _failed_result(
            job, time.perf_counter() - t0, traceback.format_exc(limit=8),
            INVALID_SCHEDULE, phases=phases,
        )


def _run_packed(
    packed: Tuple[BatchJob, bool, bool, bool, str, bool, Optional[MachineModel]]
) -> BatchResult:
    """Module-level runner for the worker pool (must be picklable)."""
    job, validate, certify, measure, kernel, warm_start, machine = packed
    return _run_job(job, validate, certify, measure, kernel, warm_start, machine)


def _cache_key(
    job: BatchJob,
    validate: bool,
    certify: bool,
    fingerprints: Dict[int, str],
    store: Optional["graphstore.GraphStore"],
    kernels: Dict[str, str],
    kernel: str = "auto",
    machine: Optional[MachineModel] = None,
) -> Optional[CacheKey]:
    """Result-cache key for a job, or ``None`` when the job is uncacheable.

    The effective machine (job's own, else the homogeneous clique of its
    ``procs``, else the batch default ``machine``) is folded into the key
    via its :meth:`~repro.machine.MachineModel.fingerprint`, so two
    machines with equal ``num_procs`` but different speeds/latency/scale
    can never share an entry, while the legacy integer spelling and the
    explicit homogeneous model do.  ``fingerprints`` memoises per graph
    object so a batch of N jobs over one graph hashes it once.
    ``certify`` is part of the key: a certified result answers strictly
    more than an uncertified one, and the cache never serves the weaker
    answer for the stronger request.  The *resolved* kernel backend is
    part of the key too (``kernels`` memoises per algo): the FLB backends
    are bit-identical, but ``BatchResult.kernel`` reports which one ran,
    and a cached entry must never misreport the backend that computed it.
    """
    try:
        eff_machine = _effective_machine(job, machine)
    except ValueError:
        # Un-modelable procs (e.g. 0): the run will fail per-job.
        eff_machine = None
    if eff_machine is None:
        # Un-servable request: let dispatch surface the error uncached.
        return None
    if job.graph is not None:
        fp = fingerprints.get(id(job.graph))
        if fp is None:
            fp = job.graph.fingerprint()
            fingerprints[id(job.graph)] = fp
    elif job.graph_key is not None and store is not None:
        fp = store.fingerprint_of(job.graph_key)
        if fp is None:
            return None
    else:
        return None
    resolved = kernels.get(job.algo)
    if resolved is None:
        resolved = resolve_job_kernel(job.algo, kernel)
        kernels[job.algo] = resolved
    return make_cache_key(
        fp, eff_machine.num_procs, job.algo, validate, certify, resolved,
        machine=eff_machine,
    )


def schedule_many(
    jobs: Iterable[BatchJob],
    workers: Optional[int] = None,
    timeout: Any = UNSET,
    validate: Any = UNSET,
    certify: Any = UNSET,
    *,
    options: Optional[SchedulingOptions] = None,
    metrics: Optional[MetricsRegistry] = None,
    grace: float = 1.0,
    retries: Any = UNSET,
    backoff: float = 0.1,
    share_graphs: Optional[bool] = None,
    cache: Optional[ResultCache] = None,
    store: Optional["graphstore.GraphStore"] = None,
    stats_out: Optional[Dict[str, int]] = None,
) -> List[BatchResult]:
    """Schedule every job, in parallel when ``workers > 1``.

    Parameters
    ----------
    jobs:
        The scheduling requests; results come back in the same order.
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker (or one job) everything runs inline in this process.
    options:
        A :class:`repro.api.SchedulingOptions` carrying the scheduling
        semantics (``validate`` / ``certify`` / ``timeout`` / ``retries`` /
        ``metrics`` / ``kernel`` / ``warm_start``) — the canonical
        spelling.  With ``warm_start``, FLB array jobs replay the clean
        prefix of a previously stored base schedule
        (:mod:`repro.incremental`) and report the outcome in
        :attr:`BatchResult.warm`.  The individual ``timeout``
        / ``validate`` / ``certify`` / ``retries`` keywords below keep
        working but are deprecated (one :class:`DeprecationWarning` per
        call) and cannot be mixed with ``options``.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to record into (equivalent to
        ``options.metrics``; this keyword is *not* deprecated).  Enables
        per-job phase measurement in the workers, supervisor-side batch /
        worker-pool counters and histograms, and one ``batch.job`` trace
        event per job.  ``None`` (default) records nothing and skips all
        instrumentation work.
    timeout:
        Per-job execution budget in seconds, measured from the moment a
        worker starts the job (queue wait never counts).  An overrunning
        job's worker is **killed** and the pool slot replaced, so a hung
        scheduler delays the batch by at most ``timeout + grace``; the job
        gets a ``timeout`` :class:`BatchResult` and every other job still
        completes.  Ignored when running inline (a hung job would hang the
        caller's own process either way — use ``workers >= 2`` for
        containment).
    validate:
        Re-check every produced schedule from first principles
        (:meth:`~repro.schedule.Schedule.validate`) inside the worker; a
        violation is reported as ``invalid-schedule``.
    certify:
        Run the full independent checker (:func:`repro.verify.certify`) on
        every produced schedule inside the worker, including the FLB/ETF
        greedy certificate where the algorithm owes one.  A failed
        certificate is reported as ``invalid-schedule`` with the violation
        codes in ``error``; passing results carry ``certified=True``.  The
        result cache refuses to store uncertified entries when this is on
        (and ``certify`` is part of the cache key, so certified and
        uncertified answers never mix).
    grace:
        Slack for detecting and killing an overrunning worker past
        ``timeout``, and the force-kill budget at shutdown.
    retries:
        How many times a job whose worker *died* (OOM-kill, segfault) is
        re-run before reporting ``worker-died``; timeouts are never retried
        (schedulers are deterministic — an overrun would simply repeat).
    backoff:
        Base delay in seconds before a death retry; doubles per attempt.
    share_graphs:
        Graph-plane dispatch policy for the parallel path.  ``None``
        (default) shares a graph through shared memory when it is
        referenced by two or more dispatched jobs or is at least
        :data:`INLINE_ONESHOT_MAX` tasks+edges; small one-shot graphs stay
        inline-pickled.  ``True`` shares every graph, ``False`` none
        (always inline pickle — the pre-graph-plane behaviour).
    cache:
        A :class:`~repro.resultcache.ResultCache`.  Jobs whose
        ``(fingerprint, procs, algo, validate, certify, kernel, machine
        fingerprint)`` key hits return
        immediately with ``cached=True`` and are never dispatched;
        successful new results are inserted afterwards.  Applies on both
        the inline and the parallel path.
    store:
        A caller-owned :class:`~repro.graphstore.GraphStore` whose
        registered segments outlive this call (used by
        :class:`BatchScheduler` to amortise registration across batches,
        and required to resolve ``BatchJob.graph_key``-only jobs' cache
        keys).  When ``None``, an ephemeral store is created and every
        segment is unlinked before returning — including when a worker was
        SIGKILL-ed on timeout or the batch raised.
    stats_out:
        Optional dict filled with dispatch accounting: ``jobs``,
        ``cache_hits``, ``dispatched``, ``keyed_jobs``,
        ``inline_graph_jobs``, ``shared_graphs``, ``shared_bytes``.

    Returns
    -------
    list[BatchResult]
        One result per job, ``error``/``error_kind`` set for failures —
        never raises for a job-level problem.
    """
    opts = resolve_options(
        "schedule_many",
        options,
        {"timeout": timeout, "validate": validate,
         "certify": certify, "retries": retries},
    )
    if metrics is not None:
        opts = opts.replace(metrics=metrics)
    timeout, validate, certify, retries = (
        opts.timeout, opts.validate, opts.certify, opts.retries,
    )
    reg = opts.metrics
    kernel = opts.kernel
    warm_start = opts.warm_start
    default_machine = opts.machine
    measure = reg is not None
    t_run0 = time.perf_counter()

    jobs = list(jobs)
    if workers is None:
        workers = os.cpu_count() or 1
    # Parameter validation applies on every path so callers get consistent
    # errors regardless of batch size.
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if grace <= 0:
        raise ValueError(f"grace must be positive, got {grace}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")

    results: List[Optional[BatchResult]] = [None] * len(jobs)
    fingerprints: Dict[int, str] = {}
    resolved_kernels: Dict[str, str] = {}  # algo -> resolved backend (memo)
    keys: List[Optional[CacheKey]] = [None] * len(jobs)
    use_cache = cache is not None and cache.enabled

    # Result-cache pass (exact hits answer without dispatching anything),
    # then within-batch coalescing: duplicate (graph, machine, algo, validate)
    # jobs are dispatched once — schedulers are deterministic, so the
    # duplicates share the one outcome verbatim.  Coalescing is part of the
    # caching plane (it closes the window where within-batch duplicates all
    # miss an empty cache), so it only applies when a cache is in play;
    # without one, every job dispatches individually as before, keeping
    # per-job timing/queue accounting intact.
    dispatch: List[int] = []
    coalesced: Dict[CacheKey, List[int]] = {}
    for i, job in enumerate(jobs):
        keys[i] = _cache_key(
            job, validate, certify, fingerprints, store,
            resolved_kernels, kernel, default_machine,
        )
        if use_cache:
            hit = cache.get(keys[i])
            if hit is not None:
                # warm=None: the replica did not replay anything itself,
                # so it must not re-count the original's warm accounting.
                results[i] = replace(
                    hit, tag=job.tag, seconds=0.0, queue_seconds=0.0,
                    attempts=1, cached=True, warm=None,
                )
                continue
            if keys[i] is not None:
                group = coalesced.get(keys[i])
                if group is not None:
                    group.append(i)
                    continue
                coalesced[keys[i]] = [i]
        dispatch.append(i)

    n_hits = len(jobs) - len(dispatch) - sum(len(g) - 1 for g in coalesced.values())
    stats = {
        "jobs": len(jobs),
        "cache_hits": n_hits,
        "coalesced": sum(len(g) - 1 for g in coalesced.values()),
        "dispatched": len(dispatch),
        "keyed_jobs": 0,
        "inline_graph_jobs": 0,
        "shared_graphs": 0,
        "shared_bytes": 0,
    }

    if dispatch and (workers <= 1 or len(dispatch) <= 1):
        for i in dispatch:
            results[i] = _run_job(
                jobs[i], validate, certify, measure, kernel, warm_start,
                default_machine,
            )
        stats["inline_graph_jobs"] = len(dispatch)
    elif dispatch:
        outcomes = _dispatch_pool(
            [jobs[i] for i in dispatch], workers, timeout, validate, certify,
            grace=grace, retries=retries, backoff=backoff,
            share_graphs=share_graphs, store=store,
            fingerprints=fingerprints, stats=stats, metrics=reg,
            kernel=kernel, warm_start=warm_start, machine=default_machine,
        )
        for i, res in zip(dispatch, outcomes):
            results[i] = res

    # Fan each coalesced outcome out to its duplicates.  Failures propagate
    # too: every kind is deterministic given the same budget (worker deaths
    # were already retried inside the pool).
    for key, group in coalesced.items():
        canonical = results[group[0]]
        for i in group[1:]:
            if canonical.ok:
                results[i] = replace(
                    canonical, tag=jobs[i].tag, seconds=0.0,
                    queue_seconds=0.0, attempts=1, cached=True, warm=None,
                )
            else:
                results[i] = replace(canonical, tag=jobs[i].tag)

    if use_cache:
        for i in dispatch:
            res = results[i]
            # When certification is on, only certified results may enter
            # the cache: an uncertified entry would later be served as if
            # it had passed the checker.
            if res is not None and res.ok and (not certify or res.certified):
                cache.put(keys[i], res)

    if stats_out is not None:
        stats_out.update(stats)
    final = [res for res in results if res is not None]
    if reg is not None:
        _record_batch_metrics(
            reg, final, stats, time.perf_counter() - t_run0, cache, store,
        )
    return final


def _record_batch_metrics(
    reg: MetricsRegistry,
    results: Sequence[BatchResult],
    stats: Dict[str, int],
    wall_seconds: float,
    cache: Optional[ResultCache],
    store: Optional["graphstore.GraphStore"],
) -> None:
    """Fold one batch's outcomes into the registry (supervisor side).

    Emits the per-job ``batch.job`` trace events (phase breakdown summing
    to the job's wall time), the ``batch_*`` counters/histograms, and the
    graph-plane / result-cache gauges.  Called once per
    :func:`schedule_many` invocation — never on the per-job hot path.
    """
    reg.counter("batch_runs_total").inc()
    reg.histogram("batch_run_seconds").observe(wall_seconds)
    if stats.get("keyed_jobs"):
        reg.counter("batch_dispatch_total", mode="keyed").inc(stats["keyed_jobs"])
    if stats.get("inline_graph_jobs"):
        reg.counter("batch_dispatch_total", mode="inline").inc(
            stats["inline_graph_jobs"]
        )
    queue_h = reg.histogram("batch_queue_seconds")
    exec_h = reg.histogram("batch_exec_seconds")
    for res in results:
        status = "ok" if res.ok else (res.error_kind or "error")
        reg.counter("batch_jobs_total", status=status).inc()
        if res.cached:
            reg.counter("batch_jobs_cached_total").inc()
        queue_h.observe(res.queue_seconds)
        exec_h.observe(res.seconds)
        worker_phases = res.phases or {}
        phases: Dict[str, float] = {"queue": res.queue_seconds}
        phases.update(worker_phases)
        phases["other"] = max(0.0, res.seconds - sum(worker_phases.values()))
        for phase, secs in phases.items():
            reg.histogram("batch_phase_seconds", phase=phase).observe(secs)
        if res.warm:
            # Warm-start accounting is recorded supervisor-side from the
            # result (workers carry no registry): one counter per outcome
            # plus the task-level reuse totals for the replayed path.
            reg.counter("incr_attempts_total").inc()
            fallback = res.warm.get("fallback")
            if fallback is not None:
                reg.counter(
                    "incr_fallback_total", reason=str(fallback)
                ).inc()
            else:
                reg.counter("incr_warm_total").inc()
                reg.counter("incr_reused_tasks_total").inc(
                    int(res.warm.get("reused", 0))
                )
                reg.counter("incr_replayed_tasks_total").inc(
                    int(res.warm.get("replayed", 0))
                )
                reg.counter("incr_dirty_tasks_total").inc(
                    int(res.warm.get("dirty", 0))
                )
                reg.gauge("incr_reuse_fraction").set(
                    float(res.warm.get("fraction", 0.0))
                )
        wall = res.queue_seconds + res.seconds
        reg.event(
            "batch.job", wall,
            tag=res.tag, algo=res.algo, procs=res.procs, ok=res.ok,
            error_kind=res.error_kind, cached=res.cached,
            attempts=res.attempts, wall=wall, phases=phases,
            kernel=res.kernel, warm=res.warm,
        )
    cache_stats = cache.stats() if cache is not None else {}
    reg.event(
        "batch.run", wall_seconds,
        jobs=stats.get("jobs", len(results)),
        dispatched=stats.get("dispatched", 0),
        cache_hits=stats.get("cache_hits", 0),
        coalesced=stats.get("coalesced", 0),
        cache=cache_stats or None,
    )
    if cache is not None:
        for key, value in cache.stats().items():
            reg.gauge(f"resultcache_{key}").set(float(value))
    if store is not None and not store.closed:
        for key, value in store.stats().items():
            reg.gauge(f"graphstore_{key}").set(float(value))
    elif stats.get("shared_graphs") or stats.get("shared_bytes"):
        # Ephemeral store (already unlinked): report what it held.
        reg.gauge("graphstore_graphs").set(float(stats.get("shared_graphs", 0)))
        reg.gauge("graphstore_bytes").set(float(stats.get("shared_bytes", 0)))


def _dispatch_pool(
    jobs: List[BatchJob],
    workers: int,
    timeout: Optional[float],
    validate: bool,
    certify: bool,
    *,
    grace: float,
    retries: int,
    backoff: float,
    share_graphs: Optional[bool],
    store: Optional["graphstore.GraphStore"],
    fingerprints: Dict[int, str],
    stats: Dict[str, int],
    metrics: Optional[MetricsRegistry] = None,
    kernel: str = "auto",
    warm_start: bool = False,
    machine: Optional[MachineModel] = None,
) -> List[BatchResult]:
    """Fan ``jobs`` across the supervised pool, sharing graphs through the
    graph plane where the policy says so.  Owns (and always unlinks) the
    ephemeral store when the caller did not provide one."""
    owned_store = store is None
    wire: List[BatchJob] = list(jobs)
    try:
        if share_graphs is not False:
            # Count how many dispatched jobs reference each graph content.
            counts: Dict[str, int] = {}
            for job in jobs:
                if job.graph is None:
                    continue
                fp = fingerprints.get(id(job.graph))
                if fp is None:
                    fp = job.graph.fingerprint()
                    fingerprints[id(job.graph)] = fp
                counts[fp] = counts.get(fp, 0) + 1
            for n, job in enumerate(jobs):
                if job.graph is None:
                    continue
                fp = fingerprints[id(job.graph)]
                size = job.graph.num_tasks + job.graph.num_edges
                if not (share_graphs is True or counts[fp] >= 2
                        or size >= INLINE_ONESHOT_MAX):
                    continue
                if store is None:
                    store = graphstore.GraphStore()
                try:
                    key = store.register(job.graph.freeze(), fingerprint=fp)
                except Exception:
                    # Unfreezable (e.g. cyclic) or unregistrable graph:
                    # fall back to inline pickling so the failure surfaces
                    # as that job's error, exactly as before.
                    continue
                wire[n] = replace(job, graph=None, graph_key=key)
        stats["keyed_jobs"] = sum(1 for j in wire if j.graph is None and j.graph_key)
        stats["inline_graph_jobs"] = len(wire) - stats["keyed_jobs"]
        if store is not None:
            stats["shared_graphs"] = len(store)
            stats["shared_bytes"] = store.total_bytes()

        measure = metrics is not None
        outcomes = workerpool.run_supervised(
            [(job, validate, certify, measure, kernel, warm_start, machine)
             for job in wire],
            _run_packed,
            workers=min(workers, len(wire)),
            timeout=timeout,
            grace=grace,
            retries=retries,
            backoff=backoff,
            metrics=metrics,
        )
    finally:
        # Ephemeral registry: guaranteed unlink, even when a worker was
        # SIGKILL-ed on timeout or run_supervised raised.
        if owned_store and store is not None:
            store.close()

    results: List[BatchResult] = []
    for job, outcome in zip(jobs, outcomes):
        if outcome.kind == workerpool.COMPLETED:
            results.append(replace(
                outcome.value,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        elif outcome.kind == workerpool.TIMEOUT:
            results.append(_failed_result(
                job, outcome.seconds,
                f"timeout: job exceeded its {timeout:g}s budget "
                f"({outcome.error})",
                TIMEOUT,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        elif outcome.kind == workerpool.DIED:
            results.append(_failed_result(
                job, outcome.seconds,
                f"worker-died: {outcome.error}",
                WORKER_DIED,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
        else:  # RAISED: _run_job catches everything, so this is exotic
            results.append(_failed_result(
                job, outcome.seconds, outcome.error or "worker raised",
                SCHEDULER_ERROR,
                queue_seconds=outcome.queue_seconds,
                attempts=outcome.attempts,
            ))
    return results


def batch_throughput(results: Sequence[BatchResult], wall_seconds: float) -> float:
    """Aggregate scheduling throughput: total tasks scheduled per second of
    batch wall-clock time (failed jobs contribute no tasks)."""
    if wall_seconds <= 0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    return sum(r.num_tasks for r in results if r.ok) / wall_seconds


def batch_stats(
    results: Sequence[BatchResult],
    wall_seconds: float,
    cache: Optional[ResultCache] = None,
) -> Dict[str, float]:
    """Throughput plus serving counters for one batch.

    Extends :func:`batch_throughput` with job counts, jobs/s, the number of
    results answered from the cache (``cached``), and — when a
    :class:`~repro.resultcache.ResultCache` is supplied — its cumulative
    hit/miss/eviction counters (prefixed ``cache_``).
    """
    stats: Dict[str, float] = {
        "jobs": len(results),
        "ok": sum(1 for r in results if r.ok),
        "failed": sum(1 for r in results if not r.ok),
        "cached": sum(1 for r in results if r.cached),
        "tasks_per_s": batch_throughput(results, wall_seconds),
        "jobs_per_s": len(results) / wall_seconds,
        "wall_seconds": wall_seconds,
    }
    if cache is not None:
        for key, value in cache.stats().items():
            stats[f"cache_{key}"] = value
    return stats


class BatchScheduler:
    """Long-lived batch-serving front-end: one graph registry + one result
    cache, amortised across many :meth:`run` calls.

    :func:`schedule_many` is one-shot — its ephemeral graph store is
    unlinked when it returns, so the next batch over the same graph
    registers (and each worker decodes) it again.  A serving loop holds a
    ``BatchScheduler`` instead::

        with BatchScheduler(workers=8, timeout=5.0) as bs:
            key = bs.register(graph)            # publish once
            for request in requests:            # many batches
                results = bs.run([
                    BatchJob(graph=None, graph_key=key,
                             procs=request.procs, algo=request.algo),
                ])

    Graphs registered (explicitly via :meth:`register` or implicitly by the
    dispatch policy during :meth:`run`) stay in shared memory until
    :meth:`close`/``__exit__`` — guaranteed unlink, same as
    ``schedule_many``.  The result cache persists across batches, so a
    repeated ``(graph, procs, algo)`` request is answered in ``O(1)``
    without dispatching a worker.  :meth:`stats` reports cumulative
    dispatch, cache, and registry counters.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Any = UNSET,
        validate: Any = UNSET,
        certify: Any = UNSET,
        *,
        options: Optional[SchedulingOptions] = None,
        metrics: Union[MetricsRegistry, bool, None] = None,
        grace: float = 1.0,
        retries: Any = UNSET,
        backoff: float = 0.1,
        share_graphs: Optional[bool] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        opts = resolve_options(
            "BatchScheduler",
            options,
            {"timeout": timeout, "validate": validate,
             "certify": certify, "retries": retries},
        )
        if isinstance(metrics, MetricsRegistry):
            opts = opts.replace(metrics=metrics)
        elif metrics:
            opts = opts.replace(metrics=MetricsRegistry())
        self.options = opts
        self.workers = workers
        self.grace = grace
        self.backoff = backoff
        self.share_graphs = share_graphs
        self.store = graphstore.GraphStore()
        self.cache = ResultCache(cache_size)
        self._dispatch_totals: Dict[str, int] = {}
        self._results_seen = 0
        self._failed_seen = 0

    # Legacy attribute views (the pre-SchedulingOptions surface); the
    # options record is the source of truth.
    @property
    def timeout(self) -> Optional[float]:
        return self.options.timeout

    @timeout.setter
    def timeout(self, value: Optional[float]) -> None:
        self.options = self.options.replace(timeout=value)

    @property
    def validate(self) -> bool:
        return self.options.validate

    @validate.setter
    def validate(self, value: bool) -> None:
        self.options = self.options.replace(validate=value)

    @property
    def certify(self) -> bool:
        return self.options.certify

    @certify.setter
    def certify(self, value: bool) -> None:
        self.options = self.options.replace(certify=value)

    @property
    def retries(self) -> int:
        return self.options.retries

    @retries.setter
    def retries(self, value: int) -> None:
        self.options = self.options.replace(retries=value)

    def register(self, graph: TaskGraph) -> str:
        """Publish a graph into the registry; returns the ``graph_key`` for
        :class:`BatchJob` submissions.  Idempotent per graph content."""
        return self.store.register(graph.freeze())

    def metrics(self) -> MetricsRegistry:
        """The scheduler's :class:`~repro.obs.MetricsRegistry`.

        Returns the registry configured at construction
        (``metrics=registry`` or ``metrics=True`` or
        ``options.metrics``).  When none was configured, the first call
        creates one and **enables** instrumentation for every subsequent
        :meth:`run` — turn-on-by-asking, so a serving loop can start
        observing without restarting.
        """
        if self.options.metrics is None:
            self.options = self.options.replace(metrics=MetricsRegistry())
        return self.options.metrics

    def run(
        self,
        jobs: Iterable[BatchJob],
        options: Optional[SchedulingOptions] = None,
    ) -> List[BatchResult]:
        """Schedule one batch through the shared registry and cache.

        ``options`` overrides this scheduler's defaults for one call
        (e.g. ``bs.run(jobs, options=bs.options.replace(certify=True))``);
        when it carries no registry, the scheduler's own registry (if any)
        still records the batch.
        """
        if self.store.closed:
            raise graphstore.GraphStoreError("BatchScheduler is closed")
        opts = options if options is not None else self.options
        if opts.metrics is None and self.options.metrics is not None:
            opts = opts.replace(metrics=self.options.metrics)
        per_run: Dict[str, int] = {}
        results = schedule_many(
            jobs,
            workers=self.workers,
            options=opts,
            grace=self.grace,
            backoff=self.backoff,
            share_graphs=self.share_graphs,
            cache=self.cache,
            store=self.store,
            stats_out=per_run,
        )
        for key, value in per_run.items():
            if key in ("shared_graphs", "shared_bytes"):
                self._dispatch_totals[key] = value  # registry-wide, not additive
            else:
                self._dispatch_totals[key] = self._dispatch_totals.get(key, 0) + value
        self._results_seen += len(results)
        self._failed_seen += sum(1 for r in results if not r.ok)
        return results

    def run_one(
        self,
        job: BatchJob,
        options: Optional[SchedulingOptions] = None,
    ) -> BatchResult:
        """Schedule a single job through the shared registry and cache.

        The submission hook for request-at-a-time front-ends — notably the
        :mod:`repro.serve` asyncio service, which calls it through
        ``asyncio.to_thread`` so one blocking call serves one request
        without stalling the event loop.  Single-job batches always run on
        the inline path (no pool round-trip), and cache/coalescing
        semantics are exactly :meth:`run`'s.
        """
        return self.run([job], options=options)[0]

    def stats(self) -> Dict[str, int]:
        """Cumulative serving counters: dispatch accounting (``jobs``,
        ``cache_hits``, ``dispatched``, ``keyed_jobs``, ...), registry size
        (``store_graphs``, ``store_bytes``), result-cache counters
        (``cache_hit``/``cache_miss``/``cache_evictions``/...) and — when
        this scheduler runs with ``options.warm_start`` — the warm-start
        base-cache counters (``warm_size``/``warm_hits``/``warm_misses``/
        ``warm_evictions``/...)."""
        stats = dict(self._dispatch_totals)
        stats.setdefault("jobs", 0)
        stats["results"] = self._results_seen
        stats["failed"] = self._failed_seen
        for key, value in self.store.stats().items():
            stats[f"store_{key}"] = value
        for key, value in self.cache.stats().items():
            stats[f"cache_{key}"] = value
        if self.options.warm_start:
            from repro.incremental import base_cache

            for key, value in base_cache().stats().items():
                stats[f"warm_{key}"] = value
        return stats

    def close(self) -> None:
        """Unlink every registered shared-memory segment.  Idempotent."""
        self.store.close()

    @property
    def closed(self) -> bool:
        return self.store.closed

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self.store)} graph(s)"
        return f"<BatchScheduler {state}, cache {len(self.cache)}/{self.cache.capacity}>"
