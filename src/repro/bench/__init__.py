"""Experiment harness: the paper's workload suite, sweep runner, and
reproductions of every table and figure."""

from repro.bench.experiments import (
    FIGURE_ALGORITHMS,
    ExperimentReport,
    run_ablation_llb,
    run_ablation_ties,
    run_all,
    run_contention,
    run_duplication,
    run_heterogeneity,
    run_extended_sweep,
    run_fig2,
    run_fig3,
    run_fig4,
    run_robustness,
    run_scaling,
    run_table1,
)
from repro.bench.runner import RunRecord, group_mean, run_sweep
from repro.bench.suite import (
    PAPER_CCRS,
    PAPER_PROBLEMS,
    PAPER_PROCS,
    Instance,
    paper_suite,
)

__all__ = [
    "paper_suite",
    "Instance",
    "PAPER_PROBLEMS",
    "PAPER_CCRS",
    "PAPER_PROCS",
    "run_sweep",
    "RunRecord",
    "group_mean",
    "ExperimentReport",
    "FIGURE_ALGORITHMS",
    "run_table1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_scaling",
    "run_ablation_ties",
    "run_ablation_llb",
    "run_robustness",
    "run_contention",
    "run_duplication",
    "run_heterogeneity",
    "run_extended_sweep",
    "run_all",
]
