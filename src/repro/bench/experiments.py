"""Reproductions of every table and figure in the paper's evaluation.

Each ``run_*`` function regenerates one artefact and returns an
:class:`ExperimentReport` containing a rendered text report plus the
underlying data series:

=============== =====================================================
function        paper artefact
=============== =====================================================
run_table1      Table 1 — FLB execution trace on the Fig. 1 graph
run_fig2        Fig. 2 — scheduling cost (running time) vs P
run_fig3        Fig. 3 — FLB speedup vs P per problem and CCR
run_fig4        Fig. 4 — NSL (vs MCP) per problem, CCR and P
run_scaling     X1 — FLB/FCP cost scaling in V (complexity check)
run_ablation_ties  X2 — FLB vs ETF tie-breaking quality gap
run_ablation_llb   X3 — LLB priority direction
run_robustness  X4 — makespan degradation under weight perturbation
run_contention  X5 — degradation under sender-port link contention
run_duplication X6 — DSH duplication quality/cost trade-off vs FLB
run_heterogeneity X7 — speed heterogeneity: HEFT vs homogeneous-minded
run_extended_sweep X8 — TR-style extended problem/granularity sweep
=============== =====================================================

Absolute running times obviously differ from the paper's 1999 hardware; the
reproduction target is the *shape* of each figure (orderings, trends,
crossovers).  See EXPERIMENTS.md for recorded paper-vs-measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.runner import group_mean, run_sweep
from repro.bench.suite import PAPER_CCRS, PAPER_PROBLEMS, PAPER_PROCS, paper_suite
from repro.core import TraceRecorder, flb, format_trace
from repro.metrics.metrics import time_scheduler
from repro.schedulers import SCHEDULERS, dsc, llb
from repro.sim import execute, execute_contended, execute_perturbed
from repro.util.rng import make_rng
from repro.util.tables import format_series_chart, format_table
from repro.workloads import layered_random, paper_example

__all__ = [
    "ExperimentReport",
    "run_table1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_scaling",
    "run_ablation_ties",
    "run_ablation_llb",
    "run_robustness",
    "run_contention",
    "run_duplication",
    "run_heterogeneity",
    "run_extended_sweep",
    "run_all",
]

#: Algorithms compared in Figs. 2 and 4 (the paper's comparison set).
FIGURE_ALGORITHMS: Tuple[str, ...] = ("mcp", "etf", "dsc-llb", "fcp", "flb")


@dataclass
class ExperimentReport:
    """A regenerated table/figure: rendered text plus raw data."""

    experiment: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.experiment}: {self.title} ==\n{self.text}"


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def run_table1() -> ExperimentReport:
    """Reproduce Table 1: the FLB execution trace on the Fig. 1 graph, P=2."""
    graph = paper_example()
    recorder = TraceRecorder(graph)
    schedule = flb(graph, 2, observer=recorder)
    text = format_trace(recorder) + "\n\n" + schedule.as_table()
    placements = [
        (row.task, row.proc, row.start, row.finish) for row in recorder.rows
    ]
    return ExperimentReport(
        experiment="table1",
        title="FLB execution trace (Fig. 1 graph, P=2)",
        text=text,
        data={"placements": placements, "makespan": schedule.makespan},
    )


# ---------------------------------------------------------------------------
# Fig. 2 — scheduling costs
# ---------------------------------------------------------------------------


def run_fig2(
    target_tasks: int = 2000,
    seeds: int = 5,
    procs: Sequence[int] = PAPER_PROCS,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    problems: Sequence[str] = ("lu", "laplace", "stencil"),
    time_repeats: int = 3,
    workers: int = 1,
) -> ExperimentReport:
    """Reproduce Fig. 2: average algorithm running time vs P.

    ``workers`` is accepted for CLI symmetry with the other figures but the
    timed sweep itself always runs serially — parallel timing runs would
    contend for cores and corrupt the cost measurements this figure is about.
    """
    del workers  # timing must stay serial; see docstring
    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    records = run_sweep(
        instances, algorithms, procs, measure_time=True, time_repeats=time_repeats
    )
    mean_ms = group_mean(
        records, key=lambda r: (r.algorithm, r.procs), value=lambda r: r.seconds * 1e3
    )
    rows = [
        [algo, *(mean_ms[(algo, p)] for p in procs)] for algo in algorithms
    ]
    table = format_table(
        ["algorithm", *(f"P={p} [ms]" for p in procs)],
        rows,
        title=f"Fig. 2 — mean scheduling time, V~{instances[0].graph.num_tasks}, "
        f"{len(instances)} instances",
    )
    series = {algo: [mean_ms[(algo, p)] for p in procs] for algo in algorithms}
    chart = format_series_chart(
        list(procs), series, title="scheduling time [ms] vs P", x_label="P"
    )
    return ExperimentReport(
        experiment="fig2",
        title="Scheduling algorithm costs",
        text=table + "\n\n" + chart,
        data={"procs": list(procs), "mean_ms": series},
    )


# ---------------------------------------------------------------------------
# Fig. 3 — FLB speedup
# ---------------------------------------------------------------------------


def run_fig3(
    target_tasks: int = 2000,
    seeds: int = 5,
    procs: Sequence[int] = (1, *PAPER_PROCS),
    problems: Sequence[str] = PAPER_PROBLEMS,
    ccrs: Sequence[float] = PAPER_CCRS,
    workers: int = 1,
) -> ExperimentReport:
    """Reproduce Fig. 3: FLB speedup vs P for each problem and CCR."""
    instances = paper_suite(target_tasks, ccrs=ccrs, seeds=seeds, problems=problems)
    records = run_sweep(instances, ["flb"], procs, workers=workers)
    mean_speedup = group_mean(
        records, key=lambda r: (r.problem, r.ccr, r.procs), value=lambda r: r.speedup
    )
    sections: List[str] = []
    data: Dict[float, Dict[str, List[float]]] = {}
    for ccr in ccrs:
        series = {
            prob: [mean_speedup[(prob, ccr, p)] for p in procs] for prob in problems
        }
        data[ccr] = series
        rows = [[prob, *series[prob]] for prob in problems]
        table = format_table(
            ["problem", *(f"P={p}" for p in procs)],
            rows,
            title=f"Fig. 3 — FLB speedup, CCR = {ccr:g}",
        )
        chart = format_series_chart(
            list(procs), series, title=f"speedup vs P (CCR={ccr:g})", x_label="P"
        )
        sections.append(table + "\n\n" + chart)
    return ExperimentReport(
        experiment="fig3",
        title="FLB speedup",
        text="\n\n".join(sections),
        data={"procs": list(procs), "speedup": data},
    )


# ---------------------------------------------------------------------------
# Fig. 4 — normalized schedule lengths
# ---------------------------------------------------------------------------


def run_fig4(
    target_tasks: int = 2000,
    seeds: int = 5,
    procs: Sequence[int] = PAPER_PROCS,
    algorithms: Sequence[str] = FIGURE_ALGORITHMS,
    problems: Sequence[str] = ("lu", "stencil", "laplace"),
    ccrs: Sequence[float] = PAPER_CCRS,
    workers: int = 1,
) -> ExperimentReport:
    """Reproduce Fig. 4: average NSL (vs MCP) per problem, CCR and P.

    NSL is computed per instance against MCP's schedule length on the same
    instance at the same processor count, then averaged over seeds.
    """
    if "mcp" not in algorithms:
        algorithms = (*algorithms, "mcp")
    instances = paper_suite(target_tasks, ccrs=ccrs, seeds=seeds, problems=problems)
    records = run_sweep(instances, algorithms, procs, workers=workers)
    by_key: Dict[Tuple[str, float, int, int], Dict[str, float]] = {}
    for rec in records:
        by_key.setdefault(
            (rec.problem, rec.ccr, rec.seed_index, rec.procs), {}
        )[rec.algorithm] = rec.makespan
    nsl_sum: Dict[Tuple[str, float, str, int], float] = {}
    nsl_count: Dict[Tuple[str, float, str, int], int] = {}
    for (problem, ccr, _seed, p), spans in by_key.items():
        ref = spans["mcp"]
        for algo, span in spans.items():
            key = (problem, ccr, algo, p)
            nsl_sum[key] = nsl_sum.get(key, 0.0) + span / ref
            nsl_count[key] = nsl_count.get(key, 0) + 1
    nsl = {k: nsl_sum[k] / nsl_count[k] for k in nsl_sum}

    sections: List[str] = []
    data: Dict[str, object] = {}
    for problem in problems:
        for ccr in ccrs:
            series = {
                algo: [nsl[(problem, ccr, algo, p)] for p in procs]
                for algo in algorithms
            }
            data[(problem, ccr)] = series
            rows = [[algo, *series[algo]] for algo in algorithms]
            sections.append(
                format_table(
                    ["algorithm", *(f"P={p}" for p in procs)],
                    rows,
                    title=f"Fig. 4 — mean NSL (vs MCP), {problem}, CCR = {ccr:g}",
                )
            )
    return ExperimentReport(
        experiment="fig4",
        title="Scheduling algorithm performance (NSL)",
        text="\n\n".join(sections),
        data={"procs": list(procs), "nsl": data},
    )


# ---------------------------------------------------------------------------
# X1 — complexity scaling
# ---------------------------------------------------------------------------


def run_scaling(
    sizes: Sequence[int] = (250, 500, 1000, 2000, 4000),
    procs: int = 16,
    layer_width: int = 25,
    algorithms: Sequence[str] = ("flb", "fcp"),
    time_repeats: int = 3,
) -> ExperimentReport:
    """X1: running time of the low-cost schedulers as V grows.

    Uses layered random graphs of fixed width so ``W`` (and ``log W``) stays
    constant while ``V`` and ``E`` scale linearly — under the paper's bound
    the time per task should stay near-constant.
    """
    rows = []
    series: Dict[str, List[float]] = {a: [] for a in algorithms}
    for v in sizes:
        layers = max(1, v // layer_width)
        g = layered_random(layers, layer_width, make_rng(7), edge_density=0.15, ccr=1.0)
        row = [g.num_tasks]
        for algo in algorithms:
            seconds = time_scheduler(SCHEDULERS[algo], g, procs, repeats=time_repeats)
            series[algo].append(seconds * 1e3)
            row.append(seconds * 1e3)
            row.append(seconds * 1e6 / g.num_tasks)
        rows.append(row)
    headers = ["V"]
    for algo in algorithms:
        headers += [f"{algo} [ms]", f"{algo} [us/task]"]
    table = format_table(headers, rows, title=f"X1 — cost scaling, P={procs}, W~{layer_width}")
    return ExperimentReport(
        experiment="scaling",
        title="FLB cost scaling in V",
        text=table,
        data={"sizes": [r[0] for r in rows], "ms": series},
    )


# ---------------------------------------------------------------------------
# X2 — FLB vs ETF tie-breaking ablation
# ---------------------------------------------------------------------------


def run_ablation_ties(
    target_tasks: int = 400,
    seeds: int = 5,
    procs: Sequence[int] = (4, 16),
    problems: Sequence[str] = ("lu", "laplace", "stencil"),
) -> ExperimentReport:
    """X2: FLB and ETF share the selection criterion; quantify the makespan
    differences their different tie-breaking produces (paper §6.2: up to
    ~12%, usually in FLB's favour)."""
    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    records = run_sweep(instances, ["flb", "etf"], procs)
    spans: Dict[Tuple[str, float, int, int], Dict[str, float]] = {}
    for rec in records:
        spans.setdefault((rec.problem, rec.ccr, rec.seed_index, rec.procs), {})[
            rec.algorithm
        ] = rec.makespan
    ratios = []
    rows = []
    for (problem, ccr, seed, p), d in sorted(spans.items()):
        ratio = d["flb"] / d["etf"]
        ratios.append(ratio)
        rows.append([f"{problem}/ccr={ccr:g}/#{seed}", p, d["etf"], d["flb"], ratio])
    arr = np.array(ratios)
    summary = (
        f"FLB/ETF makespan ratio over {len(ratios)} runs: "
        f"mean {arr.mean():.4f}, min {arr.min():.4f}, max {arr.max():.4f}; "
        f"FLB strictly better in {(arr < 1 - 1e-9).mean() * 100:.0f}%, "
        f"equal in {(np.abs(arr - 1) <= 1e-9).mean() * 100:.0f}% of runs"
    )
    table = format_table(
        ["instance", "P", "ETF", "FLB", "FLB/ETF"],
        rows,
        title="X2 — FLB vs ETF (identical criterion, different tie-breaking)",
    )
    return ExperimentReport(
        experiment="ablation-ties",
        title="FLB vs ETF tie-breaking",
        text=summary + "\n\n" + table,
        data={"ratios": ratios, "mean": float(arr.mean())},
    )


# ---------------------------------------------------------------------------
# X3 — LLB priority-direction ablation
# ---------------------------------------------------------------------------


def run_ablation_llb(
    target_tasks: int = 400,
    seeds: int = 5,
    procs: Sequence[int] = (4, 16),
    problems: Sequence[str] = ("lu", "laplace", "stencil"),
) -> ExperimentReport:
    """X3: 'largest' vs 'least' bottom-level priority in LLB (the FLB paper's
    related-work text and the LLB paper disagree; DESIGN.md §4.4)."""
    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    rows = []
    ratios = []
    for inst in instances:
        clustering = dsc(inst.graph)
        for p in procs:
            largest = llb(inst.graph, clustering, p, priority="largest").makespan
            least = llb(inst.graph, clustering, p, priority="least").makespan
            ratio = least / largest
            ratios.append(ratio)
            rows.append([inst.label, p, largest, least, ratio])
    arr = np.array(ratios)
    summary = (
        f"least/largest makespan ratio over {len(ratios)} runs: mean "
        f"{arr.mean():.4f} (>1 means 'largest' wins), worst {arr.max():.4f}"
    )
    table = format_table(
        ["instance", "P", "largest", "least", "least/largest"],
        rows,
        title="X3 — LLB priority direction",
    )
    return ExperimentReport(
        experiment="ablation-llb",
        title="LLB priority direction",
        text=summary + "\n\n" + table,
        data={"ratios": ratios, "mean": float(arr.mean())},
    )


# ---------------------------------------------------------------------------
# X4 — robustness under weight perturbation
# ---------------------------------------------------------------------------


def run_robustness(
    target_tasks: int = 400,
    seeds: int = 3,
    procs: int = 8,
    cvs: Sequence[float] = (0.1, 0.3, 0.5),
    draws: int = 10,
    problems: Sequence[str] = ("lu", "stencil"),
) -> ExperimentReport:
    """X4: how much do FLB schedules degrade when run-time weights deviate
    from the compile-time estimates?  (Self-timed re-execution.)"""
    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    rows = []
    data: Dict[float, List[float]] = {cv: [] for cv in cvs}
    for inst in instances:
        schedule = flb(inst.graph, procs)
        for cv in cvs:
            rel = []
            for d in range(draws):
                result = execute_perturbed(
                    schedule, make_rng(hash((inst.label, cv, d)) % 2**32), cv, cv
                )
                rel.append(result.makespan / schedule.makespan)
            mean_rel = float(np.mean(rel))
            data[cv].append(mean_rel)
            rows.append([inst.label, cv, schedule.makespan, mean_rel])
    table = format_table(
        ["instance", "cv", "planned makespan", "mean achieved/planned"],
        rows,
        title=f"X4 — robustness under weight perturbation, P={procs}",
    )
    return ExperimentReport(
        experiment="robustness",
        title="Perturbation robustness",
        text=table,
        data={"relative": {cv: data[cv] for cv in cvs}},
    )


# ---------------------------------------------------------------------------
# X5 — link contention
# ---------------------------------------------------------------------------


def run_contention(
    target_tasks: int = 400,
    seeds: int = 2,
    procs: int = 8,
    bandwidths: Sequence[float] = (0.5, 1.0, 2.0, 8.0),
    algorithms: Sequence[str] = ("flb", "mcp", "dsc-llb"),
    problems: Sequence[str] = ("fft", "lu"),
) -> ExperimentReport:
    """X5: degradation under single-port sender contention — how much of the
    contention-free model's promise survives on a machine that serialises
    outbound messages.  Communication-minimising schedules (DSC-LLB) should
    degrade less at low bandwidth."""
    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    rows = []
    data: Dict[str, Dict[float, List[float]]] = {
        algo: {bw: [] for bw in bandwidths} for algo in algorithms
    }
    for inst in instances:
        for algo in algorithms:
            schedule = SCHEDULERS[algo](inst.graph, procs)
            free_span = execute(schedule).makespan
            rel = []
            for bw in bandwidths:
                contended = execute_contended(schedule, bandwidth=bw).makespan
                ratio = contended / free_span
                data[algo][bw].append(ratio)
                rel.append(ratio)
            rows.append([inst.label, algo, *rel])
    table = format_table(
        ["instance", "algorithm", *(f"bw={bw:g}" for bw in bandwidths)],
        rows,
        title=f"X5 — contended / contention-free makespan, P={procs}",
    )
    means = {
        algo: {bw: float(np.mean(v)) for bw, v in per_bw.items()}
        for algo, per_bw in data.items()
    }
    summary_rows = [
        [algo, *(means[algo][bw] for bw in bandwidths)] for algo in algorithms
    ]
    summary = format_table(
        ["algorithm (mean)", *(f"bw={bw:g}" for bw in bandwidths)], summary_rows
    )
    return ExperimentReport(
        experiment="contention",
        title="Degradation under sender-port contention",
        text=summary + "\n\n" + table,
        data={"bandwidths": list(bandwidths), "means": means},
    )


# ---------------------------------------------------------------------------
# X6 — duplication quality/cost trade-off
# ---------------------------------------------------------------------------


def run_duplication(
    target_tasks: int = 400,
    seeds: int = 2,
    procs: int = 8,
    problems: Sequence[str] = ("lu", "fft"),
) -> ExperimentReport:
    """X6: the paper's taxonomy claim — duplication (DSH) buys schedule
    quality at significantly higher scheduling cost than FLB."""
    from repro.duplication import dsh

    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    rows = []
    quality = []
    cost = []
    for inst in instances:
        f = SCHEDULERS["flb"](inst.graph, procs)
        d = dsh(inst.graph, procs)
        t_f = time_scheduler(SCHEDULERS["flb"], inst.graph, procs, repeats=1)
        t_d = time_scheduler(dsh, inst.graph, procs, repeats=1)
        quality.append(d.makespan / f.makespan)
        cost.append(t_d / t_f)
        rows.append(
            [
                inst.label,
                f.makespan,
                d.makespan,
                d.makespan / f.makespan,
                d.duplication_ratio(),
                t_d / t_f,
            ]
        )
    q = np.asarray(quality)
    c = np.asarray(cost)
    summary = (
        f"DSH/FLB makespan ratio: mean {q.mean():.3f} (min {q.min():.3f}); "
        f"DSH/FLB scheduling-cost ratio: mean {c.mean():.1f}x"
    )
    table = format_table(
        ["instance", "FLB", "DSH", "DSH/FLB", "dup ratio", "cost ratio"],
        rows,
        title=f"X6 — duplication trade-off, P={procs}",
    )
    return ExperimentReport(
        experiment="duplication",
        title="Duplication quality/cost trade-off (DSH vs FLB)",
        text=summary + "\n\n" + table,
        data={"quality": quality, "cost": cost},
    )


# ---------------------------------------------------------------------------
# X7 — heterogeneity
# ---------------------------------------------------------------------------


def run_heterogeneity(
    target_tasks: int = 400,
    seeds: int = 2,
    procs: int = 8,
    skews: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    algorithms: Sequence[str] = ("heft", "flb", "mcp"),
    problems: Sequence[str] = ("lu", "stencil"),
) -> ExperimentReport:
    """X7: processor-speed heterogeneity (the natural follow-up direction of
    the paper; the authors' later work went heterogeneous).

    ``skew`` is the fastest/slowest speed ratio; speeds are geometrically
    spaced between ``1`` and ``1/skew`` so total capacity varies with skew —
    makespans are therefore normalised per algorithm by HEFT's at the same
    skew, isolating *scheduling* quality from machine capacity.
    """
    from repro.machine import MachineModel

    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    data: Dict[str, Dict[float, List[float]]] = {
        algo: {skew: [] for skew in skews} for algo in algorithms
    }
    for skew in skews:
        if procs > 1:
            speeds = tuple(skew ** (-i / (procs - 1)) for i in range(procs))
        else:
            speeds = (1.0,)
        machine = MachineModel(procs, speeds=speeds)
        for inst in instances:
            spans = {
                algo: SCHEDULERS[algo](inst.graph, machine=machine).makespan
                for algo in algorithms
            }
            ref = spans["heft"]
            for algo in algorithms:
                data[algo][skew].append(spans[algo] / ref)
    rows = [
        [algo, *(float(np.mean(data[algo][skew])) for skew in skews)]
        for algo in algorithms
    ]
    table = format_table(
        ["algorithm (vs HEFT)", *(f"skew={s:g}" for s in skews)],
        rows,
        title=f"X7 — mean makespan relative to HEFT, P={procs}",
    )
    means = {
        algo: {skew: float(np.mean(v)) for skew, v in per.items()}
        for algo, per in data.items()
    }
    return ExperimentReport(
        experiment="heterogeneity",
        title="Processor heterogeneity (HEFT vs homogeneous-minded schedulers)",
        text=table,
        data={"skews": list(skews), "means": means},
    )


# ---------------------------------------------------------------------------
# X8 — TR-style extended sweep
# ---------------------------------------------------------------------------


def run_extended_sweep(
    target_tasks: int = 500,
    seeds: int = 2,
    procs: Sequence[int] = (4, 16),
    ccrs: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 10.0),
    algorithms: Sequence[str] = ("mcp", "dsc-llb", "fcp", "flb"),
) -> ExperimentReport:
    """X8: the paper's TR (ref [6]) evaluates "a larger set of problems and
    granularities"; this sweep extends Fig. 4 in that spirit — five CCR
    points spanning two orders of magnitude and two extra problem families
    (wavefront, cholesky) beyond the conference suite.  ETF is omitted for
    cost (FLB provably matches its criterion; see the Theorem 3 tests)."""
    from repro.workloads import cholesky, cholesky_size_for_tasks, wavefront, wavefront_size_for_tasks

    if "mcp" not in algorithms:
        algorithms = (*algorithms, "mcp")
    instances = list(
        paper_suite(target_tasks, ccrs=ccrs, seeds=seeds, problems=("lu", "stencil"))
    )
    # Extra families, same seeding discipline.
    from repro.util.rng import spawn_rngs

    streams = spawn_rngs(2006, 2 * len(ccrs) * seeds)
    i = 0
    for problem, builder in (
        ("wavefront", lambda rng, c: wavefront(wavefront_size_for_tasks(target_tasks), rng, ccr=c)),
        ("cholesky", lambda rng, c: cholesky(cholesky_size_for_tasks(target_tasks), rng, ccr=c)),
    ):
        for c in ccrs:
            for s in range(seeds):
                from repro.bench.suite import Instance

                instances.append(Instance(problem, c, s, builder(streams[i], c)))
                i += 1

    records = run_sweep(instances, algorithms, procs)
    spans: Dict[Tuple[str, float, int, int], Dict[str, float]] = {}
    for rec in records:
        spans.setdefault((rec.problem, rec.ccr, rec.seed_index, rec.procs), {})[
            rec.algorithm
        ] = rec.makespan
    # Mean NSL per (algorithm, ccr), pooled over problems/procs/seeds.
    sums: Dict[Tuple[str, float], float] = {}
    counts: Dict[Tuple[str, float], int] = {}
    for (problem, c, _s, _p), d in spans.items():
        ref = d["mcp"]
        for algo, span in d.items():
            key = (algo, c)
            sums[key] = sums.get(key, 0.0) + span / ref
            counts[key] = counts.get(key, 0) + 1
    nsl = {k: sums[k] / counts[k] for k in sums}
    rows = [[algo, *(nsl[(algo, c)] for c in ccrs)] for algo in algorithms]
    table = format_table(
        ["algorithm", *(f"CCR={c:g}" for c in ccrs)],
        rows,
        title=(
            f"X8 — mean NSL (vs MCP) pooled over lu/stencil/wavefront/cholesky, "
            f"P in {tuple(procs)}"
        ),
    )
    return ExperimentReport(
        experiment="extended-sweep",
        title="TR-style extended granularity sweep",
        text=table,
        data={"ccrs": list(ccrs), "nsl": {a: [nsl[(a, c)] for c in ccrs] for a in algorithms}},
    )


# ---------------------------------------------------------------------------


def run_all(
    target_tasks: int = 400,
    seeds: int = 2,
    quick: bool = True,
) -> List[ExperimentReport]:
    """Run every experiment at a configurable scale; returns all reports.

    ``quick=True`` trims processor lists and repeat counts so the full set
    finishes in a couple of minutes; the EXPERIMENTS.md record was produced
    with paper-scale parameters.
    """
    procs = (2, 8, 32) if quick else PAPER_PROCS
    reports = [
        run_table1(),
        run_fig2(target_tasks, seeds=seeds, procs=procs, time_repeats=1 if quick else 3),
        run_fig3(target_tasks, seeds=seeds, procs=(1, *procs)),
        run_fig4(target_tasks, seeds=seeds, procs=procs),
        run_scaling(sizes=(250, 500, 1000) if quick else (250, 500, 1000, 2000, 4000)),
        run_ablation_ties(target_tasks, seeds=seeds, procs=procs[:2]),
        run_ablation_llb(target_tasks, seeds=seeds, procs=procs[:2]),
        run_robustness(target_tasks, seeds=min(seeds, 3)),
        run_contention(target_tasks, seeds=min(seeds, 2)),
        run_duplication(target_tasks, seeds=min(seeds, 2)),
        run_heterogeneity(target_tasks, seeds=min(seeds, 2)),
    ]
    return reports
