"""Throughput performance gate for the FLB fast path.

The CSR fast path (``docs/performance.md``) exists for one number:
scheduling throughput, in tasks placed per second of wall-clock scheduling
time, measured on the Fig. 2 suite (LU, Laplace, stencil).  This module
measures that number and *gates* on it, so a refactor that quietly gives the
speedup back fails CI instead of shipping:

* :func:`measure_throughput` times ``flb`` (the fast path) across the suite
  and, optionally, the pre-CSR reference implementation
  (:func:`repro.core.flb._flb_observed` with no observer — the seed
  algorithm, kept verbatim for trace fidelity) for a speedup-vs-seed figure.
* :func:`run_gate` compares the measurement against the baseline stored in
  ``BENCH_sched.json`` at the repo root and fails when current throughput
  drops more than ``tolerance`` (default 20%) below it.  The current
  measurement is always recorded back into the file so the JSON doubles as
  a running log; the baseline only moves on an explicit ``update_baseline``.

``benchmarks/perf_gate.py`` is the command-line wrapper and
``tools/perf_smoke.sh`` runs the whole thing at smoke scale in under a
minute.  The gate logic takes the measurement as an injectable dict so the
threshold arithmetic is tested deterministically (``tests/test_perf_gate.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.bench.suite import paper_suite
from repro.core.flb import flb
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "GateResult",
    "measure_throughput",
    "run_gate",
    "seed_flb",
]

#: Repo-root location of the stored baseline (next to pyproject.toml).
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_sched.json"

#: Drop larger than this fraction below the baseline fails the gate.
DEFAULT_TOLERANCE = 0.20


def seed_flb(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """The pre-fast-path FLB implementation (the seed's algorithm).

    ``_flb_observed`` with ``observer=None`` is the original dict-and-
    IndexedHeap loop, preserved verbatim for trace/oracle fidelity; timing it
    gives the honest "before" number for ``speedup_vs_seed``.
    """
    from repro.core.flb import _flb_observed

    if machine is None:
        if num_procs is None:
            raise ValueError("seed_flb requires num_procs or machine")
        machine = MachineModel(num_procs)
    return _flb_observed(graph, machine, None, True)


def measure_throughput(
    target_tasks: int = 2000,
    seeds: int = 2,
    procs: Sequence[int] = (2, 8, 32),
    problems: Sequence[str] = ("lu", "laplace", "stencil"),
    repeats: int = 3,
    include_seed: bool = True,
    kernel: str = "auto",
) -> Dict[str, object]:
    """Measure FLB scheduling throughput on the Fig. 2 suite.

    Throughput is total tasks placed over total median scheduling seconds,
    summed across every (instance, P) pair — one aggregate number rather
    than a per-cell table, because the gate needs a single scalar that
    regressions cannot hide from by trading cells against each other.

    ``kernel`` picks the FLB implementation under test (resolved through
    :func:`repro.core.flb_array.resolve_kernel`, so ``REPRO_KERNEL`` and
    numba availability apply): ``"object"`` times the CSR fast path
    (:func:`repro.core.flb.flb`), anything else times the array kernel with
    that backend.  The resolved name is recorded in the result so stored
    baselines say what they measured.
    """
    from repro.core.flb_array import flb_array, resolve_kernel
    from repro.metrics.metrics import time_scheduler

    resolved = resolve_kernel(kernel)
    if resolved == "object":
        fast = flb
    else:
        def fast(
            graph: TaskGraph,
            num_procs: Optional[int] = None,
            machine: Optional[MachineModel] = None,
        ) -> Schedule:
            return flb_array(graph, num_procs, machine=machine, backend=resolved)

    instances = paper_suite(target_tasks, seeds=seeds, problems=problems)
    total_tasks = 0
    fast_seconds = 0.0
    seed_seconds = 0.0
    for inst in instances:
        for p in procs:
            total_tasks += inst.graph.num_tasks
            fast_seconds += time_scheduler(fast, inst.graph, p, repeats=repeats)
            if include_seed:
                seed_seconds += time_scheduler(
                    seed_flb, inst.graph, p, repeats=repeats
                )
    result: Dict[str, object] = {
        "tasks_per_s": round(total_tasks / fast_seconds, 1),
        "total_tasks": total_tasks,
        "kernel": resolved,
        "suite": {
            "target_tasks": target_tasks,
            "seeds": seeds,
            "procs": list(procs),
            "problems": list(problems),
            "repeats": repeats,
        },
    }
    if include_seed:
        result["seed_tasks_per_s"] = round(total_tasks / seed_seconds, 1)
        result["speedup_vs_seed"] = round(seed_seconds / fast_seconds, 2)
    return result


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate run."""

    ok: bool
    message: str
    current: Dict[str, object]
    baseline: Optional[Dict[str, object]]
    threshold: Optional[float]  # tasks/s floor the measurement had to clear


def run_gate(
    current: Optional[Dict[str, object]] = None,
    baseline_path: Path = DEFAULT_BASELINE_PATH,
    tolerance: float = DEFAULT_TOLERANCE,
    update_baseline: bool = False,
    write: bool = True,
    **measure_kwargs: object,
) -> GateResult:
    """Compare throughput (measured now, or injected via ``current``) against
    the stored baseline.

    * No baseline file yet: the measurement becomes the baseline and the
      gate passes (first run bootstraps the gate).
    * ``update_baseline``: the measurement replaces the baseline.
    * Otherwise: fail iff ``current < baseline * (1 - tolerance)``.

    The file's ``current`` entry is rewritten on every run (unless
    ``write=False``), so the JSON records the latest measurement alongside
    the baseline it was judged against.  Every baseline ever adopted is
    appended to the file's ``history`` list (timestamped, newest last), so
    re-baselining after a speedup keeps the old floor on record instead of
    silently discarding it; ``baseline`` always equals the latest history
    entry minus the timestamp.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if current is None:
        current = measure_throughput(**measure_kwargs)
    baseline_path = Path(baseline_path)
    stored = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    )
    baseline = stored.get("baseline")
    history = list(stored.get("history", []))
    rebaseline = baseline is None or update_baseline

    if rebaseline:
        result = GateResult(
            ok=True,
            message=(
                f"baseline {'updated' if baseline is not None else 'recorded'}: "
                f"{current['tasks_per_s']:,.0f} tasks/s"
            ),
            current=current,
            baseline=current,
            threshold=None,
        )
    else:
        floor = baseline["tasks_per_s"] * (1.0 - tolerance)
        ok = current["tasks_per_s"] >= floor
        verdict = "ok" if ok else "REGRESSION"
        result = GateResult(
            ok=ok,
            message=(
                f"{verdict}: {current['tasks_per_s']:,.0f} tasks/s vs baseline "
                f"{baseline['tasks_per_s']:,.0f} (floor {floor:,.0f}, "
                f"tolerance {tolerance:.0%})"
            ),
            current=current,
            baseline=baseline,
            threshold=floor,
        )

    if write:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%S")
        if not history and baseline is not None:
            # Migrate pre-history files: the standing baseline becomes the
            # first history entry, so a simultaneous re-baseline appends
            # after it instead of discarding it.
            history.append({**dict(baseline), "recorded": timestamp})
        if rebaseline and (not history or dict(result.baseline or {}) != {
            k: v for k, v in history[-1].items() if k != "recorded"
        }):
            history.append({**dict(result.baseline or {}), "recorded": timestamp})
        payload = {
            "benchmark": "flb-scheduling-throughput",
            "unit": "tasks/s",
            "tolerance": tolerance,
            "baseline": result.baseline,
            "history": history,
            "current": current,
            "last_run": {
                "ok": result.ok,
                "message": result.message,
                "timestamp": timestamp,
            },
        }
        baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    return result
