"""Sweep runner: algorithms x instances x processor counts.

Produces flat :class:`RunRecord` rows that the experiment reproductions
(:mod:`repro.bench.experiments`) aggregate into the paper's figures and
tables.  Timing uses :func:`repro.metrics.time_scheduler` (median of
repeats, warm cache), quality comes straight from the schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.suite import Instance
from repro.machine.model import MachineModel
from repro.metrics.metrics import speedup, time_scheduler
from repro.resultcache import ResultCache
from repro.schedulers import SCHEDULERS

__all__ = ["RunRecord", "run_sweep", "group_mean"]


@dataclass(frozen=True)
class RunRecord:
    """One (instance, algorithm, P) measurement."""

    problem: str
    ccr: float
    seed_index: int
    algorithm: str
    procs: int
    makespan: float
    speedup: float
    seconds: Optional[float]  # None when timing was not requested


def run_sweep(
    instances: Iterable[Instance],
    algorithms: Sequence[str],
    procs_list: Sequence[int],
    measure_time: bool = False,
    time_repeats: int = 3,
    validate: bool = False,
    workers: int = 1,
    timeout: Optional[float] = None,
    result_cache: Optional["ResultCache"] = None,
) -> List[RunRecord]:
    """Run every algorithm on every instance at every processor count.

    With ``workers > 1`` the (instance, algorithm, P) jobs fan out across
    supervised worker processes via :func:`repro.batch.schedule_many` —
    except when ``measure_time`` is set: timing must stay serial in this
    process, or the measurements would contend for cores and each other's
    caches.  ``timeout`` is a per-job execution budget (seconds, measured
    from execution start); a hung scheduler is killed rather than stalling
    the sweep.  A job failure (any ``BatchResult.error``) raises with the
    failure's ``error_kind``, matching the serial path where scheduler
    exceptions propagate.  ``timeout`` is ignored on the serial path.

    ``result_cache`` (a :class:`repro.resultcache.ResultCache`) is consulted
    on the parallel path before any job is dispatched: sweeps over
    overlapping (graph, algorithm, P) grids — re-runs, refinement passes —
    answer repeated cells in O(1) from the cache, with bit-identical
    quality numbers (schedulers are deterministic).  Inspect the cache's
    ``hits``/``misses``/``evictions`` counters (or ``.stats()``) afterwards
    for the serving accounting.
    """
    unknown = [a for a in algorithms if a not in SCHEDULERS]
    if unknown:
        raise ValueError(f"unknown algorithms: {unknown}")
    instances = list(instances)

    if workers > 1 and not measure_time:
        from repro.api import SchedulingOptions
        from repro.batch import BatchJob, schedule_many

        jobs = []
        meta = []
        for inst in instances:
            for procs in procs_list:
                for algo in algorithms:
                    jobs.append(
                        BatchJob(graph=inst.graph, procs=procs, algo=algo,
                                 tag=inst.problem)
                    )
                    meta.append(inst)
        results = schedule_many(
            jobs, workers=workers,
            options=SchedulingOptions(timeout=timeout, validate=validate),
            cache=result_cache,
        )
        records = []
        for inst, res in zip(meta, results):
            if not res.ok:
                raise RuntimeError(
                    f"{res.algo} on {inst.problem} (P={res.procs}) failed "
                    f"({res.error_kind}):\n{res.error}"
                )
            records.append(
                RunRecord(
                    problem=inst.problem,
                    ccr=inst.ccr,
                    seed_index=inst.seed_index,
                    algorithm=res.algo,
                    procs=res.procs,
                    makespan=res.makespan,
                    speedup=res.speedup,
                    seconds=None,
                )
            )
        return records

    records: List[RunRecord] = []
    for inst in instances:
        for procs in procs_list:
            machine = MachineModel(procs)
            for algo in algorithms:
                scheduler = SCHEDULERS[algo]
                schedule = scheduler(inst.graph, machine=machine)
                if validate:
                    schedule.validate()
                seconds = (
                    time_scheduler(scheduler, inst.graph, machine=machine,
                                   repeats=time_repeats)
                    if measure_time
                    else None
                )
                records.append(
                    RunRecord(
                        problem=inst.problem,
                        ccr=inst.ccr,
                        seed_index=inst.seed_index,
                        algorithm=algo,
                        procs=procs,
                        makespan=schedule.makespan,
                        speedup=speedup(schedule),
                        seconds=seconds,
                    )
                )
    return records


def group_mean(
    records: Iterable[RunRecord],
    key: Callable[[RunRecord], Tuple[object, ...]],
    value: Callable[[RunRecord], float],
) -> Dict[Tuple[object, ...], float]:
    """Group records by ``key`` and average ``value`` within each group."""
    sums: Dict[Tuple[object, ...], float] = {}
    counts: Dict[Tuple[object, ...], int] = {}
    for rec in records:
        k = key(rec)
        sums[k] = sums.get(k, 0.0) + value(rec)
        counts[k] = counts.get(k, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}
