"""The paper's experimental workload suite (Section 6).

The paper evaluates on LU decomposition, a Laplace equation solver, and a
stencil algorithm (FFT additionally appears in the Fig. 3 speedup
discussion), each sized to about ``V = 2000`` tasks, at CCR values 0.2
(coarse grain) and 5.0 (fine grain), with 5 random-weight instances per
configuration (i.i.d. weights; see DESIGN.md §4.2 on the "unit coefficient
of variation" wording).

:func:`paper_suite` reproduces that suite.  ``target_tasks`` scales the
whole suite down for quick runs (the benchmark harness defaults to a few
hundred tasks so the exhaustive-scan baselines finish promptly; pass 2000
for the paper-sized runs recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:
    import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.util.rng import spawn_rngs
from repro.workloads import (
    fft,
    fft_size_for_tasks,
    laplace,
    laplace_size_for_tasks,
    lu,
    lu_size_for_tasks,
    stencil,
    stencil_size_for_tasks,
)

__all__ = ["Instance", "paper_suite", "PAPER_PROBLEMS", "PAPER_CCRS", "PAPER_PROCS"]

#: Problems in the paper's evaluation (FFT appears in the Fig. 3 discussion).
PAPER_PROBLEMS: Tuple[str, ...] = ("lu", "laplace", "stencil", "fft")

#: Granularities used by the paper.
PAPER_CCRS: Tuple[float, ...] = (0.2, 5.0)

#: Processor counts on the x-axes of Figs. 2-4.
PAPER_PROCS: Tuple[int, ...] = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class Instance:
    """One workload instance of the suite."""

    problem: str
    ccr: float
    seed_index: int
    graph: TaskGraph

    @property
    def label(self) -> str:
        return f"{self.problem}/ccr={self.ccr:g}/#{self.seed_index}"


def _build_problem(
    problem: str, target_tasks: int, rng: "np.random.Generator", ccr: float,
    distribution: str,
) -> TaskGraph:
    if problem == "lu":
        return lu(lu_size_for_tasks(target_tasks), rng, ccr=ccr, distribution=distribution)
    if problem == "laplace":
        grid, iters = laplace_size_for_tasks(target_tasks)
        return laplace(grid, iters, rng, ccr=ccr, distribution=distribution)
    if problem == "stencil":
        cells, steps = stencil_size_for_tasks(target_tasks)
        return stencil(cells, steps, rng, ccr=ccr, distribution=distribution)
    if problem == "fft":
        return fft(fft_size_for_tasks(target_tasks), rng, ccr=ccr, distribution=distribution)
    raise ValueError(f"unknown problem {problem!r}; expected one of {PAPER_PROBLEMS}")


def paper_suite(
    target_tasks: int = 2000,
    ccrs: Sequence[float] = PAPER_CCRS,
    seeds: int = 5,
    problems: Sequence[str] = PAPER_PROBLEMS,
    distribution: str = "uniform",
    base_seed: int = 1999,  # the paper's year; any fixed value works
) -> List[Instance]:
    """Build the paper's workload suite.

    Returns ``len(problems) * len(ccrs) * seeds`` instances, each with
    independent random weights derived deterministically from ``base_seed``.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    instances: List[Instance] = []
    streams = spawn_rngs(base_seed, len(problems) * len(ccrs) * seeds)
    i = 0
    for problem in problems:
        for ccr in ccrs:
            for seed_index in range(seeds):
                graph = _build_problem(problem, target_tasks, streams[i], ccr, distribution)
                instances.append(Instance(problem, ccr, seed_index, graph))
                i += 1
    return instances
