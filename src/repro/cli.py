"""Command-line interface: ``repro-sched``.

Subcommands::

    generate    build a workload task graph and write it to JSON
    schedule    schedule a graph (generated or loaded) and print the result
    compare     run every algorithm on one instance, side by side
    trace       print the FLB execution trace (Table 1 format)
    lint        statically analyse a task graph (rule codes G001..)
    certify     schedule, then independently verify the result (S/F codes)
    batch       schedule many jobs across supervised worker processes
    serve       run the HTTP scheduling service (see docs/serving.md)
    report      render a human summary from a --trace-out JSONL trace
    experiment  regenerate the paper's tables/figures and the ablations

Observability flags are spelled the same everywhere they appear
(``batch``, ``lint``, ``certify``, ``report``): ``--json`` switches the
report to machine-readable JSON, ``--metrics-out FILE`` writes Prometheus
text exposition, ``--trace-out FILE`` writes the JSONL event trace, and
``--stats`` prints run counters.  See docs/observability.md.

Examples::

    repro-sched generate --problem lu --tasks 500 --ccr 5.0 -o lu.json
    repro-sched schedule --graph lu.json --procs 8 --algo flb --gantt
    repro-sched schedule --problem stencil --tasks 400 --procs 8 --algo mcp
    repro-sched compare --problem fft --tasks 300 --procs 16
    repro-sched trace
    repro-sched experiment fig2 --tasks 500 --seeds 2
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry

from repro.bench import (
    run_ablation_llb,
    run_ablation_ties,
    run_all,
    run_contention,
    run_duplication,
    run_heterogeneity,
    run_extended_sweep,
    run_fig2,
    run_fig3,
    run_fig4,
    run_robustness,
    run_scaling,
    run_table1,
)
from repro.core import TraceRecorder, flb, format_trace
from repro.graph import TaskGraph, load_json, save_json, width
from repro.machine.model import MachineModel
from repro.metrics import summarize, time_scheduler
from repro.schedule import Schedule, render_gantt
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.workloads import (
    cholesky,
    cholesky_size_for_tasks,
    fft,
    fft_size_for_tasks,
    laplace,
    laplace_size_for_tasks,
    lu,
    lu_chain,
    lu_size_for_tasks,
    stencil,
    stencil_size_for_tasks,
    wavefront,
    wavefront_size_for_tasks,
)

__all__ = ["main", "build_parser"]

_PROBLEMS = ("lu", "lu-chain", "laplace", "stencil", "fft", "cholesky", "wavefront")

_EXPERIMENTS = {
    "table1": lambda args: run_table1(),
    "fig2": lambda args: run_fig2(args.tasks, seeds=args.seeds, procs=(2, 8, 32), time_repeats=1,
                                  workers=args.workers),
    "fig3": lambda args: run_fig3(args.tasks, seeds=args.seeds, procs=(1, 2, 8, 32),
                                  workers=args.workers),
    "fig4": lambda args: run_fig4(args.tasks, seeds=args.seeds, procs=(2, 8, 32),
                                  workers=args.workers),
    "scaling": lambda args: run_scaling(),
    "ties": lambda args: run_ablation_ties(args.tasks, seeds=args.seeds),
    "llb": lambda args: run_ablation_llb(args.tasks, seeds=args.seeds),
    "robustness": lambda args: run_robustness(args.tasks, seeds=min(args.seeds, 3)),
    "contention": lambda args: run_contention(args.tasks, seeds=min(args.seeds, 2)),
    "duplication": lambda args: run_duplication(args.tasks, seeds=min(args.seeds, 2)),
    "heterogeneity": lambda args: run_heterogeneity(args.tasks, seeds=min(args.seeds, 2)),
    "extended": lambda args: run_extended_sweep(args.tasks, seeds=min(args.seeds, 2)),
}


def _build_problem(problem: str, tasks: int, ccr: float, seed: int) -> TaskGraph:
    rng = make_rng(seed)
    if problem == "lu":
        return lu(lu_size_for_tasks(tasks), rng, ccr=ccr)
    if problem == "lu-chain":
        return lu_chain(lu_size_for_tasks(tasks), rng, ccr=ccr)
    if problem == "laplace":
        grid, iters = laplace_size_for_tasks(tasks)
        return laplace(grid, iters, rng, ccr=ccr)
    if problem == "stencil":
        cells, steps = stencil_size_for_tasks(tasks)
        return stencil(cells, steps, rng, ccr=ccr)
    if problem == "fft":
        return fft(fft_size_for_tasks(tasks), rng, ccr=ccr)
    if problem == "cholesky":
        return cholesky(cholesky_size_for_tasks(tasks), rng, ccr=ccr)
    if problem == "wavefront":
        return wavefront(wavefront_size_for_tasks(tasks), rng, ccr=ccr)
    raise SystemExit(f"unknown problem {problem!r}")


def _resolve_graph(args: argparse.Namespace) -> TaskGraph:
    if getattr(args, "graph", None):
        return load_json(args.graph)
    return _build_problem(args.problem, args.tasks, args.ccr, args.seed)


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    from repro.core.flb_array import KERNEL_CHOICES

    parser.add_argument(
        "--kernel", choices=KERNEL_CHOICES, default="auto",
        help="FLB backend: auto (numba when importable, else array), "
             "object (reference heaps), array (NumPy state vectors) or "
             "numba (njit-compiled); REPRO_KERNEL overrides, non-FLB "
             "algorithms ignore it",
    )


def _run_algorithm(
    algo: str,
    kernel: str,
    graph: TaskGraph,
    procs: int,
    machine: Optional[MachineModel] = None,
) -> Tuple[Schedule, str]:
    """Run ``algo`` honouring ``--kernel``; returns (schedule, backend)."""
    if machine is None:
        machine = MachineModel(procs)
    if algo == "flb":
        from repro.core.flb_array import (
            flb_array,
            resolve_kernel,
            stock_flb_registered,
        )

        if not stock_flb_registered():
            return SCHEDULERS[algo](graph, machine=machine), "object"
        resolved = resolve_kernel(kernel)
        if resolved != "object":
            return flb_array(graph, machine=machine, backend=resolved), resolved
    return SCHEDULERS[algo](graph, machine=machine), "object"


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    """The shared machine-model flag set: spelled identically everywhere.

    No flag given means the homogeneous default machine — bit-identical to
    the pre-machine-model behaviour.
    """
    parser.add_argument(
        "--speeds", nargs="+", type=float, default=None, metavar="S",
        help="per-processor relative speeds (length must match the "
             "processor count); any non-uniform vector makes the machine "
             "heterogeneous",
    )
    parser.add_argument(
        "--comm-scale", type=float, default=None, metavar="X",
        help="multiplier applied to every remote communication cost "
             "(default 1.0)",
    )
    parser.add_argument(
        "--latency", type=float, default=None, metavar="L",
        help="fixed per-message latency added to every remote "
             "communication (default 0.0)",
    )
    parser.add_argument(
        "--machine-json", metavar="JSON|FILE", default=None,
        help="full machine document (MachineModel.to_dict form): inline "
             "JSON or a path to a JSON file; mutually exclusive with "
             "--speeds/--comm-scale/--latency",
    )


def _machine_from_args(
    args: argparse.Namespace, procs: Optional[int]
) -> Optional[MachineModel]:
    """Resolve the ``--speeds/--comm-scale/--latency/--machine-json`` flags.

    Returns ``None`` when no machine flag was given, so callers fall back
    to the plain integer path and stay bit-identical with earlier releases.
    ``procs`` is the subcommand's processor count (``None`` for ``serve``,
    which sizes the machine from the flags themselves).  Exits with a
    message (:class:`SystemExit`) on conflicts or malformed documents.
    """
    import json as _json
    from pathlib import Path

    doc_text = getattr(args, "machine_json", None)
    speeds = getattr(args, "speeds", None)
    comm_scale = getattr(args, "comm_scale", None)
    latency = getattr(args, "latency", None)
    if doc_text is not None:
        if speeds is not None or comm_scale is not None or latency is not None:
            raise SystemExit(
                "--machine-json is mutually exclusive with "
                "--speeds/--comm-scale/--latency"
            )
        text = doc_text
        if not text.lstrip().startswith("{"):
            try:
                text = Path(doc_text).read_text()
            except OSError as exc:
                raise SystemExit(f"cannot read --machine-json: {exc}") from None
        try:
            machine = MachineModel.from_dict(_json.loads(text))
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad --machine-json: {exc}") from None
        if procs is not None and machine.num_procs != procs:
            raise SystemExit(
                f"--machine-json has num_procs={machine.num_procs} but "
                f"--procs is {procs}; pass a matching --procs"
            )
        return machine
    if speeds is None and comm_scale is None and latency is None:
        return None
    if procs is None:
        if speeds is None:
            raise SystemExit(
                "--comm-scale/--latency need --speeds or --machine-json "
                "here to size the machine"
            )
        procs = len(speeds)
    if speeds is not None and len(speeds) != procs:
        raise SystemExit(
            f"--speeds has {len(speeds)} entries but the machine has "
            f"{procs} processors"
        )
    try:
        return MachineModel(
            procs,
            comm_scale=1.0 if comm_scale is None else comm_scale,
            latency=0.0 if latency is None else latency,
            speeds=None if speeds is None else tuple(speeds),
        )
    except ValueError as exc:
        raise SystemExit(f"bad machine flags: {exc}") from None


def _add_workload_args(parser: argparse.ArgumentParser, with_graph: bool = True) -> None:
    if with_graph:
        parser.add_argument("--graph", help="load a task graph from JSON instead of generating")
    parser.add_argument("--problem", choices=_PROBLEMS, default="lu", help="workload family")
    parser.add_argument("--tasks", type=int, default=500, help="approximate task count")
    parser.add_argument("--ccr", type=float, default=1.0, help="communication-to-computation ratio")
    parser.add_argument("--seed", type=int, default=0, help="weight RNG seed")


def _add_obs_args(
    parser: argparse.ArgumentParser,
    json_help: str,
    trace: bool = False,
) -> None:
    """The shared observability flag set: spelled identically everywhere.

    Hidden aliases (``--json-out``, ``--metrics``, ``--trace``) keep the
    pre-unification spellings parsing; they share a dest with the
    canonical flag and never show in ``--help``.
    """
    parser.add_argument("--json", action="store_true", dest="json_out",
                        help=json_help)
    parser.add_argument("--json-out", action="store_true", dest="json_out",
                        help=argparse.SUPPRESS)
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write Prometheus text exposition of the run's "
                        "metrics to FILE (enables instrumentation)")
    parser.add_argument("--metrics", metavar="FILE", dest="metrics_out",
                        default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    if trace:
        parser.add_argument("--trace-out", metavar="FILE", default=None,
                            help="write the JSONL event trace to FILE "
                            "(render it with `repro-sched report FILE`)")
        parser.add_argument("--trace", metavar="FILE", dest="trace_out",
                            default=argparse.SUPPRESS, help=argparse.SUPPRESS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="FLB (ICPP 1999) reproduction: schedulers, workloads, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a workload graph as JSON")
    _add_workload_args(p_gen, with_graph=False)
    p_gen.add_argument("-o", "--output", required=True, help="output JSON path")

    p_sched = sub.add_parser("schedule", help="schedule a graph and print the result")
    _add_workload_args(p_sched)
    p_sched.add_argument("--procs", type=int, default=4)
    p_sched.add_argument("--algo", choices=sorted(SCHEDULERS), default="flb")
    _add_kernel_arg(p_sched)
    _add_machine_args(p_sched)
    p_sched.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p_sched.add_argument("--table", action="store_true", help="print the placement table")

    p_cmp = sub.add_parser("compare", help="run every algorithm on one instance")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--procs", type=int, default=8)

    p_trace = sub.add_parser("trace", help="print an FLB execution trace (Table 1 format)")
    p_trace.add_argument("--graph", help="JSON graph (default: the paper's Fig. 1 example)")
    p_trace.add_argument("--procs", type=int, default=2)

    p_an = sub.add_parser(
        "analyze",
        help="print task-graph properties, or — given source paths — run "
        "the project's A-rule static analyzer",
    )
    p_an.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="Python files/directories to statically analyze (rule codes "
        "A101..); with no paths, prints task-graph properties instead",
    )
    _add_workload_args(p_an)
    p_an.add_argument("--json", action="store_true", dest="json_out",
                      help="emit the analysis report as JSON (source mode)")
    p_an.add_argument("--strict", action="store_true",
                      help="treat warnings and stale baseline entries as "
                      "failures (source mode)")
    p_an.add_argument("--baseline", metavar="FILE", default=None,
                      help="suppression baseline (default: "
                      "tools/analysis-baseline.json when present)")
    p_an.add_argument("--write-baseline", metavar="FILE", default=None,
                      help="snapshot the current findings as a baseline "
                      "file and exit 0")

    p_lint = sub.add_parser(
        "lint", help="statically analyse a task graph before scheduling"
    )
    _add_workload_args(p_lint)
    _add_obs_args(p_lint, json_help="emit the report as JSON")
    p_lint.add_argument("--stats", action="store_true",
                        help="print lint latency and per-rule-code counts")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")

    p_cert = sub.add_parser(
        "certify", help="schedule a graph, then independently certify the result"
    )
    _add_workload_args(p_cert)
    p_cert.add_argument("--procs", type=int, default=4)
    p_cert.add_argument("--algo", choices=sorted(SCHEDULERS), default="flb")
    _add_kernel_arg(p_cert)
    _add_machine_args(p_cert)
    _add_obs_args(p_cert, json_help="emit the certificate as JSON")
    p_cert.add_argument("--stats", action="store_true",
                        help="print certify latency and per-check-code counts")

    p_exec = sub.add_parser(
        "execute", help="schedule, then re-execute under perturbation/contention"
    )
    _add_workload_args(p_exec)
    p_exec.add_argument("--procs", type=int, default=4)
    p_exec.add_argument("--algo", choices=sorted(SCHEDULERS), default="flb")
    p_exec.add_argument("--noise-cv", type=float, default=0.0,
                        help="lognormal weight noise coefficient of variation")
    p_exec.add_argument("--bandwidth", type=float, default=0.0,
                        help="sender-port bandwidth (0 = contention-free)")
    p_exec.add_argument("--draws", type=int, default=10)

    p_exp = sub.add_parser("experiment", help="regenerate the paper's tables and figures")
    p_exp.add_argument(
        "which", choices=[*sorted(_EXPERIMENTS), "all"], help="experiment id"
    )
    p_exp.add_argument("--tasks", type=int, default=400)
    p_exp.add_argument("--seeds", type=int, default=2)
    p_exp.add_argument("--workers", type=int, default=1,
                       help="worker processes for the fig3/fig4 sweeps "
                       "(timed experiments always run serially)")
    p_exp.add_argument("-o", "--output", help="also write the report(s) to this file")

    p_batch = sub.add_parser(
        "batch", help="schedule many (problem, P, algo) jobs across worker processes"
    )
    p_batch.add_argument("--problems", nargs="+", choices=_PROBLEMS, default=["lu"],
                         help="workload families (one graph per problem x seed)")
    p_batch.add_argument("--procs", nargs="+", type=int, default=[8],
                         help="processor counts")
    p_batch.add_argument("--algos", nargs="+", choices=sorted(SCHEDULERS),
                         default=["flb"], help="algorithms")
    _add_kernel_arg(p_batch)
    _add_machine_args(p_batch)
    p_batch.add_argument("--tasks", type=int, default=500, help="approximate task count")
    p_batch.add_argument("--ccr", type=float, default=1.0)
    p_batch.add_argument("--seeds", type=int, default=1,
                         help="weight RNG seeds per problem (0..seeds-1)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: cpu count)")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-job execution budget in seconds, measured "
                         "from execution start (queue wait never counts); "
                         "an overrunning worker is killed and replaced")
    p_batch.add_argument("--grace", type=float, default=1.0,
                         help="slack for detecting/killing an overrunning "
                         "worker past --timeout (default: 1.0)")
    p_batch.add_argument("--retries", type=int, default=2,
                         help="re-runs allowed after a worker death "
                         "(OOM-kill, segfault) before reporting worker-died "
                         "(default: 2); timeouts are never retried")
    p_batch.add_argument("--backoff", type=float, default=0.1,
                         help="base delay before a death retry in seconds; "
                         "doubles per attempt (default: 0.1)")
    p_batch.add_argument("--validate", action="store_true",
                         help="re-check every schedule from first principles")
    p_batch.add_argument("--certify", action="store_true",
                         help="run the independent checker (incl. the FLB/ETF "
                         "greedy certificate) on every schedule; failures "
                         "report as invalid-schedule")
    p_batch.add_argument("--no-share", action="store_true",
                         help="disable the shared-memory graph plane and "
                         "pickle every graph inline per job (mainly for "
                         "comparison; see docs/performance.md)")
    p_batch.add_argument("--cache-size", type=int, default=1024,
                         help="result-cache capacity: repeated (graph, P, "
                         "algo) jobs are answered in O(1) without "
                         "dispatching a worker (0 disables; default: 1024)")
    p_batch.add_argument("--warm-start", action="store_true",
                         help="warm-start FLB array jobs from previously "
                         "computed schedules: diff the DAG, reuse the clean "
                         "schedule prefix and replay only the dirty suffix "
                         "(bit-identical; silent cold fallback)")
    p_batch.add_argument("--stats", action="store_true",
                         help="print graph-plane and result-cache counters "
                         "after the batch")
    _add_obs_args(p_batch, json_help="emit the per-job results as JSON",
                  trace=True)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP scheduling service until SIGTERM"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8423,
                         help="bind port; 0 picks an ephemeral port and "
                         "prints it (default: 8423)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="scheduler worker processes (default: inline)")
    p_serve.add_argument("--max-backlog", type=int, default=64,
                         help="admission limit on queued + in-flight jobs; "
                         "beyond it requests shed with 429 + Retry-After "
                         "(default: 64)")
    p_serve.add_argument("--tenant-weight", action="append", default=[],
                         metavar="TENANT=WEIGHT",
                         help="fair-queue weight for a tenant (repeatable); "
                         "unknown tenants get weight 1.0")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-job execution budget in seconds")
    p_serve.add_argument("--validate", action="store_true",
                         help="re-check every schedule from first principles")
    p_serve.add_argument("--certify", action="store_true",
                         help="run the independent checker on every schedule")
    _add_machine_args(p_serve)
    p_serve.add_argument("--warm-start", action="store_true",
                         help="enable warm-start rescheduling for every "
                         "request (delta requests with base_fingerprint "
                         "enable it per-request regardless)")
    _add_kernel_arg(p_serve)

    p_report = sub.add_parser(
        "report", help="render a human summary from a --trace-out JSONL trace"
    )
    p_report.add_argument("trace", help="JSONL trace file written by "
                          "--trace-out (or MetricsRegistry.write_trace)")
    p_report.add_argument("--json", action="store_true", dest="json_out",
                          help="emit the summary as JSON instead of tables")
    p_report.add_argument("--json-out", action="store_true", dest="json_out",
                          help=argparse.SUPPRESS)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _build_problem(args.problem, args.tasks, args.ccr, args.seed)
    save_json(graph, args.output)
    print(
        f"wrote {args.problem}: V={graph.num_tasks} E={graph.num_edges} "
        f"W={width(graph)} ccr={args.ccr:g} -> {args.output}"
    )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args)
    machine = _machine_from_args(args, args.procs)
    schedule, backend = _run_algorithm(
        args.algo, args.kernel, graph, args.procs, machine=machine
    )
    schedule.validate()
    kernel_note = f", kernel={backend}" if args.algo == "flb" else ""
    machine_note = (
        ", heterogeneous" if machine is not None and machine.is_heterogeneous
        else ""
    )
    print(
        f"{args.algo} on P={args.procs}: makespan {schedule.makespan:g} "
        f"(V={graph.num_tasks}, E={graph.num_edges}{kernel_note}"
        f"{machine_note})"
    )
    for key, value in summarize(schedule).items():
        print(f"  {key:>16s}: {value:.4g}")
    if args.table:
        print()
        print(schedule.as_table())
    if args.gantt:
        print()
        print(render_gantt(schedule, width=78))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args)
    machine = MachineModel(args.procs)
    mcp_span = SCHEDULERS["mcp"](graph, machine=machine).makespan
    rows = []
    for name in sorted(SCHEDULERS):
        schedule = SCHEDULERS[name](graph, machine=machine)
        ms = time_scheduler(
            SCHEDULERS[name], graph, machine=machine, repeats=1
        ) * 1e3
        rows.append([name, schedule.makespan, schedule.makespan / mcp_span, ms])
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["algorithm", "makespan", "NSL(vs MCP)", "time [ms]"],
            rows,
            title=f"{args.problem if not args.graph else args.graph}: "
            f"V={graph.num_tasks} P={args.procs}",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.graph:
        graph = load_json(args.graph)
    else:
        from repro.workloads import paper_example

        graph = paper_example()
    recorder = TraceRecorder(graph)
    schedule = flb(graph, machine=MachineModel(args.procs), observer=recorder)
    print(format_trace(recorder))
    print(f"\nmakespan = {schedule.makespan:g}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.which == "all":
        reports = run_all(args.tasks, seeds=args.seeds)
    else:
        reports = [_EXPERIMENTS[args.which](args)]
    blocks = []
    for report in reports:
        block = f"== {report.experiment}: {report.title} ==\n{report.text}"
        print(block)
        print()
        blocks.append(block)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text("\n\n".join(blocks) + "\n")
        print(f"(written to {args.output})")
    return 0


def _cmd_analyze_source(args: argparse.Namespace) -> int:
    """Source static analysis (rule codes A101..; docs/static-analysis.md).

    Exit codes: 0 = clean (modulo --strict), 1 = findings or a stale
    baseline under --strict, 2 = unreadable path or malformed baseline.
    """
    import json as _json
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE_PATH,
        analyze_paths,
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    try:
        report = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"cannot analyze: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        entries = write_baseline(report, args.write_baseline)
        print(
            f"wrote {len(entries)} baseline entr"
            f"{'y' if len(entries) == 1 else 'ies'} to {args.write_baseline}"
            f" (now justify each reason)"
        )
        return 0
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_PATH).is_file():
        baseline_path = DEFAULT_BASELINE_PATH
    if baseline_path is not None:
        try:
            report = apply_baseline(report, load_baseline(baseline_path))
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
    if args.json_out:
        print(_json.dumps(report.to_dict(strict=args.strict), indent=2))
    else:
        print(report.render())
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.paths:
        return _cmd_analyze_source(args)
    from repro.graph import (
        bottom_levels,
        ccr,
        critical_path_length,
        parallelism_profile,
    )

    graph = _resolve_graph(args)
    profile = parallelism_profile(graph)
    print(f"tasks:          {graph.num_tasks}")
    print(f"edges:          {graph.num_edges}")
    print(f"width:          {width(graph)}")
    print(f"depth:          {len(profile)}")
    print(f"ccr:            {ccr(graph):.4g}")
    print(f"serial time:    {graph.total_comp():.4g}")
    print(f"critical path:  {critical_path_length(graph):.4g} (with comm)")
    print(f"max bottom lvl: {max(bottom_levels(graph)):.4g}")
    print(f"entry/exit:     {len(graph.entry_tasks)}/{len(graph.exit_tasks)}")
    peak = max(profile)
    print(f"level widths:   min {min(profile)}, max {peak}")
    return 0


def _obs_registry(args: argparse.Namespace) -> Optional["MetricsRegistry"]:
    """A registry when any observability output was requested, else None."""
    if getattr(args, "metrics_out", None) or getattr(args, "trace_out", None):
        from repro.obs import MetricsRegistry

        return MetricsRegistry()
    return None


def _write_obs(reg: Optional["MetricsRegistry"], args: argparse.Namespace) -> None:
    """Flush a registry to the requested --metrics-out / --trace-out files."""
    if reg is None:
        return
    if getattr(args, "metrics_out", None):
        reg.write_prometheus(args.metrics_out)
        print(f"(metrics written to {args.metrics_out})", file=sys.stderr)
    if getattr(args, "trace_out", None):
        reg.write_trace(args.trace_out)
        print(f"(trace written to {args.trace_out})", file=sys.stderr)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit codes: 0 = clean (modulo --strict), 1 = findings, 2 = unreadable."""
    import json as _json
    import time as _time
    from pathlib import Path

    from repro.exceptions import GraphError
    from repro.graph.io import raw_graph_data
    from repro.verify import lint, lint_data

    reg = _obs_registry(args)
    t0 = _time.perf_counter()
    if getattr(args, "graph", None):
        # Parse the document tolerantly: a graph from_json would reject
        # (duplicate edges, bad weights, cycles) should be *linted*, with
        # every problem reported, not bounced at the first error.
        try:
            comps, edges, names = raw_graph_data(Path(args.graph).read_text())
        except (OSError, GraphError) as exc:
            print(f"cannot lint {args.graph}: {exc}", file=sys.stderr)
            return 2
        report = lint_data(comps, edges, names)
    else:
        report = lint(_build_problem(args.problem, args.tasks, args.ccr, args.seed))
    elapsed = _time.perf_counter() - t0
    codes: Dict[str, int] = {}
    for code in report.codes():
        codes[code] = codes.get(code, 0) + 1
    if reg is not None:
        reg.histogram("verify_lint_seconds").observe(elapsed)
        reg.counter("verify_lint_total").inc()
        for code, count in codes.items():
            reg.counter("verify_rule_hits_total", code=code).inc(count)
        reg.event("verify.lint", elapsed, tasks=report.num_tasks,
                  ok=report.ok(strict=args.strict))
    if args.json_out:
        print(_json.dumps(report.to_dict(strict=args.strict), indent=2))
    else:
        print(report.render())
    if args.stats:
        counts = " ".join(f"{c}={n}" for c, n in sorted(codes.items())) or "none"
        print(f"lint: {elapsed * 1e3:.2f} ms, rule hits: {counts}")
    _write_obs(reg, args)
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_certify(args: argparse.Namespace) -> int:
    """Exit codes: 0 = certificate valid, 1 = violations found."""
    import json as _json
    import time as _time

    from repro.verify import certify, greedy_flavor, lint_machine

    graph = _resolve_graph(args)
    machine = _machine_from_args(args, args.procs)
    if machine is not None:
        for issue in lint_machine(machine).issues:
            print(f"machine: {issue.code} [{issue.severity}] {issue.message}",
                  file=sys.stderr)
    reg = _obs_registry(args)
    t_sched = _time.perf_counter()
    schedule, backend = _run_algorithm(
        args.algo, args.kernel, graph, args.procs, machine=machine
    )
    t0 = _time.perf_counter()
    cert = certify(schedule, flavor=greedy_flavor(args.algo))
    elapsed = _time.perf_counter() - t0
    codes: Dict[str, int] = {}
    for code in cert.codes():
        codes[code] = codes.get(code, 0) + 1
    if reg is not None:
        reg.histogram(
            "sched_kernel_seconds", algo=args.algo, kernel=backend
        ).observe(t0 - t_sched)
        reg.histogram("verify_certify_seconds").observe(elapsed)
        reg.counter("verify_certify_total",
                    ok="true" if cert.ok else "false").inc()
        for code, count in codes.items():
            reg.counter("verify_rule_hits_total", code=code).inc(count)
        reg.event("verify.certify", elapsed, algo=args.algo,
                  procs=args.procs, ok=cert.ok, kernel=backend)
    if args.json_out:
        doc = cert.to_dict()
        doc["algo"] = args.algo
        doc["kernel"] = backend
        print(_json.dumps(doc, indent=2))
    else:
        kernel_note = f" (kernel={backend})" if args.algo == "flb" else ""
        print(f"{args.algo} on P={args.procs}{kernel_note}:")
        print(cert.render())
    if args.stats:
        counts = " ".join(f"{c}={n}" for c, n in sorted(codes.items())) or "none"
        print(f"certify: {elapsed * 1e3:.2f} ms, violations: {counts}")
    _write_obs(reg, args)
    return 0 if cert.ok else 1


def _cmd_execute(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.sim import execute, execute_contended, execute_perturbed

    graph = _resolve_graph(args)
    schedule = SCHEDULERS[args.algo](graph, machine=MachineModel(args.procs))
    print(f"planned makespan ({args.algo}, P={args.procs}): {schedule.makespan:g}")
    exact = execute(schedule)
    print(f"contention-free replay: {exact.makespan:g} "
          f"({'matches' if exact.matches(schedule) else 'DIFFERS'})")
    if args.bandwidth > 0:
        contended = execute_contended(schedule, bandwidth=args.bandwidth)
        print(
            f"contended (bw={args.bandwidth:g}): {contended.makespan:g} "
            f"({contended.makespan / schedule.makespan:.3f}x planned)"
        )
    if args.noise_cv > 0:
        spans = [
            execute_perturbed(
                schedule, make_rng(1000 + i), args.noise_cv, args.noise_cv
            ).makespan
            for i in range(args.draws)
        ]
        arr = np.asarray(spans) / schedule.makespan
        print(
            f"perturbed (cv={args.noise_cv:g}, {args.draws} draws): "
            f"mean {arr.mean():.3f}x, worst {arr.max():.3f}x planned"
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Exit codes: 0 = every job ok; 1 = at least one job failed
    (scheduler-error / invalid-schedule); 2 = at least one infrastructure
    failure (timeout / worker-died), which takes precedence over 1."""
    import time as _time

    from repro.api import SchedulingOptions
    from repro.batch import (
        TIMEOUT,
        WORKER_DIED,
        BatchJob,
        BatchScheduler,
        batch_throughput,
    )

    machine = _machine_from_args(
        args, args.procs[0] if len(args.procs) == 1 else None
    )
    if machine is not None and len(args.procs) > 1:
        print("machine flags require a single --procs value", file=sys.stderr)
        return 2
    jobs = []
    for problem in args.problems:
        for seed in range(args.seeds):
            graph = _build_problem(problem, args.tasks, args.ccr, seed)
            for procs in args.procs:
                for algo in args.algos:
                    if machine is not None:
                        jobs.append(
                            BatchJob(graph=graph, machine=machine, algo=algo,
                                     tag=f"{problem}/s{seed}")
                        )
                    else:
                        jobs.append(
                            BatchJob(graph=graph, procs=procs, algo=algo,
                                     tag=f"{problem}/s{seed}")
                        )
    reg = _obs_registry(args)
    options = SchedulingOptions(
        timeout=args.timeout, validate=args.validate, certify=args.certify,
        retries=args.retries, metrics=reg, kernel=args.kernel,
        warm_start=args.warm_start,
    )
    with BatchScheduler(
        workers=args.workers, options=options,
        grace=args.grace, backoff=args.backoff,
        share_graphs=False if args.no_share else None,
        cache_size=max(0, args.cache_size),
    ) as scheduler:
        t0 = _time.perf_counter()
        results = scheduler.run(jobs)
        wall = _time.perf_counter() - t0
        stats = scheduler.stats()
    if args.json_out:
        import dataclasses as _dataclasses
        import json as _json

        print(_json.dumps([_dataclasses.asdict(r) for r in results], indent=2))
        _write_obs(reg, args)
        infra = sum(1 for r in results
                    if r.error_kind in (TIMEOUT, WORKER_DIED))
        failed = sum(1 for r in results if not r.ok)
        return 2 if infra else (1 if failed else 0)
    rows = []
    failures = 0
    infrastructure = 0
    for res in results:
        if res.ok:
            rows.append([res.tag, res.algo, res.procs, res.num_tasks,
                         res.makespan, res.speedup, res.seconds * 1e3,
                         res.queue_seconds * 1e3])
        else:
            failures += 1
            if res.error_kind in (TIMEOUT, WORKER_DIED):
                infrastructure += 1
            first_line = res.error.strip().splitlines()[-1]
            rows.append([res.tag, res.algo, res.procs, res.num_tasks,
                         float("nan"), float("nan"), res.seconds * 1e3,
                         res.queue_seconds * 1e3])
            print(
                f"FAILED {res.tag} {res.algo} P={res.procs} "
                f"[{res.error_kind}] (attempt {res.attempts}): {first_line}",
                file=sys.stderr,
            )
    print(
        format_table(
            ["job", "algorithm", "P", "V", "makespan", "speedup",
             "time [ms]", "wait [ms]"],
            rows,
            title=f"batch: {len(jobs)} jobs, workers={args.workers or 'auto'}",
        )
    )
    print(
        f"\n{len(results) - failures}/{len(jobs)} ok in {wall:.3f}s "
        f"({batch_throughput(results, wall):,.0f} tasks/s)"
    )
    if args.stats:
        print(
            f"graph plane: {stats.get('shared_graphs', 0)} graph(s) in "
            f"shared memory ({stats.get('shared_bytes', 0):,} bytes), "
            f"{stats.get('keyed_jobs', 0)} keyed / "
            f"{stats.get('inline_graph_jobs', 0)} inline job(s)"
        )
        print(
            f"result cache: {stats.get('cache_hits', 0)} hit(s), "
            f"{stats.get('cache_misses', 0)} miss(es), "
            f"{stats.get('cache_evictions', 0)} eviction(s), "
            f"size {stats.get('cache_size', 0)}/{stats.get('cache_capacity', 0)}"
        )
    _write_obs(reg, args)
    if infrastructure:
        return 2
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Exit codes: 0 = clean drain after SIGTERM/SIGINT, 2 = bad flags."""
    from repro.api import SchedulingOptions
    from repro.serve import ServeConfig, serve

    weights = {}
    for spec in args.tenant_weight:
        tenant, sep, value = spec.partition("=")
        try:
            if not sep or not tenant:
                raise ValueError(spec)
            weights[tenant] = float(value)
        except ValueError:
            print(f"bad --tenant-weight {spec!r}; expected TENANT=WEIGHT",
                  file=sys.stderr)
            return 2
    machine = _machine_from_args(args, None)
    options = SchedulingOptions(
        timeout=args.timeout, validate=args.validate,
        certify=args.certify, kernel=args.kernel,
        warm_start=args.warm_start,
    )
    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            max_backlog=args.max_backlog, tenant_weights=weights,
            options=options, machine=machine,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        serve(config)
    except KeyboardInterrupt:
        pass  # ctrl-C before the loop's own handler was installed
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Exit codes: 0 = trace summarised, 2 = unreadable/invalid trace."""
    import json as _json

    from repro.obs import read_trace, render_report, summarize_trace

    try:
        events = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        print(_json.dumps(summarize_trace(events), indent=2, sort_keys=True))
    else:
        print(render_report(events))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "schedule": _cmd_schedule,
    "compare": _cmd_compare,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "certify": _cmd_certify,
    "report": _cmd_report,
    "execute": _cmd_execute,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
