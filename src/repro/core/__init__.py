"""FLB — the paper's core contribution: the fast load-balancing scheduler,
its priority-list machinery, the Table-1 trace recorder, and the Theorem-3
brute-force oracle."""

from repro.core.flb import FlbIteration, FlbObserver, flb
from repro.core.lists import FlbLists
from repro.core.oracle import OracleObserver, brute_force_min_est, est_of
from repro.core.reference import flb_reference
from repro.core.trace import TraceRecorder, format_trace

__all__ = [
    "flb",
    "flb_reference",
    "FlbObserver",
    "FlbIteration",
    "FlbLists",
    "TraceRecorder",
    "format_trace",
    "OracleObserver",
    "brute_force_min_est",
    "est_of",
]
