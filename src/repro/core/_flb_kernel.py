"""The FLB scheduling kernel as one njit-compilable array program.

:func:`flb_kernel` is the whole FLB inner loop — Theorem-3 candidate
selection, lazy-invalidation priority heaps, the fused ready-set update —
expressed over flat NumPy arrays with no Python objects: every mutable
quantity (task states, finish times, processor assignments, per-processor
ready times, indegree counters, and the five priority lists) lives in a
preallocated ``int64``/``float64``/``int8`` vector.  The function body is
plain Python over those arrays, which gives it two execution modes:

* **compiled** — :func:`get_compiled_kernel` lazily imports :mod:`numba`
  (a multi-second import, paid only when the numba backend is actually
  selected) and returns an ``njit(nogil=True)``-compiled version;
* **interpreted** — the function runs as-is under CPython.  This is far
  slower than :func:`repro.core.flb_array._flb_array_impl` (manual array
  heaps cannot beat C ``heapq`` in the interpreter) but it lets the
  equivalence suite pin the *compiled* code path's algorithm bit-for-bit
  on machines without numba.

The five priority lists are binary heaps over parallel key arrays with the
exact comparison :mod:`heapq` applies to the fast path's key tuples —
``(key1, key2, id)`` lexicographic for the task lists, ``(key, proc)`` for
the processor lists — so the pop order is identical to the reference
kernel's wherever keys are distinct, and distinctness is guaranteed by the
unique trailing task id.  Equal ``(est, proc)`` processor entries are
exact duplicates and therefore interchangeable.

Capacity bounds (every task enters each task-list at most once; EP ->
non-EP demotion is one-way):

* non-EP heap: ``V`` entries;
* per-processor EMT/LMT heaps: ``V`` entries in total across processors,
  stored as rectangular ``(P, cap)`` arrays that double on overflow;
* active-processor heap: one push per ``refresh`` call, ``<= 2V + P``;
* all-processors heap: one push per placement plus the initial ``P``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

__all__ = ["flb_kernel", "get_compiled_kernel", "KERNEL_OK", "KERNEL_STUCK"]

#: flb_kernel status codes.
KERNEL_OK = 0
KERNEL_STUCK = 1  # no ready task but schedule incomplete (a bug upstream)

# Task states, identical to repro.core.flb's fast path.
_NOT_READY, _EP, _NON_EP, _DONE = 0, 1, 2, 3


def flb_kernel(
    n: int,
    num_procs: int,
    pred_ptr: np.ndarray,
    pred_ids: np.ndarray,
    succ_ptr: np.ndarray,
    succ_ids: np.ndarray,
    pred_delay: np.ndarray,
    comp: np.ndarray,
    speeds: np.ndarray,
    homogeneous: bool,
    neg_bl: np.ndarray,
    prefer_non_ep_on_tie: bool,
    out_order: np.ndarray,
    out_proc: np.ndarray,
    out_start: np.ndarray,
    out_finish: np.ndarray,
    out_prt: np.ndarray,
    out_counters: np.ndarray,
) -> int:
    """Run FLB over CSR arrays; fill the ``out_*`` arrays.

    ``pred_delay[i]`` is the precomputed remote arrival delay
    ``latency + comm_scale * pred_comm[i]`` for predecessor edge ``i`` —
    hoisting it preserves the reference kernel's float rounding exactly
    (the sum ``ft + (lat + scale * comm)`` is parenthesised the same way).

    ``out_counters`` receives ``[iterations, heap_pushes, ep_choices,
    non_ep_choices]``.  Returns :data:`KERNEL_OK` or :data:`KERNEL_STUCK`.
    """

    # -- heap primitives over parallel key arrays ---------------------------
    # Lexicographic (k1, k2, k3) "<" — what heapq applies to the reference
    # kernel's (LMT/EMT, -BL, id) tuples.

    def lt3(a1: float, a2: float, a3: float, b1: float, b2: float, b3: float) -> bool:
        if a1 < b1:
            return True
        if a1 > b1:
            return False
        if a2 < b2:
            return True
        if a2 > b2:
            return False
        return a3 < b3

    def push3(
        k1: np.ndarray, k2: np.ndarray, k3: np.ndarray, size: int,
        a: float, b: float, c: float,
    ) -> int:
        i = size
        k1[i] = a
        k2[i] = b
        k3[i] = c
        while i > 0:
            parent = (i - 1) >> 1
            if lt3(k1[i], k2[i], k3[i], k1[parent], k2[parent], k3[parent]):
                k1[i], k1[parent] = k1[parent], k1[i]
                k2[i], k2[parent] = k2[parent], k2[i]
                k3[i], k3[parent] = k3[parent], k3[i]
                i = parent
            else:
                break
        return size + 1

    def pop3(k1: np.ndarray, k2: np.ndarray, k3: np.ndarray, size: int) -> int:
        last = size - 1
        k1[0] = k1[last]
        k2[0] = k2[last]
        k3[0] = k3[last]
        i = 0
        while True:
            left = 2 * i + 1
            if left >= last:
                break
            best = left
            right = left + 1
            if right < last and lt3(
                k1[right], k2[right], k3[right], k1[left], k2[left], k3[left]
            ):
                best = right
            if lt3(k1[best], k2[best], k3[best], k1[i], k2[i], k3[i]):
                k1[i], k1[best] = k1[best], k1[i]
                k2[i], k2[best] = k2[best], k2[i]
                k3[i], k3[best] = k3[best], k3[i]
                i = best
            else:
                break
        return last

    def push2(k: np.ndarray, pr: np.ndarray, size: int, a: float, p: int) -> int:
        i = size
        k[i] = a
        pr[i] = p
        while i > 0:
            parent = (i - 1) >> 1
            if k[i] < k[parent] or (k[i] == k[parent] and pr[i] < pr[parent]):
                k[i], k[parent] = k[parent], k[i]
                pr[i], pr[parent] = pr[parent], pr[i]
                i = parent
            else:
                break
        return size + 1

    def pop2(k: np.ndarray, pr: np.ndarray, size: int) -> int:
        last = size - 1
        k[0] = k[last]
        pr[0] = pr[last]
        i = 0
        while True:
            left = 2 * i + 1
            if left >= last:
                break
            best = left
            right = left + 1
            if right < last and (
                k[right] < k[left] or (k[right] == k[left] and pr[right] < pr[left])
            ):
                best = right
            if k[best] < k[i] or (k[best] == k[i] and pr[best] < pr[i]):
                k[i], k[best] = k[best], k[i]
                pr[i], pr[best] = pr[best], pr[i]
                i = best
            else:
                break
        return last

    # -- state vectors ------------------------------------------------------
    state = np.zeros(n, dtype=np.int8)
    npreds = np.empty(n, dtype=np.int64)
    for t in range(n):
        npreds[t] = pred_ptr[t + 1] - pred_ptr[t]
    lmt = np.zeros(n, dtype=np.float64)
    ep_of = np.zeros(n, dtype=np.int64)
    for p in range(num_procs):
        out_prt[p] = 0.0
    prt = out_prt

    # Non-EP list, keyed (LMT, -BL, id).
    non_k1 = np.empty(n + 1, dtype=np.float64)
    non_k2 = np.empty(n + 1, dtype=np.float64)
    non_id = np.empty(n + 1, dtype=np.int64)
    non_size = 0
    # All-processors list, keyed (PRT, proc); starts with every proc at 0.
    all_cap = n + num_procs + 1
    all_k = np.empty(all_cap, dtype=np.float64)
    all_p = np.empty(all_cap, dtype=np.int64)
    for p in range(num_procs):
        all_k[p] = 0.0
        all_p[p] = p  # sorted ascending => a valid binary heap
    all_size = num_procs
    # Active-processors list, keyed (min EST, proc), lazily validated
    # against active_est.
    act_cap = 2 * n + num_procs + 2
    act_k = np.empty(act_cap, dtype=np.float64)
    act_p = np.empty(act_cap, dtype=np.int64)
    act_size = 0
    active_est = np.zeros(num_procs, dtype=np.float64)
    active_valid = np.zeros(num_procs, dtype=np.int8)
    # Per-processor EP lists keyed (EMT, -BL, id) / (LMT, -BL, id), as
    # rectangular (P, cap) heaps doubling on overflow.
    emt_cap = 64
    emt_k1 = np.empty((num_procs, emt_cap), dtype=np.float64)
    emt_k2 = np.empty((num_procs, emt_cap), dtype=np.float64)
    emt_id = np.empty((num_procs, emt_cap), dtype=np.int64)
    emt_sizes = np.zeros(num_procs, dtype=np.int64)
    lmt_cap = 64
    lmt_k1 = np.empty((num_procs, lmt_cap), dtype=np.float64)
    lmt_k2 = np.empty((num_procs, lmt_cap), dtype=np.float64)
    lmt_id = np.empty((num_procs, lmt_cap), dtype=np.int64)
    lmt_sizes = np.zeros(num_procs, dtype=np.int64)

    heap_pushes = 0
    ep_choices = 0
    non_ep_choices = 0

    def refresh_active(
        p: int, act_size: int,
        row_k1: np.ndarray, row_k2: np.ndarray, row_id: np.ndarray,
    ) -> int:
        # Re-derive p's entry in the active list from the head of its EMT
        # list and its PRT (the paper's UpdateProcLists).
        sz = emt_sizes[p]
        while sz > 0 and state[row_id[0]] != _EP:
            sz = pop3(row_k1, row_k2, row_id, sz)
        emt_sizes[p] = sz
        if sz == 0:
            active_valid[p] = 0
        else:
            est = row_k1[0]
            rt = prt[p]
            if rt > est:
                est = rt
            active_est[p] = est
            active_valid[p] = 1
            act_size = push2(act_k, act_p, act_size, est, p)
        return act_size

    for t in range(n):
        # Entry tasks have no enabling processor and are non-EP with LMT 0.
        if npreds[t] == 0:
            state[t] = _NON_EP
            non_size = push3(non_k1, non_k2, non_id, non_size, 0.0, neg_bl[t], t)
            heap_pushes += 1

    status = KERNEL_OK
    for it in range(n):
        # Candidate (a): EP task with minimum EST on its enabling processor.
        while act_size > 0:
            est = act_k[0]
            p = act_p[0]
            if active_valid[p] == 1 and active_est[p] == est:
                break
            act_size = pop2(act_k, act_p, act_size)
        # Candidate (b): non-EP task with minimum LMT, on the earliest-idle
        # processor.
        while non_size > 0 and state[non_id[0]] != _NON_EP:
            non_size = pop3(non_k1, non_k2, non_id, non_size)
        idle_prt = 0.0
        idle_proc = 0
        while True:
            idle_prt = all_k[0]
            idle_proc = all_p[0]
            if prt[idle_proc] == idle_prt:
                break
            all_size = pop2(all_k, all_p, all_size)

        if act_size == 0 and non_size == 0:
            status = KERNEL_STUCK
            break
        # Theorem 3: compare the two candidates; per the paper, ties favour
        # the non-EP task (ablatable via prefer_non_ep_on_tie).
        if non_size == 0:
            take_ep = True
        elif act_size == 0:
            take_ep = False
        else:
            ep_est = act_k[0]
            non_lmt = non_k1[0]
            non_est = non_lmt if non_lmt > idle_prt else idle_prt
            if prefer_non_ep_on_tie:
                take_ep = ep_est < non_est
            else:
                take_ep = ep_est <= non_est
        if take_ep:
            proc = act_p[0]
            est = act_k[0]
            row_k1 = emt_k1[proc]
            row_k2 = emt_k2[proc]
            row_id = emt_id[proc]
            sz = emt_sizes[proc]
            while state[row_id[0]] != _EP:  # defensive, mirrors the fast path
                sz = pop3(row_k1, row_k2, row_id, sz)
            emt_sizes[proc] = sz
            task = row_id[0]
            ep_choices += 1
        else:
            task = non_id[0]
            non_lmt = non_k1[0]
            proc = idle_proc
            est = non_lmt if non_lmt > idle_prt else idle_prt
            non_ep_choices += 1

        # ScheduleTask: the chosen task's heap entries become tombstones.
        state[task] = _DONE
        if homogeneous:
            ft = est + comp[task]
        else:
            ft = est + comp[task] / speeds[proc]
        out_order[it] = task
        out_proc[task] = proc
        out_start[task] = est
        out_finish[task] = ft

        # UpdateTaskLists + UpdateProcLists: PRT(proc) rises to ft; EP tasks
        # of proc whose LMT fell below it demote to non-EP.
        prt[proc] = ft
        all_size = push2(all_k, all_p, all_size, ft, proc)
        heap_pushes += 1
        row_k1 = lmt_k1[proc]
        row_k2 = lmt_k2[proc]
        row_id = lmt_id[proc]
        sz = lmt_sizes[proc]
        while sz > 0:
            e_id = row_id[0]
            if state[e_id] != _EP:
                sz = pop3(row_k1, row_k2, row_id, sz)
                continue
            e_lmt = row_k1[0]
            if e_lmt >= ft:
                break
            e_bl = row_k2[0]
            sz = pop3(row_k1, row_k2, row_id, sz)
            state[e_id] = _NON_EP
            # Same (LMT, -BL, id) key moves to the non-EP list.
            non_size = push3(non_k1, non_k2, non_id, non_size, e_lmt, e_bl, e_id)
            heap_pushes += 1
        lmt_sizes[proc] = sz
        act_size = refresh_active(
            proc, act_size, emt_k1[proc], emt_k2[proc], emt_id[proc]
        )
        if active_valid[proc] == 1:
            heap_pushes += 1

        # UpdateReadyTasks: one fused pass per newly ready successor
        # computes LMT, EP and EMT-on-EP together.  EMT(t, EP) =
        # max(max FT(pred), max arrival from predecessors off EP); ``alt``
        # tracks the best arrival from any processor other than the current
        # best's.
        for j in range(succ_ptr[task], succ_ptr[task + 1]):
            succ = succ_ids[j]
            npreds[succ] -= 1
            if npreds[succ] != 0:
                continue
            b_arr = -1.0
            b_ft = -1.0
            b_id = -1
            b_proc = 0
            alt = 0.0
            max_ft = 0.0
            for i in range(pred_ptr[succ], pred_ptr[succ + 1]):
                pred = pred_ids[i]
                ft_p = out_finish[pred]
                arr = ft_p + pred_delay[i]
                pproc = out_proc[pred]
                if ft_p > max_ft:
                    max_ft = ft_p
                # Deterministic (arrival, FT, id) tie rule for the EP choice.
                if arr > b_arr or (
                    arr == b_arr
                    and (ft_p > b_ft or (ft_p == b_ft and pred > b_id))
                ):
                    if pproc != b_proc and b_arr > alt:
                        alt = b_arr
                    b_arr = arr
                    b_ft = ft_p
                    b_id = pred
                    b_proc = pproc
                elif pproc != b_proc and arr > alt:
                    alt = arr
            emt = max_ft if max_ft > alt else alt
            lmt[succ] = b_arr
            ep_of[succ] = b_proc
            nbl = neg_bl[succ]
            # A task is EP-type iff LMT(t) >= PRT(EP(t)).
            if b_arr >= prt[b_proc]:
                state[succ] = _EP
                if emt_sizes[b_proc] >= emt_cap:
                    new_cap = emt_cap * 2
                    new_k1 = np.empty((num_procs, new_cap), dtype=np.float64)
                    new_k2 = np.empty((num_procs, new_cap), dtype=np.float64)
                    new_id = np.empty((num_procs, new_cap), dtype=np.int64)
                    for q in range(num_procs):
                        for m in range(emt_sizes[q]):
                            new_k1[q, m] = emt_k1[q, m]
                            new_k2[q, m] = emt_k2[q, m]
                            new_id[q, m] = emt_id[q, m]
                    emt_k1 = new_k1
                    emt_k2 = new_k2
                    emt_id = new_id
                    emt_cap = new_cap
                if lmt_sizes[b_proc] >= lmt_cap:
                    new_cap = lmt_cap * 2
                    new_k1 = np.empty((num_procs, new_cap), dtype=np.float64)
                    new_k2 = np.empty((num_procs, new_cap), dtype=np.float64)
                    new_id = np.empty((num_procs, new_cap), dtype=np.int64)
                    for q in range(num_procs):
                        for m in range(lmt_sizes[q]):
                            new_k1[q, m] = lmt_k1[q, m]
                            new_k2[q, m] = lmt_k2[q, m]
                            new_id[q, m] = lmt_id[q, m]
                    lmt_k1 = new_k1
                    lmt_k2 = new_k2
                    lmt_id = new_id
                    lmt_cap = new_cap
                emt_sizes[b_proc] = push3(
                    emt_k1[b_proc], emt_k2[b_proc], emt_id[b_proc],
                    emt_sizes[b_proc], emt, nbl, succ,
                )
                lmt_sizes[b_proc] = push3(
                    lmt_k1[b_proc], lmt_k2[b_proc], lmt_id[b_proc],
                    lmt_sizes[b_proc], b_arr, nbl, succ,
                )
                act_size = refresh_active(
                    b_proc, act_size, emt_k1[b_proc], emt_k2[b_proc], emt_id[b_proc]
                )
                heap_pushes += 2
                if active_valid[b_proc] == 1:
                    heap_pushes += 1
            else:
                state[succ] = _NON_EP
                non_size = push3(
                    non_k1, non_k2, non_id, non_size, b_arr, nbl, succ
                )
                heap_pushes += 1

    out_counters[0] = n
    out_counters[1] = heap_pushes
    out_counters[2] = ep_choices
    out_counters[3] = non_ep_choices
    return status


_compiled: Optional[Callable[..., Any]] = None


def get_compiled_kernel() -> Callable[..., Any]:
    """The ``numba.njit``-compiled :func:`flb_kernel`, compiled on first use.

    Importing numba costs seconds, so it happens here — only when the numba
    backend is actually selected — never at module import.  Raises
    ``ImportError`` when numba is absent; callers gate on
    :func:`repro.core.flb_array.numba_available` first.
    """
    global _compiled
    if _compiled is None:
        from numba import njit

        _compiled = njit(nogil=True)(flb_kernel)
    return _compiled
