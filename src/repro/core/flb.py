"""FLB — Fast Load Balancing (the paper's Section 4).

At every iteration FLB schedules the ready task that can start the earliest,
on the processor where that start time is achieved — the same criterion as
ETF — but finds the task/processor pair by comparing only **two** candidates
(Theorem 3):

(a) the EP-type ready task with the minimum estimated start time on its
    enabling processor, and
(b) the non-EP-type ready task with the minimum last-message-arrival time,
    placed on the processor that becomes idle the earliest.

If both achieve the same start time the non-EP task is preferred, because
its communication is already overlapped with computation.

Definitions (Section 2; see also :mod:`repro.core.lists`):

* ``LMT(t)``: latest message arrival, ``max FT(pred) + comm`` over all
  predecessors, with communication charged at the remote rate.
* ``EP(t)``: the processor the last message arrives from.  When several
  messages tie, the predecessor with the lexicographically largest
  ``(arrival, FT, id)`` wins — the deterministic rule that matches the
  published Table 1 trace (task ``t5`` is enabled by ``p0``).
* ``EMT(t, p)``: like ``LMT`` but messages from predecessors on ``p`` are
  free.  (Computed inclusively over all predecessors; see DESIGN.md §1.)
* ``EST(t, p) = max(EMT(t, p), PRT(p))``.
* ``t`` is EP-type iff ``LMT(t) >= PRT(EP(t))``.

Complexity: priorities ``O(E + V)``; each of the ``V`` iterations performs a
constant number of ``O(log W)`` task-list and ``O(log P)`` processor-list
operations; finding ready tasks scans each edge once.  Total
``O(V (log W + log P) + E)`` — the paper's bound.

The ``observer`` hook exposes every iteration's candidate lists and decision
to the trace recorder (:mod:`repro.core.trace`, reproducing Table 1) and to
the brute-force oracle (:mod:`repro.core.oracle`, testing Theorem 3) without
slowing down the plain scheduling path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.exceptions import SchedulerError
from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.core.lists import FlbLists
from repro.schedule.schedule import Schedule

__all__ = ["flb", "FlbObserver", "FlbIteration"]


@dataclass(frozen=True)
class FlbIteration:
    """Snapshot of one FLB iteration, passed to observers *before* placement.

    ``ep_candidate`` / ``non_ep_candidate`` are the two Theorem-3 candidate
    pairs as ``(task, proc, est)`` (``None`` when the corresponding list is
    empty); ``chosen_*`` describe the decision actually taken.
    """

    iteration: int
    lists: FlbLists
    schedule: Schedule
    ep_candidate: Optional[Tuple[int, int, float]]
    non_ep_candidate: Optional[Tuple[int, int, float]]
    chosen_task: int
    chosen_proc: int
    chosen_start: float
    chosen_is_ep: bool
    lmt: Sequence[float]
    emt_on_ep: Sequence[float]
    prefers_non_ep: bool = True


class FlbObserver(Protocol):
    """Observer protocol for :func:`flb`."""

    def on_iteration(self, snapshot: FlbIteration) -> None:  # pragma: no cover
        ...


def flb(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    observer: Optional[FlbObserver] = None,
    prefer_non_ep_on_tie: bool = True,
) -> Schedule:
    """Schedule ``graph`` with FLB on ``num_procs`` processors.

    Parameters
    ----------
    graph:
        The task graph (frozen, or freezable).
    num_procs:
        Number of processors; alternatively pass a full ``machine``.
    machine:
        Machine model; defaults to the paper's contention-free homogeneous
        clique of ``num_procs`` processors.
    observer:
        Optional per-iteration hook (trace recording, oracle checking).
    prefer_non_ep_on_tie:
        The paper's rule resolves equal-start EP/non-EP candidates to the
        non-EP task (its communication is already overlapped); setting
        ``False`` prefers the EP task instead — an ablation knob, not a
        fidelity option.

    Returns
    -------
    Schedule
        A complete, valid schedule.
    """
    graph.freeze()
    if machine is None:
        if num_procs is None:
            raise SchedulerError("flb requires num_procs or machine")
        machine = MachineModel(num_procs)
    elif num_procs is not None and machine.num_procs != num_procs:
        raise SchedulerError(
            f"num_procs={num_procs} conflicts with machine.num_procs={machine.num_procs}"
        )

    n = graph.num_tasks
    bl = bottom_levels(graph)
    lists = FlbLists(machine.num_procs, bl)
    schedule = Schedule(graph, machine)

    # Per-ready-task cached quantities (valid only while the task is ready).
    lmt: List[float] = [0.0] * n
    ep: List[Optional[int]] = [None] * n
    emt_on_ep: List[float] = [0.0] * n
    unscheduled_preds: List[int] = [graph.in_degree(t) for t in graph.tasks()]

    for t in graph.entry_tasks:
        # Entry tasks have no enabling processor and are non-EP with LMT 0.
        lists.add_ready_task(t, 0.0, None, 0.0)

    for iteration in range(n):
        cand_ep = lists.best_ep_candidate()
        cand_non = lists.best_non_ep_candidate()
        if cand_non is None and cand_ep is None:
            raise SchedulerError("no ready task but schedule incomplete (bug)")
        # Theorem 3: compare the two candidates; per the paper, ties favour
        # the non-EP task (ablatable via prefer_non_ep_on_tie).
        if cand_non is None:
            take_ep = True
        elif cand_ep is None:
            take_ep = False
        elif prefer_non_ep_on_tie:
            take_ep = cand_ep[2] < cand_non[2]
        else:
            take_ep = cand_ep[2] <= cand_non[2]
        if take_ep:
            task, proc, est = cand_ep
            is_ep = True
        else:
            task, proc, est = cand_non
            is_ep = False

        if observer is not None:
            observer.on_iteration(
                FlbIteration(
                    iteration=iteration,
                    lists=lists,
                    schedule=schedule,
                    ep_candidate=cand_ep,
                    non_ep_candidate=cand_non,
                    chosen_task=task,
                    chosen_proc=proc,
                    chosen_start=est,
                    chosen_is_ep=is_ep,
                    lmt=lmt,
                    emt_on_ep=emt_on_ep,
                    prefers_non_ep=prefer_non_ep_on_tie,
                )
            )

        # ScheduleTask.
        if is_ep:
            lists.remove_ep_task(proc, task)
        else:
            lists.remove_non_ep_task(task)
        placed = schedule.place(task, proc, est)

        # UpdateTaskLists + UpdateProcLists.
        lists.set_prt(proc, placed.finish)

        # UpdateReadyTasks.
        for succ in graph.succs(task):
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] > 0:
                continue
            # LMT and enabling processor: predecessor whose message is the
            # last to arrive, with deterministic (arrival, FT, id) ties.
            best_arrival = 0.0
            best_key: Tuple[float, float, int] = (-1.0, -1.0, -1)
            best_proc = 0
            for pred in graph.preds(succ):
                ft = schedule.finish_of(pred)
                arrival = ft + machine.remote_delay(graph.comm(pred, succ))
                key = (arrival, ft, pred)
                if key > best_key:
                    best_key = key
                    best_arrival = arrival
                    best_proc = schedule.proc_of(pred)
            lmt[succ] = best_arrival
            ep[succ] = best_proc
            # EMT on the enabling processor (same-processor messages free).
            emt = 0.0
            for pred in graph.preds(succ):
                arrival = schedule.finish_of(pred) + machine.comm_delay(
                    schedule.proc_of(pred), best_proc, graph.comm(pred, succ)
                )
                if arrival > emt:
                    emt = arrival
            emt_on_ep[succ] = emt
            lists.add_ready_task(succ, best_arrival, best_proc, emt)

    return schedule
