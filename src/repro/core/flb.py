"""FLB — Fast Load Balancing (the paper's Section 4).

At every iteration FLB schedules the ready task that can start the earliest,
on the processor where that start time is achieved — the same criterion as
ETF — but finds the task/processor pair by comparing only **two** candidates
(Theorem 3):

(a) the EP-type ready task with the minimum estimated start time on its
    enabling processor, and
(b) the non-EP-type ready task with the minimum last-message-arrival time,
    placed on the processor that becomes idle the earliest.

If both achieve the same start time the non-EP task is preferred, because
its communication is already overlapped with computation.

Definitions (Section 2; see also :mod:`repro.core.lists`):

* ``LMT(t)``: latest message arrival, ``max FT(pred) + comm`` over all
  predecessors, with communication charged at the remote rate.
* ``EP(t)``: the processor the last message arrives from.  When several
  messages tie, the predecessor with the lexicographically largest
  ``(arrival, FT, id)`` wins — the deterministic rule that matches the
  published Table 1 trace (task ``t5`` is enabled by ``p0``).
* ``EMT(t, p)``: like ``LMT`` but messages from predecessors on ``p`` are
  free.  (Computed inclusively over all predecessors; see DESIGN.md §1.)
* ``EST(t, p) = max(EMT(t, p), PRT(p))``.
* ``t`` is EP-type iff ``LMT(t) >= PRT(EP(t))``.

Complexity: priorities ``O(E + V)``; each of the ``V`` iterations performs a
constant number of ``O(log W)`` task-list and ``O(log P)`` processor-list
operations; finding ready tasks scans each edge once.  Total
``O(V (log W + log P) + E)`` — the paper's bound.

Two implementations share that algorithm (see ``docs/performance.md``):

* :func:`_flb_fast` — the default.  Iterates the graph's CSR adjacency
  (:meth:`repro.graph.TaskGraph.csr`), fuses the two predecessor passes
  (LMT/EP and EMT-on-EP) into one, keeps task finish/processor data in
  local arrays, and implements the five priority lists with C-speed
  :mod:`heapq` heaps using lazy invalidation.
* :func:`_flb_observed` — the original structured loop over
  :class:`~repro.core.lists.FlbLists`, taken whenever an ``observer`` is
  supplied.  The ``observer`` hook exposes every iteration's candidate lists
  and decision to the trace recorder (:mod:`repro.core.trace`, reproducing
  Table 1) and to the brute-force oracle (:mod:`repro.core.oracle`, testing
  Theorem 3).

Both paths produce bit-identical schedules on every input — enforced by the
equivalence suite in ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.exceptions import SchedulerError
from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.core.lists import FlbLists
from repro.schedule.schedule import Schedule

__all__ = ["flb", "FlbObserver", "FlbIteration"]


@dataclass(frozen=True)
class FlbIteration:
    """Snapshot of one FLB iteration, passed to observers *before* placement.

    ``ep_candidate`` / ``non_ep_candidate`` are the two Theorem-3 candidate
    pairs as ``(task, proc, est)`` (``None`` when the corresponding list is
    empty); ``chosen_*`` describe the decision actually taken.
    """

    iteration: int
    lists: FlbLists
    schedule: Schedule
    ep_candidate: Optional[Tuple[int, int, float]]
    non_ep_candidate: Optional[Tuple[int, int, float]]
    chosen_task: int
    chosen_proc: int
    chosen_start: float
    chosen_is_ep: bool
    lmt: Sequence[float]
    emt_on_ep: Sequence[float]
    prefers_non_ep: bool = True


class FlbObserver(Protocol):
    """Observer protocol for :func:`flb`."""

    def on_iteration(self, snapshot: FlbIteration) -> None:  # pragma: no cover
        ...


def flb(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    observer: Optional[FlbObserver] = None,
    prefer_non_ep_on_tie: bool = True,
) -> Schedule:
    """Schedule ``graph`` with FLB on ``num_procs`` processors.

    Parameters
    ----------
    graph:
        The task graph (frozen, or freezable).
    num_procs:
        Number of processors; alternatively pass a full ``machine``.
    machine:
        Machine model; defaults to the paper's contention-free homogeneous
        clique of ``num_procs`` processors.
    observer:
        Optional per-iteration hook (trace recording, oracle checking).
        Supplying one selects the slower observed path, whose per-iteration
        :class:`FlbIteration` snapshots the fast path skips entirely.
    prefer_non_ep_on_tie:
        The paper's rule resolves equal-start EP/non-EP candidates to the
        non-EP task (its communication is already overlapped); setting
        ``False`` prefers the EP task instead — an ablation knob, not a
        fidelity option.

    Returns
    -------
    Schedule
        A complete, valid schedule.
    """
    graph.freeze()
    if machine is None:
        if num_procs is None:
            raise SchedulerError("flb requires num_procs or machine")
        machine = MachineModel(num_procs)
    elif num_procs is not None and machine.num_procs != num_procs:
        raise SchedulerError(
            f"num_procs={num_procs} conflicts with machine.num_procs={machine.num_procs}"
        )
    if observer is None:
        return _flb_fast(graph, machine, prefer_non_ep_on_tie)
    return _flb_observed(graph, machine, observer, prefer_non_ep_on_tie)


# Ready-task states for the fast path's lazily invalidated heap entries.
_NOT_READY, _EP, _NON_EP, _DONE = 0, 1, 2, 3


def _flb_fast(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
) -> Schedule:
    """The CSR fast path (no observer).  Bit-identical to the observed path.

    The five priority structures are plain :mod:`heapq` heaps with *lazy
    invalidation*: scheduling or demoting a task flips its ``state`` and
    leaves any heap entries behind as tombstones, which peeks pop off the
    top.  Every task enters each heap at most once (EP -> non-EP demotion is
    one-way), so the amortized bound per iteration stays ``O(log W)`` /
    ``O(log P)`` and the paper's total ``O(V (log W + log P) + E)`` holds.
    """
    n = graph.num_tasks
    num_procs = machine.num_procs
    bl = bottom_levels(graph)
    schedule = Schedule(graph, machine)
    csr = graph.csr().lists
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    succ_ptr, succ_ids = csr.succ_ptr, csr.succ_ids
    lat, scale = machine.latency, machine.comm_scale

    state = [_NOT_READY] * n
    finish = [0.0] * n  # FT of scheduled tasks (schedule.finish_of, hoisted)
    on_proc = [0] * n  # PROC of scheduled tasks (schedule.proc_of, hoisted)
    pp = csr.pred_ptr
    npreds = [pp[t + 1] - pp[t] for t in range(n)]

    prt = [0.0] * num_procs
    # Per-processor EP lists keyed (EMT, -BL, id) / (LMT, -BL, id); global
    # non-EP list keyed (LMT, -BL, id) — the same keys FlbLists uses.
    emt_heaps: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    lmt_heaps: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    non_ep_heap: List[Tuple[float, float, int]] = []
    # Processor lists: active procs by (min EST, id), all procs by (PRT, id).
    # An active entry is current iff its EST equals active_est[p]; an
    # all-procs entry iff its key equals prt[p] (PRT strictly increases).
    active_heap: List[Tuple[float, int]] = []
    active_est: List[Optional[float]] = [None] * num_procs
    all_heap = [(0.0, p) for p in range(num_procs)]  # sorted => a valid heap

    def refresh_active(p: int) -> None:
        # Re-derive p's entry in the active list from the head of its EMT
        # list and its PRT (the paper's UpdateProcLists).
        heap = emt_heaps[p]
        while heap and state[heap[0][2]] != _EP:
            heappop(heap)
        if not heap:
            active_est[p] = None
        else:
            est = heap[0][0]
            rt = prt[p]
            if rt > est:
                est = rt
            active_est[p] = est
            heappush(active_heap, (est, p))

    for t in graph.entry_tasks:
        # Entry tasks have no enabling processor and are non-EP with LMT 0.
        state[t] = _NON_EP
        heappush(non_ep_heap, (0.0, -bl[t], t))

    for _ in range(n):
        # Candidate (a): EP task with minimum EST on its enabling processor.
        while active_heap:
            est, p = active_heap[0]
            if active_est[p] == est:
                break
            heappop(active_heap)
        # Candidate (b): non-EP task with minimum LMT, on the earliest-idle
        # processor.
        while non_ep_heap and state[non_ep_heap[0][2]] != _NON_EP:
            heappop(non_ep_heap)
        while True:
            idle_prt, idle_proc = all_heap[0]
            if prt[idle_proc] == idle_prt:
                break
            heappop(all_heap)

        if not active_heap and not non_ep_heap:
            raise SchedulerError("no ready task but schedule incomplete (bug)")
        # Theorem 3: compare the two candidates; per the paper, ties favour
        # the non-EP task (ablatable via prefer_non_ep_on_tie).
        if not non_ep_heap:
            take_ep = True
        elif not active_heap:
            take_ep = False
        else:
            ep_est = active_heap[0][0]
            non_lmt = non_ep_heap[0][0]
            non_est = non_lmt if non_lmt > idle_prt else idle_prt
            take_ep = ep_est < non_est if prefer_non_ep_on_tie else ep_est <= non_est
        if take_ep:
            proc = active_heap[0][1]
            est = active_heap[0][0]
            ep_heap = emt_heaps[proc]
            while state[ep_heap[0][2]] != _EP:  # pragma: no cover - defensive
                heappop(ep_heap)
            task = ep_heap[0][2]
        else:
            task = non_ep_heap[0][2]
            non_lmt = non_ep_heap[0][0]
            proc = idle_proc
            est = non_lmt if non_lmt > idle_prt else idle_prt

        # ScheduleTask: the chosen task's heap entries become tombstones.
        state[task] = _DONE
        ft = schedule._append(task, proc, est)
        finish[task] = ft
        on_proc[task] = proc

        # UpdateTaskLists + UpdateProcLists: PRT(proc) rises to ft; EP tasks
        # of proc whose LMT fell below it demote to non-EP.
        prt[proc] = ft
        heappush(all_heap, (ft, proc))
        lheap = lmt_heaps[proc]
        while lheap:
            entry = lheap[0]
            if state[entry[2]] != _EP:
                heappop(lheap)
                continue
            if entry[0] >= ft:
                break
            heappop(lheap)
            state[entry[2]] = _NON_EP
            heappush(non_ep_heap, entry)  # same (LMT, -BL, id) key
        refresh_active(proc)

        # UpdateReadyTasks: one fused pass per newly ready successor
        # computes LMT, EP and EMT-on-EP together.  EMT(t, EP) =
        # max(max FT(pred), max arrival from predecessors off EP), because
        # an off-EP predecessor's arrival dominates its own FT; ``alt``
        # tracks the best arrival from any processor other than the current
        # best's (entries skipped while sharing the then-best processor are
        # dominated by that best, which is folded in if the leader changes).
        for j in range(succ_ptr[task], succ_ptr[task + 1]):
            succ = succ_ids[j]
            npreds[succ] -= 1
            if npreds[succ]:
                continue
            b_arr = -1.0
            b_ft = -1.0
            b_id = -1
            b_proc = 0
            alt = 0.0
            max_ft = 0.0
            for i in range(pred_ptr[succ], pred_ptr[succ + 1]):
                pred = pred_ids[i]
                ft_p = finish[pred]
                # Parenthesised like MachineModel.remote_delay so the float
                # rounding matches the observed/reference paths exactly.
                arr = ft_p + (lat + scale * pred_comm[i])
                pp = on_proc[pred]
                if ft_p > max_ft:
                    max_ft = ft_p
                # Deterministic (arrival, FT, id) tie rule for the EP choice.
                if arr > b_arr or (
                    arr == b_arr and (ft_p > b_ft or (ft_p == b_ft and pred > b_id))
                ):
                    if pp != b_proc and b_arr > alt:
                        alt = b_arr
                    b_arr = arr
                    b_ft = ft_p
                    b_id = pred
                    b_proc = pp
                elif pp != b_proc and arr > alt:
                    alt = arr
            emt = max_ft if max_ft > alt else alt
            # A task is EP-type iff LMT(t) >= PRT(EP(t)).
            nbl = -bl[succ]
            if b_arr >= prt[b_proc]:
                state[succ] = _EP
                heappush(emt_heaps[b_proc], (emt, nbl, succ))
                heappush(lmt_heaps[b_proc], (b_arr, nbl, succ))
                refresh_active(b_proc)
            else:
                state[succ] = _NON_EP
                heappush(non_ep_heap, (b_arr, nbl, succ))

    return schedule


def _flb_observed(
    graph: TaskGraph,
    machine: MachineModel,
    observer: Optional[FlbObserver],
    prefer_non_ep_on_tie: bool,
) -> Schedule:
    """The structured :class:`FlbLists` path with per-iteration snapshots.

    Also runnable with ``observer=None``: the perf gate uses it that way as
    the seed-implementation baseline, and the equivalence tests pin its
    output against :func:`_flb_fast`.
    """
    n = graph.num_tasks
    bl = bottom_levels(graph)
    lists = FlbLists(machine.num_procs, bl)
    schedule = Schedule(graph, machine)

    # Per-ready-task cached quantities (valid only while the task is ready).
    lmt: List[float] = [0.0] * n
    ep: List[Optional[int]] = [None] * n
    emt_on_ep: List[float] = [0.0] * n
    unscheduled_preds: List[int] = [graph.in_degree(t) for t in graph.tasks()]

    for t in graph.entry_tasks:
        # Entry tasks have no enabling processor and are non-EP with LMT 0.
        lists.add_ready_task(t, 0.0, None, 0.0)

    for iteration in range(n):
        cand_ep = lists.best_ep_candidate()
        cand_non = lists.best_non_ep_candidate()
        if cand_non is None and cand_ep is None:
            raise SchedulerError("no ready task but schedule incomplete (bug)")
        # Theorem 3: compare the two candidates; per the paper, ties favour
        # the non-EP task (ablatable via prefer_non_ep_on_tie).
        if cand_non is None:
            take_ep = True
        elif cand_ep is None:
            take_ep = False
        elif prefer_non_ep_on_tie:
            take_ep = cand_ep[2] < cand_non[2]
        else:
            take_ep = cand_ep[2] <= cand_non[2]
        if take_ep:
            assert cand_ep is not None
            task, proc, est = cand_ep
            is_ep = True
        else:
            assert cand_non is not None
            task, proc, est = cand_non
            is_ep = False

        if observer is not None:
            observer.on_iteration(
                FlbIteration(
                    iteration=iteration,
                    lists=lists,
                    schedule=schedule,
                    ep_candidate=cand_ep,
                    non_ep_candidate=cand_non,
                    chosen_task=task,
                    chosen_proc=proc,
                    chosen_start=est,
                    chosen_is_ep=is_ep,
                    lmt=lmt,
                    emt_on_ep=emt_on_ep,
                    prefers_non_ep=prefer_non_ep_on_tie,
                )
            )

        # ScheduleTask.
        if is_ep:
            lists.remove_ep_task(proc, task)
        else:
            lists.remove_non_ep_task(task)
        placed = schedule.place(task, proc, est)

        # UpdateTaskLists + UpdateProcLists.
        lists.set_prt(proc, placed.finish)

        # UpdateReadyTasks.
        for succ in graph.succs(task):
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] > 0:
                continue
            # LMT and enabling processor: predecessor whose message is the
            # last to arrive, with deterministic (arrival, FT, id) ties.
            best_arrival = 0.0
            best_key: Tuple[float, float, int] = (-1.0, -1.0, -1)
            best_proc = 0
            for pred in graph.preds(succ):
                ft = schedule.finish_of(pred)
                arrival = ft + machine.remote_delay(graph.comm(pred, succ))
                key = (arrival, ft, pred)
                if key > best_key:
                    best_key = key
                    best_arrival = arrival
                    best_proc = schedule.proc_of(pred)
            lmt[succ] = best_arrival
            ep[succ] = best_proc
            # EMT on the enabling processor (same-processor messages free).
            emt = 0.0
            for pred in graph.preds(succ):
                arrival = schedule.finish_of(pred) + machine.comm_delay(
                    schedule.proc_of(pred), best_proc, graph.comm(pred, succ)
                )
                if arrival > emt:
                    emt = arrival
            emt_on_ep[succ] = emt
            lists.add_ready_task(succ, best_arrival, best_proc, emt)

    return schedule
