"""Array-native FLB: NumPy state vectors, optional numba backend.

This module is the performance plane on top of :mod:`repro.core.flb`
(ROADMAP item 2): the same algorithm — Theorem-3 two-candidate selection
with five lazily-invalidated priority lists — over flat state vectors
allocated once per run:

======================  =========  =========================================
vector                  dtype      meaning
======================  =========  =========================================
``order``               int64[V]   placement order (iteration -> task)
``proc``                int64[V]   ``PROC(t)`` — processor assignment
``start`` / ``finish``  f64[V]     ``ST(t)`` / ``FT(t)``
``prt``                 f64[P]     per-processor ready times
``npreds``              int64[V]   unscheduled-predecessor (indegree) counts
``state``               int8[V]    ready flags (not-ready/EP/non-EP/done)
``lmt`` / ``ep``        f64/i64    last message arrival + enabling proc
``neg_bl``              f64[V]     ``-BL(t)`` heap keys (vectorized CSR sweep)
``pred_delay``          f64[E]     ``latency + comm_scale * comm`` per edge
======================  =========  =========================================

Two backends share that layout (selected via
``SchedulingOptions(kernel=...)`` / ``REPRO_KERNEL``; see
:func:`resolve_kernel`):

* ``"numba"`` — :mod:`repro.core._flb_kernel` compiled with ``njit``; the
  whole inner loop runs without the interpreter.  numba is optional: when
  absent, explicit requests fall back to ``"array"`` with a single
  warning, and ``"auto"`` falls back silently.
* ``"array"`` — an interpreted driver.  Initialization is fully
  vectorized (bottom levels, edge delays, indegrees), placement is batched
  into the state vectors and the schedule is materialized in one shot at
  the end (no per-placement method calls).  Inside the scalar loop the
  driver iterates *list mirrors* of the state vectors: CPython indexes a
  Python list ~3x faster than an ndarray (every ``arr[i]`` boxes a fresh
  scalar object), so mirroring costs ``O(V + E)`` once and saves that
  factor on every access.  The arrays remain the canonical layout — the
  mirrors are write-through staging for the interpreter only.

Both backends are bit-identical to the reference kernels: same float
expressions, same parenthesization, same heap key tuples, same
deterministic tie rules (enforced by ``tests/test_fastpath_equivalence.py``
over the full suite plus a random-DAG fuzz sweep, with every schedule
re-certified by :mod:`repro.verify`).
"""

from __future__ import annotations

import os
import warnings
from heapq import heapify, heappop, heappush
from importlib import util as _importlib_util
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core._flb_kernel import KERNEL_OK, flb_kernel, get_compiled_kernel
from repro.exceptions import SchedulerError
from repro.graph.properties import _concat_slices, bottom_levels_array
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.schedule.schedule import Schedule

__all__ = [
    "flb_array",
    "resolve_kernel",
    "reset_kernel_state",
    "numba_available",
    "KernelSelectionError",
    "KERNEL_CHOICES",
]

#: Valid values for ``SchedulingOptions.kernel`` / ``REPRO_KERNEL``.
KERNEL_CHOICES = ("auto", "object", "array", "numba")


class KernelSelectionError(SchedulerError):
    """An invalid ``kernel=`` / ``REPRO_KERNEL`` value was requested."""


#: Tri-state numba probe: None = not yet probed (tests monkeypatch this).
_numba_probe: Optional[bool] = None
_numba_fallback_warned = False


def numba_available() -> bool:
    """Whether the optional numba backend can be used (probe is cached).

    Uses ``importlib.util.find_spec`` — a metadata lookup, not the
    multi-second ``import numba`` (that cost is paid lazily inside
    :func:`repro.core._flb_kernel.get_compiled_kernel`, only when the numba
    backend actually runs).
    """
    global _numba_probe
    if _numba_probe is None:
        try:
            _numba_probe = _importlib_util.find_spec("numba") is not None
        except (ImportError, ValueError):  # pragma: no cover - broken meta
            _numba_probe = False
    return _numba_probe


def resolve_kernel(requested: Optional[str] = None) -> str:
    """Resolve a kernel request to a concrete backend name.

    Precedence: the ``REPRO_KERNEL`` environment variable beats the
    ``requested`` argument (so a deployment can force a backend without
    code changes); ``"auto"`` picks the fastest available backend in the
    order numba > array > object (``"array"`` needs only NumPy, a hard
    dependency, so resolution always terminates there when numba is
    absent).  An explicit ``"numba"`` request without numba installed
    falls back to ``"array"`` with a single :class:`RuntimeWarning` per
    process; ``"auto"`` falls back silently.  Unknown values raise
    :class:`KernelSelectionError`.
    """
    global _numba_fallback_warned
    env = os.environ.get("REPRO_KERNEL", "").strip()
    if env:
        value = env.lower()
        source = f"REPRO_KERNEL={env!r}"
    else:
        value = requested if requested is not None else "auto"
        source = f"kernel={requested!r}"
    if value not in KERNEL_CHOICES:
        raise KernelSelectionError(
            f"unknown scheduling kernel {source}; valid values: "
            f"{', '.join(KERNEL_CHOICES)}"
        )
    if value == "auto":
        return "numba" if numba_available() else "array"
    if value == "numba" and not numba_available():
        if not _numba_fallback_warned:
            warnings.warn(
                f"{source} requested but numba is not installed; "
                f"falling back to the interpreted array kernel",
                RuntimeWarning,
                stacklevel=2,
            )
            _numba_fallback_warned = True
        return "array"
    return value


def reset_kernel_state() -> None:
    """Forget the cached numba probe and the warn-once fallback latch.

    Both are process-global module state (deliberately: the probe is a
    metadata lookup worth caching, and the fallback warning would otherwise
    spam once per request on a numba-less host).  Global state leaks across
    embedder instances and across test cases, though: after one explicit
    ``kernel="numba"`` request has warned, every later
    :class:`~repro.batch.BatchScheduler` in the same process silently gets
    the ``array`` fallback with no hint why.  Long-lived embedders that
    want the warning per scheduler — and test fixtures that need isolation
    (``tests/test_kernel_selection.py`` resets around every test) — call
    this to restore the pristine state.
    """
    global _numba_probe, _numba_fallback_warned
    _numba_probe = None
    _numba_fallback_warned = False


#: Backwards-compatible alias (the pre-public spelling used by tests).
_reset_kernel_state = reset_kernel_state


def stock_flb_registered() -> bool:
    """Whether the scheduler registry still maps ``"flb"`` to the stock
    implementation.

    Entry points only divert FLB requests to the array kernels when this
    holds: a test or embedder that monkeypatches ``SCHEDULERS["flb"]``
    must get its replacement, not a bit-identical bypass of it.
    """
    from repro.core.flb import flb
    from repro.schedulers import SCHEDULERS

    return SCHEDULERS.get("flb") is flb


def flb_array(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    prefer_non_ep_on_tie: bool = True,
    backend: str = "auto",
    metrics: Optional[MetricsRegistry] = None,
    base: Optional[Schedule] = None,
    warm_stats: Optional[Dict[str, object]] = None,
) -> Schedule:
    """Schedule ``graph`` with the array-native FLB kernel.

    ``backend`` is a *resolved* kernel name (``"auto"`` is re-resolved
    here; ``"object"`` delegates to :func:`repro.core.flb.flb`).  When
    ``metrics`` is given, the kernel counters
    (``flb_kernel_iterations_total``, ``flb_kernel_heap_ops_total``,
    ``flb_kernel_choices_total{kind}``) and the backend that actually ran
    (``flb_kernel_backend_total{backend}``) are recorded — the same names
    :class:`repro.obs.KernelMetricsObserver` emits for the observed path,
    so ``repro-sched report`` aggregates both.

    ``base`` requests a warm start: the clean prefix of the base schedule
    (same machine, same tie rule, complete) is replayed verbatim and the
    kernel runs only over the dirty suffix — bit-identical to a cold run
    by construction (see :mod:`repro.incremental`), with a silent cold
    fallback otherwise.  A warm run executes the interpreted array driver
    regardless of ``backend`` (the suffix is too small to amortize a
    compiled launch), and is reported as ``backend="array"``.  When
    ``warm_stats`` is given it is filled with the reuse numbers (``reused``
    / ``replayed`` / ``total`` / ``dirty`` / ``fraction``) or the
    ``fallback`` reason; ``metrics`` gets the same under ``incr_*``.
    """
    graph.freeze()
    if machine is None:
        if num_procs is None:
            raise SchedulerError("flb_array requires num_procs or machine")
        machine = MachineModel(num_procs)
    elif num_procs is not None and machine.num_procs != num_procs:
        raise SchedulerError(
            f"num_procs={num_procs} conflicts with machine.num_procs="
            f"{machine.num_procs}"
        )
    if backend == "auto":
        backend = "numba" if numba_available() else "array"
    if backend == "object":
        from repro.core.flb import flb

        return flb(graph, machine=machine,
                   prefer_non_ep_on_tie=prefer_non_ep_on_tie)
    if backend not in ("array", "numba"):
        raise KernelSelectionError(
            f"unknown flb_array backend {backend!r}; valid values: "
            f"array, numba"
        )
    if backend == "numba" and not numba_available():
        # Silent here: resolve_kernel already warned for explicit requests.
        if metrics is not None:
            metrics.counter("flb_kernel_fallback_total",
                            reason="numba-missing").inc()
        backend = "array"

    schedule: Optional[Schedule] = None
    counters: Tuple[int, int, int, int] = (0, 0, 0, 0)
    if base is not None:
        if metrics is not None:
            metrics.counter("incr_attempts_total").inc()
        attempt = _try_warm_start(graph, machine, prefer_non_ep_on_tie, base)
        if isinstance(attempt, str):
            if metrics is not None:
                metrics.counter("incr_fallback_total", reason=attempt).inc()
            if warm_stats is not None:
                warm_stats["fallback"] = attempt
        else:
            schedule, counters, info = attempt
            backend = "array"  # the warm suffix ran the interpreted driver
            if warm_stats is not None:
                warm_stats.update(info)
            if metrics is not None:
                metrics.counter("incr_warm_total").inc()
                metrics.counter("incr_reused_tasks_total").inc(
                    float(info["reused"])  # type: ignore[arg-type]
                )
                metrics.counter("incr_replayed_tasks_total").inc(
                    float(info["replayed"])  # type: ignore[arg-type]
                )
                metrics.counter("incr_dirty_tasks_total").inc(
                    float(info["dirty"])  # type: ignore[arg-type]
                )
                metrics.gauge("incr_reuse_fraction").set(
                    float(info["fraction"])  # type: ignore[arg-type]
                )

    if schedule is None:
        if backend == "numba":
            schedule, counters = _flb_numba(graph, machine, prefer_non_ep_on_tie)
        else:
            schedule, counters = _flb_array_impl(
                graph, machine, prefer_non_ep_on_tie
            )
    schedule._flb_prefer = prefer_non_ep_on_tie

    if metrics is not None:
        iterations, heap_ops, ep_choices, non_ep_choices = counters
        metrics.counter("flb_kernel_iterations_total").inc(float(iterations))
        metrics.counter("flb_kernel_heap_ops_total").inc(float(heap_ops))
        metrics.counter("flb_kernel_choices_total", kind="ep").inc(
            float(ep_choices)
        )
        metrics.counter("flb_kernel_choices_total", kind="non-ep").inc(
            float(non_ep_choices)
        )
        metrics.counter("flb_kernel_backend_total", backend=backend).inc()
    return schedule


# Ready-task states, identical to repro.core.flb's fast path.
_NOT_READY, _EP, _NON_EP, _DONE = 0, 1, 2, 3


def _kernel_inputs(
    graph: TaskGraph, machine: MachineModel
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, bool, np.ndarray]:
    """The vectorized per-run inputs both backends share.

    ``pred_delay`` keeps the reference parenthesization
    ``ft + (lat + scale * comm)``: the inner sum is computed here once per
    edge, with the same two float ops the scalar kernels apply, so hoisting
    it cannot change a single bit of any arrival time.  Both vectors are
    memoized on the frozen graph (``pred_delay`` keyed by the machine's
    latency/scale), so serving many schedules of one graph — the batch
    plane's common shape — pays the ``O(V + E)`` setup once.
    """
    neg_bl = graph.memo_get("neg_bl_arr")
    if neg_bl is None:
        neg_bl = -bottom_levels_array(graph)
        graph.memo_set("neg_bl_arr", neg_bl)
    delay_key = ("pred_delay", machine.latency, machine.comm_scale)
    pred_delay = graph.memo_get(delay_key)
    if pred_delay is None:
        pred_delay = machine.latency + machine.comm_scale * graph.csr().pred_comm
        graph.memo_set(delay_key, pred_delay)
    comp = graph.comps_array()
    homogeneous = machine.speeds is None
    speeds = (
        np.ones(machine.num_procs, dtype=np.float64)
        if homogeneous
        else np.asarray(machine.speeds, dtype=np.float64)
    )
    return neg_bl, pred_delay, comp, homogeneous, speeds


def _flb_numba(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
) -> Tuple[Schedule, Tuple[int, int, int, int]]:
    """Run the compiled kernel over the CSR arrays."""
    n = graph.num_tasks
    num_procs = machine.num_procs
    csr = graph.csr()
    neg_bl, pred_delay, comp, homogeneous, speeds = _kernel_inputs(graph, machine)
    out_order = np.empty(n, dtype=np.int64)
    out_proc = np.zeros(n, dtype=np.int64)
    out_start = np.zeros(n, dtype=np.float64)
    out_finish = np.zeros(n, dtype=np.float64)
    out_prt = np.zeros(num_procs, dtype=np.float64)
    out_counters = np.zeros(4, dtype=np.int64)
    kernel = get_compiled_kernel()
    status = kernel(
        n, num_procs,
        csr.pred_ptr, csr.pred_ids, csr.succ_ptr, csr.succ_ids,
        pred_delay, comp, speeds, homogeneous, neg_bl,
        prefer_non_ep_on_tie,
        out_order, out_proc, out_start, out_finish, out_prt, out_counters,
    )
    if status != KERNEL_OK:
        raise SchedulerError("no ready task but schedule incomplete (bug)")
    schedule = Schedule._from_arrays(
        graph, machine,
        out_order.tolist(), out_proc.tolist(),
        out_start.tolist(), out_finish.tolist(), out_prt.tolist(),
    )
    c = out_counters.tolist()
    return schedule, (c[0], c[1], c[2], c[3])


def _flb_array_run_interpreted(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
) -> Tuple[Schedule, Tuple[int, int, int, int]]:
    """Run :func:`repro.core._flb_kernel.flb_kernel` under the interpreter.

    Test-only entry (the equivalence suite uses it to pin the compiled
    code path's algorithm without numba); far slower than
    :func:`_flb_array_impl`, which is what ``backend="array"`` serves.
    """
    n = graph.num_tasks
    num_procs = machine.num_procs
    csr = graph.csr()
    neg_bl, pred_delay, comp, homogeneous, speeds = _kernel_inputs(graph, machine)
    out_order = np.empty(n, dtype=np.int64)
    out_proc = np.zeros(n, dtype=np.int64)
    out_start = np.zeros(n, dtype=np.float64)
    out_finish = np.zeros(n, dtype=np.float64)
    out_prt = np.zeros(num_procs, dtype=np.float64)
    out_counters = np.zeros(4, dtype=np.int64)
    status = flb_kernel(
        n, num_procs,
        csr.pred_ptr, csr.pred_ids, csr.succ_ptr, csr.succ_ids,
        pred_delay, comp, speeds, homogeneous, neg_bl,
        prefer_non_ep_on_tie,
        out_order, out_proc, out_start, out_finish, out_prt, out_counters,
    )
    if status != KERNEL_OK:
        raise SchedulerError("no ready task but schedule incomplete (bug)")
    schedule = Schedule._from_arrays(
        graph, machine,
        out_order.tolist(), out_proc.tolist(),
        out_start.tolist(), out_finish.tolist(), out_prt.tolist(),
    )
    c = out_counters.tolist()
    return schedule, (c[0], c[1], c[2], c[3])


def _interp_inputs(
    graph: TaskGraph, machine: MachineModel
) -> Tuple[List[float], List[float], bool, List[float]]:
    """Interpreter list mirrors of the state-vector inputs, memoized next to
    the vectors themselves (graph-pure, machine-keyed where needed)."""
    neg_bl_arr, pred_delay_arr, _comp, homogeneous, speeds_arr = _kernel_inputs(
        graph, machine
    )
    delay_key = ("pred_delay_list", machine.latency, machine.comm_scale)
    pred_delay: List[float] = graph.memo_get(delay_key)
    if pred_delay is None:
        pred_delay = pred_delay_arr.tolist()
        graph.memo_set(delay_key, pred_delay)
    neg_bl: List[float] = graph.memo_get("neg_bl_list")
    if neg_bl is None:
        neg_bl = neg_bl_arr.tolist()
        graph.memo_set("neg_bl_list", neg_bl)
    return pred_delay, neg_bl, homogeneous, speeds_arr.tolist()


def _flb_array_impl(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
) -> Tuple[Schedule, Tuple[int, int, int, int]]:
    """The interpreted array backend (see the module docstring).

    Mirrors :func:`repro.core.flb._flb_fast` decision for decision; the
    differences are mechanical: vectorized initialization, the precomputed
    ``pred_delay`` vector, inlined active-list refreshes, and batched
    placement into the state vectors with one
    :meth:`Schedule._from_arrays` call at the end.  The main loop lives in
    :func:`_flb_array_loop` so the warm-start path can drive it from a
    seeded mid-run state.
    """
    n = graph.num_tasks
    num_procs = machine.num_procs
    csr = graph.csr()
    _pred_delay, neg_bl, _homog, _speeds = _interp_inputs(graph, machine)

    state = [_NOT_READY] * n
    finish = [0.0] * n
    on_proc = [0] * n
    start = [0.0] * n
    order: List[int] = []
    npreds: List[int] = np.diff(csr.pred_ptr).tolist()
    prt = [0.0] * num_procs

    emt_heaps: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    lmt_heaps: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    non_ep_heap: List[Tuple[float, float, int]] = []
    active_heap: List[Tuple[float, int]] = []
    active_est: List[Optional[float]] = [None] * num_procs
    all_heap = [(0.0, p) for p in range(num_procs)]  # sorted => a valid heap

    heap_pushes = 0
    for t in graph.entry_tasks:
        # Entry tasks have no enabling processor and are non-EP with LMT 0.
        state[t] = _NON_EP
        heappush(non_ep_heap, (0.0, neg_bl[t], t))
        heap_pushes += 1

    return _flb_array_loop(
        graph, machine, prefer_non_ep_on_tie,
        state, finish, on_proc, start, order, npreds, prt,
        emt_heaps, lmt_heaps, non_ep_heap, active_heap, active_est, all_heap,
        n, heap_pushes,
    )


def _flb_array_loop(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
    state: List[int],
    finish: List[float],
    on_proc: List[int],
    start: List[float],
    order: List[int],
    npreds: List[int],
    prt: List[float],
    emt_heaps: List[List[Tuple[float, float, int]]],
    lmt_heaps: List[List[Tuple[float, float, int]]],
    non_ep_heap: List[Tuple[float, float, int]],
    active_heap: List[Tuple[float, int]],
    active_est: List[Optional[float]],
    all_heap: List[Tuple[float, int]],
    iterations: int,
    heap_pushes: int,
) -> Tuple[Schedule, Tuple[int, int, int, int]]:
    """The interpreted main loop, decision-identical to
    :func:`repro.core.flb._flb_fast`, over caller-initialized state.

    Cold runs (:func:`_flb_array_impl`) enter with pristine state and
    ``iterations = V``; warm runs (:func:`_try_warm_start`) enter with the
    base schedule's clean prefix already applied and ``iterations`` equal
    to the remaining suffix.  Either way the per-iteration decisions — the
    same float expressions, heap keys, and tie rules — come from this one
    body, so the two paths cannot drift apart.
    """
    lists = graph.csr().lists
    pred_ptr, pred_ids = lists.pred_ptr, lists.pred_ids
    succ_ptr, succ_ids = lists.succ_ptr, lists.succ_ids
    pred_delay, neg_bl, homogeneous, speeds = _interp_inputs(graph, machine)
    comp: List[float] = graph._comp

    ep_choices = 0
    non_ep_choices = 0

    append_order = order.append
    for _ in range(iterations):
        # Candidate (a): EP task with minimum EST on its enabling processor.
        while active_heap:
            est, p = active_heap[0]
            if active_est[p] == est:
                break
            heappop(active_heap)
        # Candidate (b): non-EP task with minimum LMT, on the earliest-idle
        # processor.
        while non_ep_heap and state[non_ep_heap[0][2]] != _NON_EP:
            heappop(non_ep_heap)
        while True:
            idle_prt, idle_proc = all_heap[0]
            if prt[idle_proc] == idle_prt:
                break
            heappop(all_heap)

        if not active_heap and not non_ep_heap:
            raise SchedulerError("no ready task but schedule incomplete (bug)")
        # Theorem 3: compare the two candidates; per the paper, ties favour
        # the non-EP task (ablatable via prefer_non_ep_on_tie).
        if not non_ep_heap:
            take_ep = True
        elif not active_heap:
            take_ep = False
        else:
            ep_est = active_heap[0][0]
            non_lmt = non_ep_heap[0][0]
            non_est = non_lmt if non_lmt > idle_prt else idle_prt
            take_ep = ep_est < non_est if prefer_non_ep_on_tie else ep_est <= non_est
        if take_ep:
            proc = active_heap[0][1]
            est = active_heap[0][0]
            ep_heap = emt_heaps[proc]
            while state[ep_heap[0][2]] != _EP:  # pragma: no cover - defensive
                heappop(ep_heap)
            task = ep_heap[0][2]
            ep_choices += 1
        else:
            task = non_ep_heap[0][2]
            non_lmt = non_ep_heap[0][0]
            proc = idle_proc
            est = non_lmt if non_lmt > idle_prt else idle_prt
            non_ep_choices += 1

        # ScheduleTask: batched into the state vectors, no method call.
        state[task] = _DONE
        ft = est + (comp[task] if homogeneous else comp[task] / speeds[proc])
        append_order(task)
        start[task] = est
        finish[task] = ft
        on_proc[task] = proc

        # UpdateTaskLists + UpdateProcLists: PRT(proc) rises to ft; EP tasks
        # of proc whose LMT fell below it demote to non-EP.
        prt[proc] = ft
        heappush(all_heap, (ft, proc))
        heap_pushes += 1
        lheap = lmt_heaps[proc]
        while lheap:
            entry = lheap[0]
            if state[entry[2]] != _EP:
                heappop(lheap)
                continue
            if entry[0] >= ft:
                break
            heappop(lheap)
            state[entry[2]] = _NON_EP
            heappush(non_ep_heap, entry)  # same (LMT, -BL, id) key
            heap_pushes += 1
        # Refresh proc's entry in the active list (UpdateProcLists),
        # inlined from the fast path's refresh_active closure.
        eheap = emt_heaps[proc]
        while eheap and state[eheap[0][2]] != _EP:
            heappop(eheap)
        if not eheap:
            active_est[proc] = None
        else:
            aest = eheap[0][0]
            rt = prt[proc]
            if rt > aest:
                aest = rt
            active_est[proc] = aest
            heappush(active_heap, (aest, proc))
            heap_pushes += 1

        # UpdateReadyTasks: one fused pass per newly ready successor
        # computes LMT, EP and EMT-on-EP together (see _flb_fast).
        for j in range(succ_ptr[task], succ_ptr[task + 1]):
            succ = succ_ids[j]
            npreds[succ] -= 1
            if npreds[succ]:
                continue
            b_arr = -1.0
            b_ft = -1.0
            b_id = -1
            b_proc = 0
            alt = 0.0
            max_ft = 0.0
            for i in range(pred_ptr[succ], pred_ptr[succ + 1]):
                pred = pred_ids[i]
                ft_p = finish[pred]
                arr = ft_p + pred_delay[i]
                pp = on_proc[pred]
                if ft_p > max_ft:
                    max_ft = ft_p
                # Deterministic (arrival, FT, id) tie rule for the EP choice.
                if arr > b_arr or (
                    arr == b_arr and (ft_p > b_ft or (ft_p == b_ft and pred > b_id))
                ):
                    if pp != b_proc and b_arr > alt:
                        alt = b_arr
                    b_arr = arr
                    b_ft = ft_p
                    b_id = pred
                    b_proc = pp
                elif pp != b_proc and arr > alt:
                    alt = arr
            emt = max_ft if max_ft > alt else alt
            # A task is EP-type iff LMT(t) >= PRT(EP(t)).
            nbl = neg_bl[succ]
            if b_arr >= prt[b_proc]:
                state[succ] = _EP
                heappush(emt_heaps[b_proc], (emt, nbl, succ))
                heappush(lmt_heaps[b_proc], (b_arr, nbl, succ))
                heap_pushes += 2
                # Refresh b_proc's active entry (inlined refresh_active).
                eheap = emt_heaps[b_proc]
                while eheap and state[eheap[0][2]] != _EP:
                    heappop(eheap)
                if not eheap:  # pragma: no cover - just pushed an EP entry
                    active_est[b_proc] = None
                else:
                    aest = eheap[0][0]
                    rt = prt[b_proc]
                    if rt > aest:
                        aest = rt
                    active_est[b_proc] = aest
                    heappush(active_heap, (aest, b_proc))
                    heap_pushes += 1
            else:
                state[succ] = _NON_EP
                heappush(non_ep_heap, (b_arr, nbl, succ))
                heap_pushes += 1

    # Materialize the schedule from the state vectors in one shot.
    schedule = Schedule._from_arrays(
        graph, machine, order, on_proc, start, finish, prt
    )
    return schedule, (iterations, heap_pushes, ep_choices, non_ep_choices)


def _try_warm_start(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
    base: Schedule,
) -> "Tuple[Schedule, Tuple[int, int, int, int], Dict[str, object]] | str":
    """Attempt a warm-start run of ``graph`` from ``base``'s clean prefix.

    Returns ``(schedule, counters, info)`` on success or a fallback-reason
    string when the base is unusable — the caller then runs cold; a warm
    attempt never produces a schedule that differs from the cold run's.
    """
    if not base.complete:
        return "base-incomplete"
    if base.machine != machine:
        return "machine-mismatch"
    if base._flb_prefer != prefer_non_ep_on_tie:
        return "tie-rule-mismatch"
    from repro.incremental import diff_prefix

    try:
        diff = diff_prefix(base, graph)
        if diff.reuse_steps <= 0:
            return "no-clean-prefix"
        schedule, counters = _flb_warm_impl(
            graph, machine, prefer_non_ep_on_tie, base, diff.reuse_steps
        )
    except Exception:
        # Defensive: an unexpected failure in the incremental plane must
        # degrade to a cold run, never to an error or a wrong schedule.
        return "error"
    info: Dict[str, object] = {
        "reused": diff.reuse_steps,
        "replayed": diff.total - diff.reuse_steps,
        "total": diff.total,
        "dirty": diff.dirty,
        "fraction": diff.reuse_fraction,
    }
    return schedule, counters, info


def _flb_warm_impl(
    graph: TaskGraph,
    machine: MachineModel,
    prefer_non_ep_on_tie: bool,
    base: Schedule,
    k: int,
) -> Tuple[Schedule, Tuple[int, int, int, int]]:
    """Apply the first ``k`` base placements, rebuild the kernel state they
    imply, and run :func:`_flb_array_loop` over the remaining suffix.

    The rebuilt state is exactly what a cold run holds after ``k``
    iterations, up to heap-internal layout (stale lazily-invalidated
    entries are simply absent; every heap key embeds the task/processor id,
    so the rebuilt heaps expose identical minima):

    * ``PRT`` is the max finish per processor over the prefix;
    * a task is EP iff its last message arrives at or after the *current*
      PRT of its enabling processor — PRT only rises and the demotion loop
      drains every EP entry below it, so demotions are permanent and the
      inequality characterizes the surviving EP set;
    * demoted/non-EP entries re-enter with the same ``(LMT, -BL, id)`` key
      the cold run pushed.
    """
    n = graph.num_tasks
    num_procs = machine.num_procs
    csr = graph.csr()
    order_b, proc_b, start_b, finish_b = base._placement_arrays()
    prefix = order_b[:k]

    proc_arr = np.zeros(n, dtype=np.int64)
    start_arr = np.zeros(n, dtype=np.float64)
    finish_arr = np.zeros(n, dtype=np.float64)
    proc_arr[prefix] = proc_b[prefix]
    start_arr[prefix] = start_b[prefix]
    finish_arr[prefix] = finish_b[prefix]
    state_arr = np.full(n, _NOT_READY, dtype=np.int64)
    state_arr[prefix] = _DONE
    prt_arr = np.zeros(num_procs, dtype=np.float64)
    np.maximum.at(prt_arr, proc_arr[prefix], finish_arr[prefix])

    # Remaining unscheduled-predecessor counts: indegree minus placed preds
    # (counted on the successor side of the CSR, one bincount).
    outdeg = np.diff(csr.succ_ptr)
    placed_succ = _concat_slices(csr.succ_ptr[prefix], outdeg[prefix])
    npreds_arr = csr.in_degrees_array() - np.bincount(
        csr.succ_ids[placed_succ], minlength=n
    )
    ready_mask = npreds_arr == 0
    ready_mask[prefix] = False

    state = state_arr.tolist()
    finish = finish_arr.tolist()
    on_proc = proc_arr.tolist()
    start = start_arr.tolist()
    order: List[int] = prefix.tolist()
    npreds: List[int] = npreds_arr.tolist()
    prt: List[float] = prt_arr.tolist()

    lists = csr.lists
    pred_ptr, pred_ids = lists.pred_ptr, lists.pred_ids
    pred_delay, neg_bl, _homog, _speeds = _interp_inputs(graph, machine)

    emt_lists: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    lmt_lists: List[List[Tuple[float, float, int]]] = [[] for _ in range(num_procs)]
    non_ep_heap: List[Tuple[float, float, int]] = []
    heap_pushes = 0
    for t in np.flatnonzero(ready_mask).tolist():
        lo, hi = pred_ptr[t], pred_ptr[t + 1]
        nbl = neg_bl[t]
        if lo == hi:
            state[t] = _NON_EP
            non_ep_heap.append((0.0, nbl, t))
            heap_pushes += 1
            continue
        # The same fused predecessor pass the main loop runs on readiness
        # (all predecessors of a ready task are in the placed prefix).
        b_arr = -1.0
        b_ft = -1.0
        b_id = -1
        b_proc = 0
        alt = 0.0
        max_ft = 0.0
        for i in range(lo, hi):
            pred = pred_ids[i]
            ft_p = finish[pred]
            arr = ft_p + pred_delay[i]
            pp = on_proc[pred]
            if ft_p > max_ft:
                max_ft = ft_p
            if arr > b_arr or (
                arr == b_arr and (ft_p > b_ft or (ft_p == b_ft and pred > b_id))
            ):
                if pp != b_proc and b_arr > alt:
                    alt = b_arr
                b_arr = arr
                b_ft = ft_p
                b_id = pred
                b_proc = pp
            elif pp != b_proc and arr > alt:
                alt = arr
        emt = max_ft if max_ft > alt else alt
        if b_arr >= prt[b_proc]:
            state[t] = _EP
            emt_lists[b_proc].append((emt, nbl, t))
            lmt_lists[b_proc].append((b_arr, nbl, t))
            heap_pushes += 2
        else:
            state[t] = _NON_EP
            non_ep_heap.append((b_arr, nbl, t))
            heap_pushes += 1

    heapify(non_ep_heap)
    active_est: List[Optional[float]] = [None] * num_procs
    active_heap: List[Tuple[float, int]] = []
    for p in range(num_procs):
        heapify(emt_lists[p])
        heapify(lmt_lists[p])
        if emt_lists[p]:
            aest = emt_lists[p][0][0]
            rt = prt[p]
            if rt > aest:
                aest = rt
            active_est[p] = aest
            active_heap.append((aest, p))
    heapify(active_heap)
    all_heap: List[Tuple[float, int]] = sorted(
        (prt[p], p) for p in range(num_procs)
    )

    return _flb_array_loop(
        graph, machine, prefer_non_ep_on_tie,
        state, finish, on_proc, start, order, npreds, prt,
        emt_lists, lmt_lists, non_ep_heap, active_heap, active_est, all_heap,
        n - k, heap_pushes,
    )
