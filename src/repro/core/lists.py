"""The five priority structures at the heart of FLB (Section 4.1).

The paper maintains, for a partial schedule:

* per processor ``p``, the EP-type ready tasks enabled by ``p`` sorted by
  their effective message arrival time — ``EMT_EP_task_l[p]``;
* per processor ``p``, the same tasks sorted by their last message arrival
  time — ``LMT_EP_task_l[p]`` (used to demote tasks to non-EP when
  ``PRT(p)`` overtakes their ``LMT``);
* the non-EP-type ready tasks sorted by ``LMT`` — ``nonEP_task_l``;
* the *active* processors (those enabling at least one EP task) sorted by
  the minimum ``EST`` of the tasks they enable — ``active_proc_l``;
* all processors sorted by ``PRT`` — ``all_proc_l``.

Ties inside the three task lists are broken by the longer static bottom
level, then by task id; processor keys embed the processor id.  Every
operation here is ``O(log W)`` or ``O(log P)``, which is what gives FLB its
``O(V (log W + log P) + E)`` bound.

:class:`FlbLists` encapsulates those structures behind the operations the
algorithm needs; :mod:`repro.core.flb` drives it.  Keeping it separate makes
the bookkeeping directly unit-testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.util.heap import IndexedHeap

__all__ = ["FlbLists"]


class FlbLists:
    """Priority-list state for FLB over ``num_procs`` processors.

    The caller supplies, per task, the static bottom level used for
    tie-breaking, and per insertion the task's ``LMT``, enabling processor
    and ``EMT`` on that processor.  The structure does not compute any of
    these quantities itself.
    """

    def __init__(self, num_procs: int, bottom_level: Sequence[float]) -> None:
        if num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {num_procs}")
        self._bl = bottom_level
        self.num_procs = num_procs
        self._emt_ep: List[IndexedHeap[int]] = [
            IndexedHeap() for _ in range(num_procs)
        ]
        self._lmt_ep: List[IndexedHeap[int]] = [
            IndexedHeap() for _ in range(num_procs)
        ]
        self._non_ep: IndexedHeap[int] = IndexedHeap()
        self._active: IndexedHeap[int] = IndexedHeap()
        self._all_procs: IndexedHeap[int] = IndexedHeap()
        self._prt: List[float] = [0.0] * num_procs
        self._num_ready = 0
        for p in range(num_procs):
            self._all_procs.push(p, (0.0, p))

    # -- key helpers ---------------------------------------------------------

    def _task_key(self, value: float, task: int) -> Tuple[float, float, int]:
        # Smaller value first; larger bottom level first; task id last.
        return (value, -self._bl[task], task)

    def _refresh_active(self, proc: int) -> None:
        """Re-derive ``proc``'s entry in the active-processor list from the
        head of its EMT list and its PRT (the paper's ``UpdateProcLists``)."""
        head = self._emt_ep[proc].peek_item()
        if head is None:
            self._active.discard(proc)
        else:
            emt = self._emt_ep[proc].key_of(head)[0]
            est = max(emt, self._prt[proc])
            self._active.push_or_update(proc, (est, proc))

    # -- queries ----------------------------------------------------------------

    def prt(self, proc: int) -> float:
        return self._prt[proc]

    @property
    def num_ready(self) -> int:
        """Number of ready tasks across all lists.

        ``O(1)``: an integer counter maintained by the mutators (demotions
        move a task between lists and leave it unchanged); cross-checked
        against the per-list sizes in :meth:`check_invariants`.
        """
        return self._num_ready

    @property
    def heap_ops(self) -> int:
        """Total ``O(log n)`` heap mutations across the five priority
        structures so far — the operation count FLB's
        ``O(V (log W + log P) + E)`` bound charges.  Read per iteration by
        :class:`repro.obs.KernelMetricsObserver`."""
        total = self._non_ep.ops + self._active.ops + self._all_procs.ops
        total += sum(h.ops for h in self._emt_ep)
        total += sum(h.ops for h in self._lmt_ep)
        return total

    def best_ep_candidate(self) -> Optional[Tuple[int, int, float]]:
        """``(task, proc, est)`` for case (a): the EP task with minimum
        ``EST(t, EP(t))``, or ``None`` if there is no EP task."""
        proc = self._active.peek_item()
        if proc is None:
            return None
        est = float(self._active.key_of(proc)[0])
        task = self._emt_ep[proc].peek_item()
        assert task is not None, "active processor with empty EP list"
        return task, proc, est

    def best_non_ep_candidate(self) -> Optional[Tuple[int, int, float]]:
        """``(task, proc, est)`` for case (b): the non-EP task with minimum
        ``LMT`` on the earliest-idle processor, or ``None``."""
        task = self._non_ep.peek_item()
        if task is None:
            return None
        proc = self._all_procs.peek_item()
        assert proc is not None
        lmt = float(self._non_ep.key_of(task)[0])
        return task, proc, max(lmt, self._prt[proc])

    def ep_tasks_by_emt(self, proc: int) -> List[Tuple[int, float]]:
        """EP tasks enabled by ``proc`` as ``(task, EMT)`` in list order
        (for trace rendering)."""
        return [(t, key[0]) for t, key in self._emt_ep[proc].sorted_items()]

    def non_ep_tasks_by_lmt(self) -> List[Tuple[int, float]]:
        """Non-EP tasks as ``(task, LMT)`` in list order (for trace rendering)."""
        return [(t, key[0]) for t, key in self._non_ep.sorted_items()]

    def ready_tasks(self) -> List[int]:
        """All ready tasks in no particular order."""
        out = list(self._non_ep)
        for heap in self._emt_ep:
            out.extend(heap)
        return out

    def lmt_of_ep_task(self, proc: int, task: int) -> float:
        return float(self._lmt_ep[proc].key_of(task)[0])

    # -- mutations -------------------------------------------------------------

    def add_ready_task(
        self,
        task: int,
        lmt: float,
        enabling_proc: Optional[int],
        emt_on_ep: float,
    ) -> None:
        """Insert a newly ready task (the paper's ``UpdateReadyTasks`` body).

        A task is EP-type iff ``LMT(t) >= PRT(EP(t))``; entry tasks (no
        enabling processor) are always non-EP.
        """
        self._num_ready += 1
        if enabling_proc is not None and lmt >= self._prt[enabling_proc]:
            self._emt_ep[enabling_proc].push(task, self._task_key(emt_on_ep, task))
            self._lmt_ep[enabling_proc].push(task, self._task_key(lmt, task))
            self._refresh_active(enabling_proc)
        else:
            self._non_ep.push(task, self._task_key(lmt, task))

    def remove_ep_task(self, proc: int, task: int) -> None:
        """Remove a (scheduled) EP task from ``proc``'s two lists."""
        self._emt_ep[proc].remove(task)
        self._lmt_ep[proc].remove(task)
        self._num_ready -= 1
        self._refresh_active(proc)

    def remove_non_ep_task(self, task: int) -> None:
        self._non_ep.remove(task)
        self._num_ready -= 1

    def set_prt(self, proc: int, prt: float) -> List[int]:
        """Update ``PRT(proc)`` after a placement; demote EP tasks whose
        ``LMT`` fell below it (the paper's ``UpdateTaskLists``) and refresh
        both processor lists.  Returns the demoted tasks.
        """
        self._prt[proc] = prt
        demoted: List[int] = []
        lmt_heap = self._lmt_ep[proc]
        while True:
            task = lmt_heap.peek_item()
            if task is None:
                break
            lmt = lmt_heap.key_of(task)[0]
            if lmt >= prt:
                break
            lmt_heap.remove(task)
            self._emt_ep[proc].remove(task)
            self._non_ep.push(task, self._task_key(lmt, task))
            demoted.append(task)
        self._all_procs.update(proc, (prt, proc))
        self._refresh_active(proc)
        return demoted

    # -- consistency (tests only) --------------------------------------------------

    def check_invariants(self) -> None:
        """Assert cross-structure consistency; used by the test suite."""
        for p in range(self.num_procs):
            assert len(self._emt_ep[p]) == len(self._lmt_ep[p]), (
                f"EP lists of processor {p} out of sync"
            )
            for task in self._emt_ep[p]:
                assert task in self._lmt_ep[p]
                lmt = self._lmt_ep[p].key_of(task)[0]
                assert lmt >= self._prt[p], (
                    f"task {task} on proc {p} should have been demoted: "
                    f"LMT {lmt} < PRT {self._prt[p]}"
                )
            if len(self._emt_ep[p]) == 0:
                assert p not in self._active
            else:
                assert p in self._active
                head = self._emt_ep[p].peek_item()
                assert head is not None
                emt = self._emt_ep[p].key_of(head)[0]
                assert self._active.key_of(p) == (max(emt, self._prt[p]), p)
            assert self._all_procs.key_of(p) == (self._prt[p], p)
        slow_num_ready = len(self._non_ep) + sum(len(h) for h in self._emt_ep)
        assert self._num_ready == slow_num_ready, (
            f"num_ready counter {self._num_ready} != recomputed {slow_num_ready}"
        )
        for heap in [*self._emt_ep, *self._lmt_ep, self._non_ep, self._active, self._all_procs]:
            heap.check_invariants()
