"""Brute-force earliest-start oracle — an executable check of Theorem 3.

The paper's central claim is that FLB's two-candidate selection always finds
the ready task that can start the earliest, i.e. the pair achieving

    min over ready tasks t, processors p of  EST(t, p)

exactly as ETF's exhaustive ``O(W P)`` scan would.  :func:`brute_force_min_est`
recomputes that minimum from scratch (tentatively scheduling every ready
task on every processor); :class:`OracleObserver` plugs into
:func:`repro.core.flb.flb` and asserts, at **every** iteration, that

1. the start time FLB chose equals the brute-force minimum, and
2. the chosen start time really is ``EST(task, proc)`` recomputed from the
   partial schedule (no stale cached values).

The property-based tests run FLB under this observer over thousands of
random DAGs, turning the paper's Theorem 3 proof into a tested invariant.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.flb import FlbIteration
from repro.schedule.schedule import Schedule

__all__ = ["brute_force_min_est", "est_of", "OracleObserver", "OracleViolation"]

_EPS = 1e-9


def est_of(schedule: Schedule, task: int, proc: int) -> float:
    """``EST(task, proc)`` on the given partial schedule, from scratch."""
    graph = schedule.graph
    machine = schedule.machine
    emt = 0.0
    for pred in graph.preds(task):
        arrival = schedule.finish_of(pred) + machine.comm_delay(
            schedule.proc_of(pred), proc, graph.comm(pred, task)
        )
        if arrival > emt:
            emt = arrival
    return max(emt, schedule.prt(proc))


def brute_force_min_est(
    schedule: Schedule, ready_tasks: Iterable[int]
) -> Tuple[float, List[Tuple[int, int]]]:
    """Exhaustive ETF-style scan: the minimum ``EST`` over every
    (ready task, processor) pair, plus all pairs achieving it."""
    best = float("inf")
    argmins: List[Tuple[int, int]] = []
    for task in ready_tasks:
        for proc in schedule.machine.procs:
            est = est_of(schedule, task, proc)
            if est < best - _EPS:
                best = est
                argmins = [(task, proc)]
            elif abs(est - best) <= _EPS:
                argmins.append((task, proc))
    return best, argmins


class OracleViolation(AssertionError):
    """FLB's choice did not achieve the brute-force minimum start time."""


class OracleObserver:
    """FLB observer asserting Theorem 3 at every iteration.

    Also keeps counters so tests can assert the oracle actually ran and how
    often genuine EP/non-EP tie situations occurred.
    """

    def __init__(self) -> None:
        self.iterations = 0
        self.tie_iterations = 0

    def on_iteration(self, snapshot: FlbIteration) -> None:
        self.iterations += 1
        schedule = snapshot.schedule
        ready = snapshot.lists.ready_tasks()
        assert snapshot.chosen_task in ready

        recomputed = est_of(schedule, snapshot.chosen_task, snapshot.chosen_proc)
        if abs(recomputed - snapshot.chosen_start) > _EPS:
            raise OracleViolation(
                f"iteration {snapshot.iteration}: FLB claims task "
                f"{snapshot.chosen_task} starts at {snapshot.chosen_start} on "
                f"p{snapshot.chosen_proc}, but EST recomputes to {recomputed}"
            )

        best, argmins = brute_force_min_est(schedule, ready)
        if abs(best - snapshot.chosen_start) > _EPS:
            raise OracleViolation(
                f"iteration {snapshot.iteration}: FLB start "
                f"{snapshot.chosen_start} (task {snapshot.chosen_task} on "
                f"p{snapshot.chosen_proc}) != brute-force minimum {best} "
                f"achieved by {argmins[:5]}"
            )
        if (
            snapshot.ep_candidate is not None
            and snapshot.non_ep_candidate is not None
            and abs(snapshot.ep_candidate[2] - snapshot.non_ep_candidate[2]) <= _EPS
        ):
            # The paper's tie rule: prefer the non-EP candidate (inverted
            # when the run uses the ablation flag).
            self.tie_iterations += 1
            if snapshot.chosen_is_ep == snapshot.prefers_non_ep:
                raise OracleViolation(
                    f"iteration {snapshot.iteration}: tie at "
                    f"{snapshot.chosen_start} resolved against the configured "
                    f"preference"
                )
