"""A deliberately slow reference implementation of FLB.

:func:`flb_reference` re-implements FLB's *semantics* — the two Theorem-3
candidates, the EP/non-EP classification, and every tie-breaking rule —
without any of the priority-list machinery: each iteration scans all ready
tasks and all processors (`O(W·P)` with `O(in_degree)` recomputation, like
ETF).  Because the tie-break keys are identical, its output schedule must be
**bit-for-bit identical** to :func:`repro.core.flb.flb`'s, on every input.

That makes it the strongest regression harness for the fast implementation:
the oracle (:mod:`repro.core.oracle`) proves the chosen *start time* is
minimal, while this module pins the exact *choice*, catching any drift in
the heap bookkeeping (stale keys, missed demotions, wrong refresh of the
active-processor list) that happens to preserve minimality.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import SchedulerError
from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine

__all__ = ["flb_reference"]


def flb_reference(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with brute-force FLB semantics (see module doc)."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    n = graph.num_tasks

    lmt = [0.0] * n
    ep: List[Optional[int]] = [None] * n
    unscheduled_preds = [graph.in_degree(t) for t in graph.tasks()]
    ready: List[int] = list(graph.entry_tasks)

    def emt_on(task: int, proc: int) -> float:
        value = 0.0
        for pred in graph.preds(task):
            arrival = schedule.finish_of(pred) + machine.comm_delay(
                schedule.proc_of(pred), proc, graph.comm(pred, task)
            )
            if arrival > value:
                value = arrival
        return value

    for _ in range(n):
        if not ready:
            raise SchedulerError("no ready task but schedule incomplete (bug)")
        # Candidate (a): EP task minimising EST on its enabling processor.
        # Replicates the fast path's ordering exactly: processors are ranked
        # by (min EST, proc id); within a processor, EP tasks by
        # (EMT, -BL, id).
        best_ep: Optional[Tuple[float, int, float, float, int]] = None
        # best_ep key: (est, proc, emt, -bl, id)
        for task in ready:
            p = ep[task]
            if p is None or lmt[task] < schedule.prt(p):
                continue  # non-EP type
            emt = emt_on(task, p)
            est = max(emt, schedule.prt(p))
            key = (est, p, emt, -bl[task], task)
            if best_ep is None or key < best_ep:
                best_ep = key
        # Candidate (b): non-EP task with minimum LMT on the earliest-idle
        # processor (processor ties by id; task ties by (-BL, id)).
        best_non: Optional[Tuple[float, float, int]] = None  # (lmt, -bl, id)
        for task in ready:
            p = ep[task]
            if p is not None and lmt[task] >= schedule.prt(p):
                continue
            key = (lmt[task], -bl[task], task)
            if best_non is None or key < best_non:
                best_non = key
        idle_proc = min(machine.procs, key=lambda p: (schedule.prt(p), p))

        if best_non is None:
            assert best_ep is not None
            est, proc, _, _, task = best_ep
        elif best_ep is None:
            task = best_non[2]
            proc = idle_proc
            est = max(best_non[0], schedule.prt(idle_proc))
        else:
            est_non = max(best_non[0], schedule.prt(idle_proc))
            if best_ep[0] < est_non:
                est, proc, _, _, task = best_ep
            else:  # ties favour the non-EP candidate
                task, proc, est = best_non[2], idle_proc, est_non

        schedule.place(task, proc, est)
        ready.remove(task)
        for succ in graph.succs(task):
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] > 0:
                continue
            best_key = (-1.0, -1.0, -1)
            for pred in graph.preds(succ):
                ft = schedule.finish_of(pred)
                arrival = ft + machine.remote_delay(graph.comm(pred, succ))
                key = (arrival, ft, pred)
                if key > best_key:
                    best_key = key
                    lmt[succ] = arrival
                    ep[succ] = schedule.proc_of(pred)
            ready.append(succ)

    return schedule
