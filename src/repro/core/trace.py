"""Execution-trace recording for FLB, reproducing the paper's Table 1.

Table 1 shows, for every iteration of FLB on the Fig. 1 graph: the EP-type
tasks enabled by each processor (annotated ``t[EMT; BL/LMT]``, in EMT-list
order), the non-EP-type tasks (annotated ``t[LMT]``, in LMT order), and the
placement decision ``t -> p, [ST - FT]``.

:class:`TraceRecorder` is an :class:`~repro.core.flb.FlbObserver` that
captures exactly that data;
:func:`format_trace` renders it in the paper's layout::

    trace = TraceRecorder(graph)
    schedule = flb(graph, 2, observer=trace)
    print(format_trace(trace))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.core.flb import FlbIteration
from repro.util.tables import format_float

__all__ = ["TraceRecorder", "TraceRow", "format_trace"]


@dataclass(frozen=True)
class EpEntry:
    """One EP-task annotation: ``t[EMT; BL/LMT]``."""

    task: int
    emt: float
    bottom_level: float
    lmt: float


@dataclass(frozen=True)
class TraceRow:
    """One scheduling iteration."""

    iteration: int
    ep_tasks: Dict[int, List[EpEntry]]  # proc -> entries in EMT order
    non_ep_tasks: List[Tuple[int, float]]  # (task, LMT) in LMT order
    task: int
    proc: int
    start: float
    finish: float
    is_ep: bool


class TraceRecorder:
    """Collects a :class:`TraceRow` per FLB iteration."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        self._bl = bottom_levels(graph)
        self.rows: List[TraceRow] = []

    def on_iteration(self, snapshot: FlbIteration) -> None:
        lists = snapshot.lists
        ep_tasks: Dict[int, List[EpEntry]] = {}
        for p in range(lists.num_procs):
            entries = [
                EpEntry(
                    task=t,
                    emt=emt,
                    bottom_level=self._bl[t],
                    lmt=lists.lmt_of_ep_task(p, t),
                )
                for t, emt in lists.ep_tasks_by_emt(p)
            ]
            if entries:
                ep_tasks[p] = entries
        self.rows.append(
            TraceRow(
                iteration=snapshot.iteration,
                ep_tasks=ep_tasks,
                non_ep_tasks=lists.non_ep_tasks_by_lmt(),
                task=snapshot.chosen_task,
                proc=snapshot.chosen_proc,
                start=snapshot.chosen_start,
                finish=snapshot.chosen_start + self.graph.comp(snapshot.chosen_task),
                is_ep=snapshot.chosen_is_ep,
            )
        )


def _ep_cell(graph: TaskGraph, entries: List[EpEntry]) -> List[str]:
    return [
        f"{graph.name(e.task)}[{format_float(e.emt)};"
        f"{format_float(e.bottom_level)}/{format_float(e.lmt)}]"
        for e in entries
    ]


def format_trace(recorder: TraceRecorder, procs: Optional[List[int]] = None) -> str:
    """Render the recorded trace in the paper's Table 1 layout.

    ``procs`` selects/orders the EP columns; defaults to every processor
    that ever enables an EP task (all processors if none ever does).
    """
    graph = recorder.graph
    if procs is None:
        seen = sorted({p for row in recorder.rows for p in row.ep_tasks})
        procs = seen if seen else [0]

    headers = [*(f"EP tasks on p{p}" for p in procs), "non-EP tasks", "scheduling"]
    col_lines: List[List[List[str]]] = []  # row -> column -> lines
    for row in recorder.rows:
        cols: List[List[str]] = []
        for p in procs:
            entries = row.ep_tasks.get(p, [])
            cols.append(_ep_cell(graph, entries) if entries else ["-"])
        non_ep = [
            f"{graph.name(t)}[{format_float(lmt)}]" for t, lmt in row.non_ep_tasks
        ] or ["-"]
        cols.append(non_ep)
        cols.append(
            [
                f"{graph.name(row.task)} -> p{row.proc}, "
                f"[{format_float(row.start)} - {format_float(row.finish)}]"
            ]
        )
        col_lines.append(cols)

    widths = [len(h) for h in headers]
    for cols in col_lines:
        for i, lines in enumerate(cols):
            for line in lines:
                widths[i] = max(widths[i], len(line))

    def fmt(cells: List[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [fmt(headers), "  ".join("-" * w for w in widths)]
    for cols in col_lines:
        height = max(len(lines) for lines in cols)
        for i in range(height):
            out.append(fmt([lines[i] if i < len(lines) else "" for lines in cols]))
    return "\n".join(out)
