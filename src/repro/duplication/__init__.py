"""Duplication-based scheduling (extension): the paper's third algorithm
class, implemented so its quality/cost trade-off can be measured."""

from repro.duplication.dsh import dsh
from repro.duplication.schedule import DuplicationSchedule, TaskCopy

__all__ = ["dsh", "DuplicationSchedule", "TaskCopy"]
