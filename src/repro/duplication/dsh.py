"""DSH — Duplication Scheduling Heuristic (Kruatrachue & Lewis, 1988).

The representative of the paper's "duplication" class (Section 1): better
schedules than non-duplicating list schedulers, at significantly higher
scheduling cost.  Implemented here as an extension so the quality/cost
trade-off the paper describes can be measured rather than cited.

Algorithm (the classic shape, simplified to greedy ancestor duplication —
"DSH-lite", see DESIGN.md §4):

1. Tasks are visited in a static priority order (descending bottom level —
   topological, since weights are positive).
2. For each processor, compute the task's earliest start time given the
   copies already placed (a message from a predecessor is served by that
   predecessor's earliest-arriving copy).
3. The *duplication slot* is the idle window between the processor's ready
   time and that start.  While the start is message-bound, try duplicating
   the currently binding predecessor into the slot; keep the copy only if
   it strictly lowers the task's start time, and repeat (the newly binding
   predecessor may differ).
4. Place the task on the processor achieving the overall minimum start.

Cost: every (task, processor) evaluation may duplicate a chain of
ancestors, each re-evaluated in ``O(in_degree)`` — ``O(V P D in)`` overall
with ``D`` the duplication-chain length; orders of magnitude above FLB, as
the paper's taxonomy predicts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedulers.base import resolve_machine
from repro.duplication.schedule import DuplicationSchedule

__all__ = ["dsh"]

_EPS = 1e-9


def _est_on(
    schedule: DuplicationSchedule, task: int, proc: int, prt: float
) -> Tuple[float, Optional[int]]:
    """Earliest start of ``task`` on ``proc`` given current copies and the
    (possibly locally advanced) ready time ``prt``; also returns the binding
    predecessor (the one whose message arrives last), or ``None`` when the
    start is bound by ``prt`` alone."""
    graph = schedule.graph
    est = prt
    binding: Optional[int] = None
    for pred in graph.preds(task):
        arrival = schedule.arrival_of_edge(pred, task, proc)
        if arrival > est + _EPS:
            est = arrival
            binding = pred
    return est, binding


def _evaluate_with_duplication(
    schedule: DuplicationSchedule, task: int, proc: int, max_chain: int
) -> Tuple[float, List[Tuple[int, float]]]:
    """Start time achievable for ``task`` on ``proc`` if we may duplicate up
    to ``max_chain`` ancestors into the idle tail of ``proc``.

    Returns ``(start, plan)`` where ``plan`` lists the ancestor copies to
    place, in order, as ``(ancestor, start)``.  Pure evaluation: nothing is
    committed.
    """
    graph = schedule.graph
    machine = schedule.machine
    prt = schedule.prt(proc)
    plan: List[Tuple[int, float]] = []
    planned_tasks = set()
    planned_finish = {}  # ancestor -> finish of planned local copy

    def arrival(pred: int, consumer: int) -> float:
        best = schedule.arrival_of_edge(pred, consumer, proc)
        if pred in planned_finish:  # local planned copy: message is free
            best = min(best, planned_finish[pred])
        return best

    def est_of(t: int, ready: float) -> Tuple[float, Optional[int]]:
        est = ready
        binding = None
        for pred in graph.preds(t):
            a = arrival(pred, t)
            if a > est + _EPS:
                est = a
                binding = pred
        return est, binding

    est, binding = est_of(task, prt)
    while binding is not None and len(plan) < max_chain:
        if schedule.is_scheduled(binding) is False:
            break
        if binding in planned_tasks or any(
            c.proc == proc for c in schedule.copies_of(binding)
        ):
            break  # already local; nothing to gain from this branch
        # Tentative copy of the binding ancestor at the end of the slot.
        copy_est, _ = est_of(binding, prt)
        copy_finish = copy_est + machine.duration(graph.comp(binding), proc)
        new_prt = copy_finish
        # Recompute the task's start with the planned copy in place.
        planned_tasks.add(binding)
        planned_finish[binding] = copy_finish
        new_est, new_binding = est_of(task, new_prt)
        if new_est < est - _EPS:
            plan.append((binding, copy_est))
            prt = new_prt
            est, binding = new_est, new_binding
        else:
            planned_tasks.discard(binding)
            del planned_finish[binding]
            break
    return est, plan


def dsh(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    max_chain: int = 8,
) -> DuplicationSchedule:
    """Schedule ``graph`` with DSH(-lite).  See module docstring.

    ``max_chain`` bounds the ancestor-duplication chain evaluated per
    (task, processor) pair; 0 disables duplication entirely (useful for
    measuring the gain).
    """
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    if max_chain < 0:
        raise ValueError(f"max_chain must be >= 0, got {max_chain}")
    schedule = DuplicationSchedule(graph, machine)
    bl = bottom_levels(graph)
    order = sorted(graph.tasks(), key=lambda t: (-bl[t], t))

    for task in order:
        best_start = float("inf")
        best_proc = 0
        best_plan: List[Tuple[int, float]] = []
        for proc in machine.procs:
            start, plan = _evaluate_with_duplication(schedule, task, proc, max_chain)
            if start < best_start - _EPS:
                best_start = start
                best_proc = proc
                best_plan = plan
        for ancestor, start in best_plan:
            schedule.place_copy(ancestor, best_proc, start)
        schedule.place_copy(task, best_proc, best_start)

    return schedule
