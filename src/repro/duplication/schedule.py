"""Schedule representation for duplication-based scheduling.

Duplication-based algorithms (DSH, BTDH, CPFD — the paper's Section 1
taxonomy) may run *copies* of a task on several processors so that its
consumers receive results locally instead of waiting for messages.  The
single-placement :class:`repro.schedule.Schedule` cannot express that, so
this module provides :class:`DuplicationSchedule`:

* each task has one or more ``(proc, start, finish)`` copies;
* a consumer's dependence on a predecessor is satisfied by **any** copy of
  that predecessor (taking the earliest-arriving one);
* validity requires every task to have at least one copy, no overlap on any
  processor, and every copy's start to be no earlier than, for each
  predecessor, the earliest arrival over that predecessor's copies.

The parallel completion time counts *all* copies (redundant work still
occupies processors): ``makespan = max_p PRT(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel

__all__ = ["DuplicationSchedule", "TaskCopy"]

_EPS = 1e-9


@dataclass(frozen=True)
class TaskCopy:
    """One placed copy of a task."""

    task: int
    proc: int
    start: float
    finish: float


class DuplicationSchedule:
    """Incremental schedule allowing multiple copies per task."""

    def __init__(self, graph: TaskGraph, machine: MachineModel) -> None:
        if not graph.frozen:
            raise ScheduleError("schedule requires a frozen task graph")
        self._graph = graph
        self._machine = machine
        self._copies: List[List[TaskCopy]] = [[] for _ in graph.tasks()]
        self._proc_copies: List[List[TaskCopy]] = [[] for _ in machine.procs]
        self._prt: List[float] = [0.0] * machine.num_procs

    # -- construction ------------------------------------------------------

    def place_copy(self, task: int, proc: int, start: float) -> TaskCopy:
        """Append a copy of ``task`` on ``proc`` at ``start >= PRT(proc)``."""
        if not 0 <= task < self._graph.num_tasks:
            raise ScheduleError(f"unknown task {task}")
        if not 0 <= proc < self._machine.num_procs:
            raise ScheduleError(f"unknown processor {proc}")
        if start < self._prt[proc] - _EPS:
            raise ScheduleError(
                f"copy of task {task} at {start} precedes PRT({proc}) = {self._prt[proc]}"
            )
        if any(c.proc == proc for c in self._copies[task]):
            raise ScheduleError(f"task {task} already has a copy on processor {proc}")
        copy = TaskCopy(
            task, proc, start,
            start + self._machine.duration(self._graph.comp(task), proc),
        )
        self._copies[task].append(copy)
        self._proc_copies[proc].append(copy)
        self._prt[proc] = copy.finish
        return copy

    # -- queries --------------------------------------------------------------

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def machine(self) -> MachineModel:
        return self._machine

    @property
    def num_procs(self) -> int:
        return self._machine.num_procs

    def prt(self, proc: int) -> float:
        return self._prt[proc]

    def copies_of(self, task: int) -> Tuple[TaskCopy, ...]:
        return tuple(self._copies[task])

    def proc_copies(self, proc: int) -> Tuple[TaskCopy, ...]:
        return tuple(self._proc_copies[proc])

    def is_scheduled(self, task: int) -> bool:
        return bool(self._copies[task])

    @property
    def complete(self) -> bool:
        return all(self._copies[t] for t in self._graph.tasks())

    @property
    def makespan(self) -> float:
        return max(self._prt)

    def total_copies(self) -> int:
        return sum(len(c) for c in self._copies)

    def duplication_ratio(self) -> float:
        """Copies per task; 1.0 means no duplication happened."""
        return self.total_copies() / self._graph.num_tasks

    def arrival_of_edge(self, pred: int, succ: int, proc: int) -> float:
        """Earliest arrival of message ``pred -> succ`` at ``proc`` over all
        copies of ``pred``."""
        comm = self._graph.comm(pred, succ)
        best = float("inf")
        for copy in self._copies[pred]:
            arrival = copy.finish + self._machine.comm_delay(copy.proc, proc, comm)
            if arrival < best:
                best = arrival
        return best

    # -- validation --------------------------------------------------------------

    def violations(self) -> List[str]:
        problems: List[str] = []
        graph = self._graph
        for t in graph.tasks():
            if not self._copies[t]:
                problems.append(f"task {t} has no copy")
        for p in self._machine.procs:
            ordered = sorted(self._proc_copies[p], key=lambda c: c.start)
            for a, b in zip(ordered, ordered[1:]):
                if b.start < a.finish - _EPS:
                    problems.append(
                        f"copies of tasks {a.task} and {b.task} overlap on "
                        f"processor {p}"
                    )
        for t in graph.tasks():
            for copy in self._copies[t]:
                if copy.start < -_EPS:
                    problems.append(f"copy of task {t} starts before 0")
                for pred in graph.preds(t):
                    if not self._copies[pred]:
                        continue
                    arrival = self.arrival_of_edge(pred, t, copy.proc)
                    if copy.start < arrival - _EPS:
                        problems.append(
                            f"copy of task {t} on p{copy.proc} starts at "
                            f"{copy.start} before message from {pred} "
                            f"arrives at {arrival}"
                        )
        return problems

    def validate(self) -> "DuplicationSchedule":
        problems = self.violations()
        if problems:
            detail = "; ".join(problems[:5])
            more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
            raise ScheduleError(f"invalid duplication schedule: {detail}{more}")
        return self

    def __repr__(self) -> str:
        return (
            f"<DuplicationSchedule P={self.num_procs} copies={self.total_copies()} "
            f"makespan={self.makespan:.3f}>"
        )
