"""Exception hierarchy for the FLB reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "FrozenGraphError",
    "ScheduleError",
    "InvalidScheduleError",
    "SchedulerError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Invalid task-graph structure or usage."""


class CycleError(GraphError):
    """The task graph contains a cycle (it must be a DAG)."""


class FrozenGraphError(GraphError):
    """Attempted to mutate a frozen task graph."""


class ScheduleError(ReproError):
    """Invalid schedule construction or usage."""


class InvalidScheduleError(ScheduleError):
    """A schedule violates precedence, communication, or exclusivity rules."""


class SchedulerError(ReproError):
    """A scheduling algorithm was misconfigured or failed."""
