"""Task-graph model and static analysis."""

from repro.graph.io import (
    from_json,
    from_tg_text,
    load_json,
    save_json,
    to_dot,
    to_json,
    to_tg_text,
)
from repro.graph.properties import (
    alap_times,
    bottom_levels,
    ccr,
    critical_path_length,
    critical_path_tasks,
    parallelism_profile,
    static_levels,
    subgraph_hash_array,
    subgraph_hashes,
    top_levels,
    width,
    width_lower_bound,
)
from repro.graph.taskgraph import AdjacencyCSR, TaskGraph

__all__ = [
    "TaskGraph",
    "AdjacencyCSR",
    "bottom_levels",
    "top_levels",
    "static_levels",
    "alap_times",
    "critical_path_length",
    "critical_path_tasks",
    "ccr",
    "width",
    "width_lower_bound",
    "parallelism_profile",
    "subgraph_hashes",
    "subgraph_hash_array",
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_tg_text",
    "from_tg_text",
    "to_dot",
]
