"""Task-graph serialisation: JSON round-trip, a compact text format, and DOT.

Three formats are supported:

* **JSON** — the canonical interchange format (:func:`to_json` /
  :func:`from_json` and file variants).  Stores task names, computation
  costs, and weighted edges.
* **TG text** — a line-oriented format convenient for hand-written fixtures
  and close in spirit to the Standard Task Graph Set (STG) files used by the
  scheduling community, extended with per-edge communication costs::

      # comment
      t <id> <comp> [name]
      e <src> <dst> <comm>

  Task ids must be ``0..V-1`` in any order.
* **DOT** — export only, for visual inspection with Graphviz.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "to_json",
    "from_json",
    "raw_graph_data",
    "save_json",
    "load_json",
    "to_tg_text",
    "from_tg_text",
    "to_dot",
]

_FORMAT_VERSION = 1


def to_json(graph: TaskGraph) -> str:
    """Serialise a task graph to a JSON string."""
    doc = {
        "format": "repro-taskgraph",
        "version": _FORMAT_VERSION,
        "tasks": [
            {"id": t, "comp": graph.comp(t), "name": graph.name(t)}
            for t in graph.tasks()
        ],
        "edges": [
            {"src": src, "dst": dst, "comm": comm} for src, dst, comm in graph.edges()
        ],
    }
    return json.dumps(doc, indent=2)


def from_json(text: str) -> TaskGraph:
    """Parse a task graph from a JSON string produced by :func:`to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid task-graph JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-taskgraph":
        raise GraphError("not a repro-taskgraph JSON document")
    tasks = doc.get("tasks", [])
    graph = TaskGraph()
    by_id: Dict[int, Dict[str, Any]] = {}
    for entry in tasks:
        by_id[int(entry["id"])] = entry
    if sorted(by_id) != list(range(len(tasks))):
        raise GraphError("task ids must be dense 0..V-1")
    for tid in range(len(tasks)):
        entry = by_id[tid]
        graph.add_task(float(entry["comp"]), name=entry.get("name"))
    for entry in doc.get("edges", []):
        graph.add_edge(int(entry["src"]), int(entry["dst"]), float(entry["comm"]))
    return graph.freeze()


def raw_graph_data(
    text: str,
) -> "Tuple[List[float], List[Tuple[int, int, float]], List[Optional[str]]]":
    """Tolerantly extract ``(comps, edges, names)`` from task-graph JSON.

    Unlike :func:`from_json` this does **not** validate through
    :class:`TaskGraph` — malformed graphs (duplicate edges, self-loops,
    bad weights, cycles) come back as plain data so the linter
    (:func:`repro.verify.lint_data`) can report *every* problem with stable
    rule codes instead of stopping at the first constructor error.  Only
    structurally unreadable documents (not JSON, wrong format marker,
    tasks without ``id``/``comp``) raise :class:`~repro.exceptions.GraphError`.

    Task ids need not be dense; they are remapped to ``0..V-1`` in sorted
    order.  Edge endpoints that name unknown task ids map to ``-1`` (the
    linter reports them as out-of-range).
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid task-graph JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-taskgraph":
        raise GraphError("not a repro-taskgraph JSON document")
    comps: List[float] = []
    names: List[Optional[str]] = []
    index: Dict[int, int] = {}
    try:
        entries = sorted(doc.get("tasks", []), key=lambda e: int(e["id"]))
        for entry in entries:
            index.setdefault(int(entry["id"]), len(comps))
            comps.append(float(entry["comp"]))
            names.append(entry.get("name"))
        edges: List[Tuple[int, int, float]] = [
            (
                index.get(int(entry["src"]), -1),
                index.get(int(entry["dst"]), -1),
                float(entry["comm"]),
            )
            for entry in doc.get("edges", [])
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed task-graph document: {exc}") from exc
    return comps, edges, names


def save_json(graph: TaskGraph, path: Union[str, Path]) -> None:
    Path(path).write_text(to_json(graph))


def load_json(path: Union[str, Path]) -> TaskGraph:
    return from_json(Path(path).read_text())


def to_tg_text(graph: TaskGraph) -> str:
    """Serialise to the compact TG text format."""
    lines = [f"# repro task graph: V={graph.num_tasks} E={graph.num_edges}"]
    for t in graph.tasks():
        lines.append(f"t {t} {graph.comp(t)!r} {graph.name(t)}")
    for src, dst, comm in graph.edges():
        lines.append(f"e {src} {dst} {comm!r}")
    return "\n".join(lines) + "\n"


def from_tg_text(text: str) -> TaskGraph:
    """Parse the TG text format (see module docstring)."""
    comps: Dict[int, float] = {}
    names: Dict[int, str] = {}
    edges: List[Tuple[int, int, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "t":
                tid = int(parts[1])
                if tid in comps:
                    raise GraphError(f"line {lineno}: duplicate task id {tid}")
                comps[tid] = float(parts[2])
                if len(parts) > 3:
                    names[tid] = parts[3]
            elif kind == "e":
                edges.append((int(parts[1]), int(parts[2]), float(parts[3])))
            else:
                raise GraphError(f"line {lineno}: unknown record {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"line {lineno}: malformed record {line!r}") from exc
    if sorted(comps) != list(range(len(comps))):
        raise GraphError("task ids must be dense 0..V-1")
    graph = TaskGraph()
    for tid in range(len(comps)):
        graph.add_task(comps[tid], name=names.get(tid))
    for src, dst, comm in edges:
        graph.add_edge(src, dst, comm)
    return graph.freeze()


def to_dot(graph: TaskGraph) -> str:
    """Export to Graphviz DOT with comp/comm labels."""
    lines = ["digraph taskgraph {", "  rankdir=TB;"]
    for t in graph.tasks():
        lines.append(f'  {t} [label="{graph.name(t)}\\n{graph.comp(t):g}"];')
    for src, dst, comm in graph.edges():
        lines.append(f'  {src} -> {dst} [label="{comm:g}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
