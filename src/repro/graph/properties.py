"""Static task-graph analysis: levels, critical path, width, CCR.

These are the quantities the paper's Section 2 defines and its algorithms
consume:

* **bottom level** ``BL(t)`` — longest path (computation + communication)
  from ``t`` to any exit task, *including* ``comp(t)``.  FLB and ETF use it
  as the tie-breaking priority ("the longest path to any exit tasks").
* **top level** ``TL(t)`` — longest path from any entry task to ``t``,
  *excluding* ``comp(t)``; DSC's dynamic priority is ``TL + BL``.
* **static level** ``SL(t)`` — bottom level without communication costs
  (used by DLS and HLFET).
* **ALAP** — latest possible start time, ``CP - BL(t)``; MCP's priority.
* **critical path** ``CP`` — longest path through the graph including
  communication; equals ``max_t BL(t)``.
* **CCR** — average communication cost over average computation cost.
* **width** ``W`` — the maximum number of pairwise path-unconnected tasks
  (the maximum antichain).  The number of simultaneously ready tasks never
  exceeds ``W``, which is where the ``log W`` in FLB's complexity comes from.

Width is computed exactly via Dilworth's theorem (minimum chain cover of the
transitive closure = ``V -`` maximum bipartite matching); the closure uses
Python-int bitsets and the matching is Hopcroft–Karp, so graphs in the
paper's size range (V ≈ 2000) are handled in seconds.  A cheap lower bound
(the peak ready-set size of a sequential sweep) is also provided for quick
reporting on very large graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "bottom_levels",
    "top_levels",
    "static_levels",
    "alap_times",
    "critical_path_length",
    "critical_path_tasks",
    "ccr",
    "width",
    "width_lower_bound",
    "parallelism_profile",
    "transitive_closure_bitsets",
]


def bottom_levels(graph: TaskGraph) -> List[float]:
    """``BL(t)`` for every task (communication included, ``comp(t)`` included).

    Runs on the CSR adjacency view: every scheduler computes bottom levels
    up front, so this ``O(V + E)`` sweep is part of each one's hot start.
    """
    graph.freeze()
    csr = graph.csr()
    succ_ptr, succ_ids, succ_comm = csr.succ_ptr, csr.succ_ids, csr.succ_comm
    comps = graph.comps
    bl = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for i in range(succ_ptr[t], succ_ptr[t + 1]):
            cand = succ_comm[i] + bl[succ_ids[i]]
            if cand > best:
                best = cand
        bl[t] = comps[t] + best
    return bl


def top_levels(graph: TaskGraph) -> List[float]:
    """``TL(t)`` for every task (communication included, ``comp(t)`` excluded)."""
    graph.freeze()
    tl = [0.0] * graph.num_tasks
    for t in graph.topological_order:
        best = 0.0
        for p in graph.preds(t):
            cand = tl[p] + graph.comp(p) + graph.comm(p, t)
            if cand > best:
                best = cand
        tl[t] = best
    return tl


def static_levels(graph: TaskGraph) -> List[float]:
    """``SL(t)``: bottom level ignoring communication costs (DLS, HLFET)."""
    graph.freeze()
    sl = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for s in graph.succs(t):
            if sl[s] > best:
                best = sl[s]
        sl[t] = graph.comp(t) + best
    return sl


def critical_path_length(graph: TaskGraph) -> float:
    """Length of the longest path including communication (``max_t BL(t)``)."""
    return max(bottom_levels(graph))


def critical_path_tasks(graph: TaskGraph) -> List[int]:
    """One critical path as a list of task ids, entry to exit."""
    graph.freeze()
    bl = bottom_levels(graph)
    tl = top_levels(graph)
    cp = max(bl)
    # Start from an entry task on the critical path, then greedily follow
    # successors that keep TL + BL == CP.
    eps = 1e-9 * max(1.0, cp)
    start = max(
        (t for t in graph.entry_tasks),
        key=lambda t: bl[t],
    )
    path = [start]
    current = start
    while graph.succs(current):
        nxt = None
        for s in graph.succs(current):
            if abs(tl[s] + bl[s] - cp) <= eps and abs(
                tl[current] + graph.comp(current) + graph.comm(current, s) - tl[s]
            ) <= eps:
                nxt = s
                break
        if nxt is None:
            break
        path.append(nxt)
        current = nxt
    return path


def alap_times(graph: TaskGraph) -> List[float]:
    """Latest possible start times, ``ALAP(t) = CP - BL(t)`` (MCP priorities)."""
    bl = bottom_levels(graph)
    cp = max(bl)
    return [cp - b for b in bl]


def ccr(graph: TaskGraph) -> float:
    """Communication-to-computation ratio: mean comm cost / mean comp cost."""
    v = graph.num_tasks
    e = graph.num_edges
    if e == 0:
        return 0.0
    mean_comp = graph.total_comp() / v
    mean_comm = graph.total_comm() / e
    return mean_comm / mean_comp


def parallelism_profile(graph: TaskGraph) -> List[int]:
    """Number of tasks per depth level (depth = longest hop count from entry)."""
    graph.freeze()
    depth = [0] * graph.num_tasks
    for t in graph.topological_order:
        for p in graph.preds(t):
            if depth[p] + 1 > depth[t]:
                depth[t] = depth[p] + 1
    counts: Dict[int, int] = {}
    for d in depth:
        counts[d] = counts.get(d, 0) + 1
    return [counts[d] for d in sorted(counts)]


def width_lower_bound(graph: TaskGraph) -> int:
    """Peak ready-set size of a sequential topological sweep.

    All simultaneously ready tasks are pairwise unconnected, so this is a
    valid antichain size, hence a lower bound on the true width.  ``O(V+E)``.
    """
    graph.freeze()
    remaining = [graph.in_degree(t) for t in graph.tasks()]
    ready: Deque[int] = deque(graph.entry_tasks)
    peak = len(ready)
    while ready:
        t = ready.popleft()
        for s in graph.succs(t):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)
        if len(ready) > peak:
            peak = len(ready)
    return peak


def transitive_closure_bitsets(graph: TaskGraph) -> List[int]:
    """Reachability sets as Python-int bitsets: bit ``j`` of ``reach[i]`` is
    set iff there is a non-empty path ``i -> j``.

    ``O(V * E)`` word operations on ``V``-bit integers; fast in practice for
    the graph sizes used in the paper.
    """
    graph.freeze()
    n = graph.num_tasks
    reach = [0] * n
    for t in reversed(graph.topological_order):
        r = 0
        for s in graph.succs(t):
            r |= (1 << s) | reach[s]
        reach[t] = r
    return reach


def width(graph: TaskGraph) -> int:
    """Exact task-graph width ``W`` (maximum antichain) via Dilworth.

    The minimum number of chains covering the DAG equals ``V`` minus the size
    of a maximum matching in the bipartite graph whose edges are the pairs of
    the transitive closure, and by Dilworth's theorem the minimum chain cover
    equals the maximum antichain.
    """
    graph.freeze()
    n = graph.num_tasks
    reach = transitive_closure_bitsets(graph)
    adjacency = [_bits(reach[t]) for t in range(n)]
    # Augmenting-path DFS recursion can be as deep as the longest chain.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 1000))
    try:
        matching = _hopcroft_karp(n, adjacency)
    finally:
        sys.setrecursionlimit(old_limit)
    return n - matching


def _bits(mask: int) -> List[int]:
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _hopcroft_karp(n: int, adjacency: Sequence[Sequence[int]]) -> int:
    """Maximum bipartite matching (left = right = 0..n-1).  Returns its size."""
    INF = float("inf")
    match_left: List[int] = [-1] * n
    match_right: List[int] = [-1] * n
    dist: List[float] = [0.0] * n

    def bfs() -> bool:
        queue: Deque[int] = deque()
        for u in range(n):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    matching = 0
    while bfs():
        for u in range(n):
            if match_left[u] == -1 and dfs(u):
                matching += 1
    return matching
