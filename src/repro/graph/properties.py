"""Static task-graph analysis: levels, critical path, width, CCR.

These are the quantities the paper's Section 2 defines and its algorithms
consume:

* **bottom level** ``BL(t)`` — longest path (computation + communication)
  from ``t`` to any exit task, *including* ``comp(t)``.  FLB and ETF use it
  as the tie-breaking priority ("the longest path to any exit tasks").
* **top level** ``TL(t)`` — longest path from any entry task to ``t``,
  *excluding* ``comp(t)``; DSC's dynamic priority is ``TL + BL``.
* **static level** ``SL(t)`` — bottom level without communication costs
  (used by DLS and HLFET).
* **ALAP** — latest possible start time, ``CP - BL(t)``; MCP's priority.
* **critical path** ``CP`` — longest path through the graph including
  communication; equals ``max_t BL(t)``.
* **CCR** — average communication cost over average computation cost.
* **width** ``W`` — the maximum number of pairwise path-unconnected tasks
  (the maximum antichain).  The number of simultaneously ready tasks never
  exceeds ``W``, which is where the ``log W`` in FLB's complexity comes from.

Width is computed exactly via Dilworth's theorem (minimum chain cover of the
transitive closure = ``V -`` maximum bipartite matching); the closure uses
Python-int bitsets and the matching is Hopcroft–Karp, so graphs in the
paper's size range (V ≈ 2000) are handled in seconds.  A cheap lower bound
(the peak ready-set size of a sequential sweep) is also provided for quick
reporting on very large graphs.
"""

from __future__ import annotations

import hashlib
import struct
from collections import deque
from typing import Deque, Dict, List, Sequence

import numpy as np
import numpy.typing as npt

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "bottom_levels",
    "bottom_levels_array",
    "top_levels",
    "top_levels_array",
    "static_levels",
    "alap_times",
    "critical_path_length",
    "critical_path_tasks",
    "ccr",
    "width",
    "width_lower_bound",
    "parallelism_profile",
    "subgraph_hashes",
    "subgraph_hash_array",
    "transitive_closure_bitsets",
]


#: Below this task count the scalar sweep beats NumPy's per-call overhead
#: (each frontier level costs a fixed ~10 array operations, and deep graphs
#: like LU have many shallow levels); above it the vectorized sweep wins.
_VECTOR_MIN_TASKS = 16384

IntArray = npt.NDArray[np.int64]
FloatArray = npt.NDArray[np.float64]


def _concat_slices(starts: IntArray, counts: IntArray) -> IntArray:
    """Indices selecting ``[starts[k], starts[k]+counts[k])`` back to back.

    The standard repeat/cumsum gather: builds the concatenation of many CSR
    slices without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


def bottom_levels(graph: TaskGraph) -> List[float]:
    """``BL(t)`` for every task (communication included, ``comp(t)`` included).

    Runs on the CSR adjacency view: every scheduler computes bottom levels
    up front, so this ``O(V + E)`` sweep is part of each one's hot start.
    Dispatches to the vectorized frontier sweep for large graphs; both paths
    produce bit-identical floats (same adds in the same order, and ``max``
    is order-independent).
    """
    graph.freeze()
    cached = graph._prop_cache.get("bl")
    if cached is None:
        if graph.num_tasks >= _VECTOR_MIN_TASKS:
            cached = bottom_levels_array(graph).tolist()
        else:
            cached = _bottom_levels_py(graph)
        graph._prop_cache["bl"] = cached
    # Defensive copy: the memo must survive callers mutating their result.
    return list(cached)  # type: ignore[call-overload]


def _bottom_levels_py(graph: TaskGraph) -> List[float]:
    """Pure-Python reference sweep over the CSR list mirrors."""
    csr = graph.csr().lists
    succ_ptr, succ_ids, succ_comm = csr.succ_ptr, csr.succ_ids, csr.succ_comm
    comps = graph.comps
    bl = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for i in range(succ_ptr[t], succ_ptr[t + 1]):
            cand = succ_comm[i] + bl[succ_ids[i]]
            if cand > best:
                best = cand
        bl[t] = comps[t] + best
    return bl


def bottom_levels_array(graph: TaskGraph) -> FloatArray:
    """Vectorized ``BL`` over the CSR: a level-synchronous reverse sweep.

    Kahn's algorithm on *out*-degrees; each frontier batch finalizes every
    task whose successors are all done, gathering the successor slices in
    one shot and reducing per task with ``np.maximum.reduceat``.  Performs
    the same float additions as the scalar sweep (``comm + bl`` per edge,
    then ``comp + max``), so the results are bit-identical.
    """
    graph.freeze()
    cached = graph._prop_cache.get("bl_arr")
    if cached is not None:
        return cached  # type: ignore[return-value]
    bl_list = graph._prop_cache.get("bl")
    if bl_list is not None:
        result = np.asarray(bl_list, dtype=np.float64)
        graph._prop_cache["bl_arr"] = result
        return result
    csr = graph.csr()
    n = graph.num_tasks
    comps = graph.comps_array()
    succ_ptr, succ_ids, succ_comm = csr.succ_ptr, csr.succ_ids, csr.succ_comm
    pred_ptr, pred_ids = csr.pred_ptr, csr.pred_ids
    bl = np.zeros(n, dtype=np.float64)
    best = np.zeros(n, dtype=np.float64)
    outdeg = np.diff(succ_ptr)
    frontier = np.flatnonzero(outdeg == 0)
    while frontier.size:
        counts = succ_ptr[frontier + 1] - succ_ptr[frontier]
        rows = frontier[counts > 0]
        if rows.size:
            cnt = counts[counts > 0]
            idx = _concat_slices(succ_ptr[rows], cnt)
            cand = succ_comm[idx] + bl[succ_ids[idx]]
            best[rows] = np.maximum.reduceat(cand, np.cumsum(cnt) - cnt)
        bl[frontier] = comps[frontier] + best[frontier]
        pidx = _concat_slices(
            pred_ptr[frontier], pred_ptr[frontier + 1] - pred_ptr[frontier]
        )
        if pidx.size == 0:
            break
        # One sort handles both deduplication and per-pred decrements.
        candidates, dec = np.unique(pred_ids[pidx], return_counts=True)
        outdeg[candidates] -= dec
        frontier = candidates[outdeg[candidates] == 0]
    graph._prop_cache["bl_arr"] = bl
    return bl


def top_levels(graph: TaskGraph) -> List[float]:
    """``TL(t)`` for every task (communication included, ``comp(t)`` excluded).

    Dispatches like :func:`bottom_levels`; both paths are bit-identical.
    """
    graph.freeze()
    cached = graph._prop_cache.get("tl")
    if cached is None:
        if graph.num_tasks >= _VECTOR_MIN_TASKS:
            cached = top_levels_array(graph).tolist()
        else:
            cached = _top_levels_py(graph)
        graph._prop_cache["tl"] = cached
    return list(cached)  # type: ignore[call-overload]


def _top_levels_py(graph: TaskGraph) -> List[float]:
    """Pure-Python reference sweep over the CSR list mirrors."""
    csr = graph.csr().lists
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    comps = graph.comps
    tl = [0.0] * graph.num_tasks
    for t in graph.topological_order:
        best = 0.0
        for i in range(pred_ptr[t], pred_ptr[t + 1]):
            p = pred_ids[i]
            cand = tl[p] + comps[p] + pred_comm[i]
            if cand > best:
                best = cand
        tl[t] = best
    return tl


def top_levels_array(graph: TaskGraph) -> FloatArray:
    """Vectorized ``TL``: the forward mirror of :func:`bottom_levels_array`."""
    graph.freeze()
    cached = graph._prop_cache.get("tl_arr")
    if cached is not None:
        return cached  # type: ignore[return-value]
    csr = graph.csr()
    n = graph.num_tasks
    comps = graph.comps_array()
    succ_ptr, succ_ids = csr.succ_ptr, csr.succ_ids
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    tl = np.zeros(n, dtype=np.float64)
    indeg = np.diff(pred_ptr)
    frontier = np.flatnonzero(indeg == 0)
    while frontier.size:
        counts = pred_ptr[frontier + 1] - pred_ptr[frontier]
        rows = frontier[counts > 0]
        if rows.size:
            cnt = counts[counts > 0]
            idx = _concat_slices(pred_ptr[rows], cnt)
            src = pred_ids[idx]
            cand = tl[src] + comps[src] + pred_comm[idx]
            tl[rows] = np.maximum.reduceat(cand, np.cumsum(cnt) - cnt)
        sidx = _concat_slices(
            succ_ptr[frontier], succ_ptr[frontier + 1] - succ_ptr[frontier]
        )
        if sidx.size == 0:
            break
        candidates, dec = np.unique(succ_ids[sidx], return_counts=True)
        indeg[candidates] -= dec
        frontier = candidates[indeg[candidates] == 0]
    graph._prop_cache["tl_arr"] = tl
    return tl


#: Domain separator for the per-task digests (16 bytes, blake2b ``person``).
_SUBHASH_PERSON = b"repro-subhash-v1"


def subgraph_hashes(graph: TaskGraph) -> List[bytes]:
    """Per-task *upward subgraph* digests (16-byte blake2b each; cached).

    ``hash(t)`` covers everything a scheduler's placement of ``t`` can read
    from the graph on the ancestor side: ``comp(t)``, the effective task name
    (:meth:`TaskGraph.name`, so an unset name equals an explicit ``"t<id>"``),
    and the multiset of ``(hash(pred), comm(pred, t))`` pairs.  Two tasks get
    equal digests iff their upward closures are isomorphic with identical
    weights and names — in particular the digests are invariant under edge
    insertion order and, for explicitly named tasks, under
    :meth:`TaskGraph.relabeled` permutations.

    This is the identity the incremental rescheduling plane
    (:mod:`repro.incremental`) diffs: a task whose upward hash (and bottom
    level) is unchanged between two graphs sees exactly the same placement
    inputs, so its base-schedule placement can be reused verbatim.

    One ``O(V + E)`` CSR topological sweep; frozen graphs cache the result
    like :meth:`TaskGraph.fingerprint`.
    """
    graph.freeze()
    cached = graph._prop_cache.get("subh")
    if cached is not None:
        return cached  # type: ignore[return-value]
    digests: List[bytes] = [b""] * graph.num_tasks
    _fill_subgraph_hashes(graph, digests, graph.topological_order)
    graph._prop_cache["subh"] = digests
    return digests


def _fill_subgraph_hashes(
    graph: TaskGraph, digests: List[bytes], tasks: Sequence[int]
) -> None:
    """Compute digests for ``tasks`` (a topological-order subsequence) in
    place, assuming every predecessor outside ``tasks`` is already filled."""
    csr = graph.csr().lists
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    comps = graph.comps
    blake2b = hashlib.blake2b
    pack = struct.pack
    name_of = graph.name
    for t in tasks:
        name = name_of(t).encode()
        lo, hi = pred_ptr[t], pred_ptr[t + 1]
        entries = sorted(
            digests[pred_ids[i]] + pack("<d", pred_comm[i]) for i in range(lo, hi)
        )
        payload = pack("<dI", comps[t], len(name)) + name + b"".join(entries)
        digests[t] = blake2b(
            payload, digest_size=16, person=_SUBHASH_PERSON
        ).digest()


def subgraph_hash_array(graph: TaskGraph) -> npt.NDArray[np.bytes_]:
    """:func:`subgraph_hashes` as a NumPy ``S16`` vector (cached).

    The fixed-width view makes whole-graph digest comparison a single
    vectorized ``==`` — the hot path of the incremental differ.
    """
    graph.freeze()
    cached = graph._prop_cache.get("subh_arr")
    if cached is not None:
        return cached  # type: ignore[return-value]
    result = np.array(subgraph_hashes(graph), dtype="S16")
    graph._prop_cache["subh_arr"] = result
    return result


def static_levels(graph: TaskGraph) -> List[float]:
    """``SL(t)``: bottom level ignoring communication costs (DLS, HLFET)."""
    graph.freeze()
    sl = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for s in graph.succs(t):
            if sl[s] > best:
                best = sl[s]
        sl[t] = graph.comp(t) + best
    return sl


def critical_path_length(graph: TaskGraph) -> float:
    """Length of the longest path including communication (``max_t BL(t)``)."""
    return max(bottom_levels(graph))


def critical_path_tasks(graph: TaskGraph) -> List[int]:
    """One critical path as a list of task ids, entry to exit."""
    graph.freeze()
    bl = bottom_levels(graph)
    tl = top_levels(graph)
    cp = max(bl)
    # Start from an entry task on the critical path, then greedily follow
    # successors that keep TL + BL == CP.
    eps = 1e-9 * max(1.0, cp)
    start = max(
        (t for t in graph.entry_tasks),
        key=lambda t: bl[t],
    )
    path = [start]
    current = start
    while graph.succs(current):
        nxt = None
        for s in graph.succs(current):
            if abs(tl[s] + bl[s] - cp) <= eps and abs(
                tl[current] + graph.comp(current) + graph.comm(current, s) - tl[s]
            ) <= eps:
                nxt = s
                break
        if nxt is None:
            break
        path.append(nxt)
        current = nxt
    return path


def alap_times(graph: TaskGraph) -> List[float]:
    """Latest possible start times, ``ALAP(t) = CP - BL(t)`` (MCP priorities)."""
    bl = bottom_levels(graph)
    cp = max(bl)
    return [cp - b for b in bl]


def ccr(graph: TaskGraph) -> float:
    """Communication-to-computation ratio: mean comm cost / mean comp cost."""
    v = graph.num_tasks
    e = graph.num_edges
    if e == 0:
        return 0.0
    mean_comp = graph.total_comp() / v
    mean_comm = graph.total_comm() / e
    return mean_comm / mean_comp


def parallelism_profile(graph: TaskGraph) -> List[int]:
    """Number of tasks per depth level (depth = longest hop count from entry)."""
    graph.freeze()
    depth = [0] * graph.num_tasks
    for t in graph.topological_order:
        for p in graph.preds(t):
            if depth[p] + 1 > depth[t]:
                depth[t] = depth[p] + 1
    counts: Dict[int, int] = {}
    for d in depth:
        counts[d] = counts.get(d, 0) + 1
    return [counts[d] for d in sorted(counts)]


def width_lower_bound(graph: TaskGraph) -> int:
    """Peak ready-set size of a sequential topological sweep.

    All simultaneously ready tasks are pairwise unconnected, so this is a
    valid antichain size, hence a lower bound on the true width.  ``O(V+E)``.
    """
    graph.freeze()
    remaining = [graph.in_degree(t) for t in graph.tasks()]
    ready: Deque[int] = deque(graph.entry_tasks)
    peak = len(ready)
    while ready:
        t = ready.popleft()
        for s in graph.succs(t):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.append(s)
        if len(ready) > peak:
            peak = len(ready)
    return peak


def transitive_closure_bitsets(graph: TaskGraph) -> List[int]:
    """Reachability sets as Python-int bitsets: bit ``j`` of ``reach[i]`` is
    set iff there is a non-empty path ``i -> j``.

    ``O(V * E)`` word operations on ``V``-bit integers; fast in practice for
    the graph sizes used in the paper.
    """
    graph.freeze()
    n = graph.num_tasks
    reach = [0] * n
    for t in reversed(graph.topological_order):
        r = 0
        for s in graph.succs(t):
            r |= (1 << s) | reach[s]
        reach[t] = r
    return reach


def width(graph: TaskGraph) -> int:
    """Exact task-graph width ``W`` (maximum antichain) via Dilworth.

    The minimum number of chains covering the DAG equals ``V`` minus the size
    of a maximum matching in the bipartite graph whose edges are the pairs of
    the transitive closure, and by Dilworth's theorem the minimum chain cover
    equals the maximum antichain.
    """
    graph.freeze()
    n = graph.num_tasks
    reach = transitive_closure_bitsets(graph)
    adjacency = [_bits(reach[t]) for t in range(n)]
    # Augmenting-path DFS recursion can be as deep as the longest chain.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 1000))
    try:
        matching = _hopcroft_karp(n, adjacency)
    finally:
        sys.setrecursionlimit(old_limit)
    return n - matching


def _bits(mask: int) -> List[int]:
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _hopcroft_karp(n: int, adjacency: Sequence[Sequence[int]]) -> int:
    """Maximum bipartite matching (left = right = 0..n-1).  Returns its size."""
    INF = float("inf")
    match_left: List[int] = [-1] * n
    match_right: List[int] = [-1] * n
    dist: List[float] = [0.0] * n

    def bfs() -> bool:
        queue: Deque[int] = deque()
        for u in range(n):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    matching = 0
    while bfs():
        for u in range(n):
            if match_left[u] == -1 and dfs(u):
                matching += 1
    return matching
