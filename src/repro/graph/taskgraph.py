"""The weighted task-graph (macro-dataflow) program model.

A parallel program is a DAG ``G = (V, E)``: nodes are tasks with a positive
computation cost ``comp(t)``; edges are dependencies with a non-negative
communication cost ``comm(t, t')`` that is paid only when the two endpoints
run on different processors (Section 2 of the paper).

:class:`TaskGraph` is a build-then-freeze structure: tasks and edges are
added freely, then :meth:`TaskGraph.freeze` validates acyclicity, fixes a
topological order, and makes the graph immutable.  All schedulers require a
frozen graph; freezing is idempotent and returns the graph itself, so
``schedule(g.freeze(), ...)`` is always safe.

Tasks are dense integer ids ``0..V-1`` (assigned in insertion order) with an
optional human-readable name used by traces, Gantt charts, and DOT export.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np
import numpy.typing as npt

from repro.exceptions import CycleError, FrozenGraphError, GraphError

__all__ = ["TaskGraph", "AdjacencyCSR", "CSRLists"]

IntArray = npt.NDArray[np.int64]
FloatArray = npt.NDArray[np.float64]


class CSRLists(NamedTuple):
    """The CSR arrays mirrored into plain Python lists.

    CPython indexes a list roughly three times faster than a NumPy array
    (every ``ndarray[i]`` allocates a NumPy scalar), so the interpreted
    scheduling kernels run their scalar loops over these mirrors while the
    vectorized/numba paths use the ndarrays directly.  Built once per frozen
    graph and cached (:attr:`AdjacencyCSR.lists`).
    """

    pred_ptr: List[int]
    pred_ids: List[int]
    pred_comm: List[float]
    succ_ptr: List[int]
    succ_ids: List[int]
    succ_comm: List[float]


@dataclass(frozen=True)
class AdjacencyCSR:
    """Flat compressed-sparse-row view of a frozen :class:`TaskGraph`.

    Predecessors of task ``t`` are ``pred_ids[pred_ptr[t]:pred_ptr[t+1]]``
    (ascending id order, matching :meth:`TaskGraph.preds`) with the edge's
    communication cost at the same index in ``pred_comm``; ``succ_*`` is the
    mirrored successor view.  The arrays are contiguous NumPy int64/float64
    buffers, so the array-native scheduling kernel
    (:mod:`repro.core.flb_array`), the vectorized graph properties
    (:mod:`repro.graph.properties`) and the shared-memory graph codec
    (:mod:`repro.graphstore`) all operate on the one representation without
    copies; interpreted kernels iterate the cached :attr:`lists` mirrors —
    see ``docs/performance.md``.
    """

    pred_ptr: IntArray  # int64, length V+1
    pred_ids: IntArray  # int64, length E
    pred_comm: FloatArray  # float64, length E
    succ_ptr: IntArray  # int64, length V+1
    succ_ids: IntArray  # int64, length E
    succ_comm: FloatArray  # float64, length E

    @cached_property
    def lists(self) -> CSRLists:
        """Plain-list mirrors of the six arrays (cached; read-only by contract)."""
        return CSRLists(
            self.pred_ptr.tolist(),
            self.pred_ids.tolist(),
            self.pred_comm.tolist(),
            self.succ_ptr.tolist(),
            self.succ_ids.tolist(),
            self.succ_comm.tolist(),
        )

    def in_degrees(self) -> List[int]:
        """Per-task predecessor counts as a plain list (hot-loop friendly)."""
        counts: List[int] = np.diff(self.pred_ptr).tolist()
        return counts

    def in_degrees_array(self) -> IntArray:
        """Per-task predecessor counts as an int64 vector (array kernels)."""
        return np.diff(self.pred_ptr)


class TaskGraph:
    """A directed acyclic task graph with computation and communication costs.

    >>> g = TaskGraph()
    >>> a = g.add_task(2.0, name="a")
    >>> b = g.add_task(3.0, name="b")
    >>> g.add_edge(a, b, comm=1.0)
    >>> g.freeze()                                      # doctest: +ELLIPSIS
    <TaskGraph V=2 E=1 ...>
    >>> g.comp(b), g.comm(a, b), g.succs(a)
    (3.0, 1.0, (1,))
    """

    __slots__ = (
        "_comp",
        "_names",
        "_edges",
        "_succs",
        "_preds",
        "_frozen",
        "_topo",
        "_entries",
        "_exits",
        "_csr",
        "_comps_np",
        "_prop_cache",
        "_fingerprint",
    )

    def __init__(self) -> None:
        self._comp: List[float] = []
        self._names: List[Optional[str]] = []
        self._edges: Dict[Tuple[int, int], float] = {}
        self._succs: List[Tuple[int, ...]] = []
        self._preds: List[Tuple[int, ...]] = []
        self._frozen = False
        self._topo: Tuple[int, ...] = ()
        self._entries: Tuple[int, ...] = ()
        self._exits: Tuple[int, ...] = ()
        self._csr: Optional[AdjacencyCSR] = None
        self._comps_np: Optional[FloatArray] = None
        # Memoized graph-pure derived quantities (bottom levels, per-machine
        # edge delays, ...), valid once frozen — the graph is immutable from
        # then on.  Owned by repro.graph.properties / the scheduling kernels.
        self._prop_cache: Dict[object, object] = {}
        self._fingerprint: Optional[str] = None

    # -- construction -------------------------------------------------------

    def add_task(self, comp: float, name: Optional[str] = None) -> int:
        """Add a task with computation cost ``comp`` (> 0); return its id."""
        self._check_mutable()
        comp = float(comp)
        if not comp > 0:
            raise GraphError(f"task computation cost must be positive, got {comp}")
        self._comp.append(comp)
        self._names.append(name)
        return len(self._comp) - 1

    def add_tasks(
        self,
        comps: Iterable[float],
        names: Optional[Iterable[Optional[str]]] = None,
    ) -> List[int]:
        """Add several tasks; return their ids in order.

        ``names``, when given, is a parallel iterable of task names (``None``
        entries leave the default ``t<id>`` name); it must have exactly one
        entry per computation cost.
        """
        comps = list(comps)
        if names is None:
            return [self.add_task(c) for c in comps]
        names = list(names)
        if len(names) != len(comps):
            raise GraphError(
                f"names must parallel comps: got {len(names)} names "
                f"for {len(comps)} tasks"
            )
        return [self.add_task(c, name=n) for c, n in zip(comps, names)]

    def add_edge(self, src: int, dst: int, comm: float = 0.0) -> None:
        """Add a dependency ``src -> dst`` with communication cost ``comm``."""
        self._check_mutable()
        self._check_task(src)
        self._check_task(dst)
        if src == dst:
            raise GraphError(f"self-loop on task {src}")
        comm = float(comm)
        if comm < 0:
            raise GraphError(f"communication cost must be non-negative, got {comm}")
        if (src, dst) in self._edges:
            raise GraphError(f"duplicate edge ({src}, {dst})")
        self._edges[(src, dst)] = comm

    def set_name(self, task: int, name: str) -> None:
        self._check_mutable()
        self._check_task(task)
        self._names[task] = name

    def freeze(self) -> "TaskGraph":
        """Validate the DAG, fix a topological order, and make immutable.

        Idempotent.  Raises :class:`~repro.exceptions.CycleError` if the
        graph has a cycle and :class:`~repro.exceptions.GraphError` if it is
        empty.
        """
        if self._frozen:
            return self
        n = len(self._comp)
        if n == 0:
            raise GraphError("task graph has no tasks")
        # CSR first (it needs no topological order), then Kahn over its
        # list mirrors — the adjacency is materialized exactly once.
        csr = self._compile_csr()
        lists = csr.lists
        succ_ptr, succ_ids = lists.succ_ptr, lists.succ_ids
        pred_ptr, pred_ids = lists.pred_ptr, lists.pred_ids
        # Kahn's algorithm; FIFO over ids keeps the order deterministic.
        indeg = csr.in_degrees()
        frontier = [t for t in range(n) if indeg[t] == 0]
        topo: List[int] = []
        head = 0
        while head < len(frontier):
            t = frontier[head]
            head += 1
            topo.append(t)
            for j in range(succ_ptr[t], succ_ptr[t + 1]):
                s = succ_ids[j]
                indeg[s] -= 1
                if indeg[s] == 0:
                    frontier.append(s)
        if len(topo) != n:
            # Name an actual cycle, not just the stuck tasks: the graphlint
            # witness finder walks one back edge to a concrete path.
            # Imported lazily — repro.verify.graphlint imports this module.
            from repro.verify.graphlint import find_cycle

            witness = find_cycle(n, self._edges.keys())
            if witness is not None:
                path = " -> ".join(self.name(t) for t in witness)
                raise CycleError(f"task graph contains a cycle: {path}")
            stuck = sorted(t for t in range(n) if indeg[t] > 0)
            raise CycleError(
                f"task graph contains a cycle through tasks {stuck[:10]}"
            )
        # CSR slices are already in ascending-id order, so the tuple views
        # come straight off the mirrors without re-sorting.
        self._succs = [
            tuple(succ_ids[succ_ptr[t]:succ_ptr[t + 1]]) for t in range(n)
        ]
        self._preds = [
            tuple(pred_ids[pred_ptr[t]:pred_ptr[t + 1]]) for t in range(n)
        ]
        self._topo = tuple(topo)
        self._entries = tuple(t for t in range(n) if not self._preds[t])
        self._exits = tuple(t for t in range(n) if not self._succs[t])
        self._csr = csr
        self._frozen = True
        return self

    def _compile_csr(self) -> AdjacencyCSR:
        """Flatten the adjacency into NumPy CSR arrays (one-time, ``O(V + E)``).

        Built directly from the edge dictionary with two ``lexsort`` passes
        instead of a per-edge Python loop, so freezing a million-task graph
        costs a handful of vectorized sweeps.  The successor view is sorted
        by ``(src, dst)`` and the predecessor view by ``(dst, src)`` —
        exactly the ascending-id slice order of :meth:`succs`/:meth:`preds`.
        """
        n = len(self._comp)
        e = len(self._edges)
        if e == 0:
            zeros = np.zeros(n + 1, dtype=np.int64)
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            return AdjacencyCSR(zeros, empty_i, empty_f, zeros.copy(), empty_i.copy(), empty_f.copy())
        src = np.fromiter((k[0] for k in self._edges), dtype=np.int64, count=e)
        dst = np.fromiter((k[1] for k in self._edges), dtype=np.int64, count=e)
        comm = np.fromiter(self._edges.values(), dtype=np.float64, count=e)
        by_src = np.lexsort((dst, src))
        succ_ids = dst[by_src]
        succ_comm = comm[by_src]
        succ_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=succ_ptr[1:])
        by_dst = np.lexsort((src, dst))
        pred_ids = src[by_dst]
        pred_comm = comm[by_dst]
        pred_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dst, minlength=n), out=pred_ptr[1:])
        return AdjacencyCSR(pred_ptr, pred_ids, pred_comm, succ_ptr, succ_ids, succ_comm)

    # -- queries -------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def num_tasks(self) -> int:
        """``V`` — the number of tasks."""
        return len(self._comp)

    @property
    def num_edges(self) -> int:
        """``E`` — the number of dependencies."""
        return len(self._edges)

    def tasks(self) -> range:
        return range(len(self._comp))

    def comp(self, task: int) -> float:
        """Computation cost of ``task``."""
        return self._comp[task]

    @property
    def comps(self) -> Tuple[float, ...]:
        """All computation costs, indexed by task id."""
        return tuple(self._comp)

    def comps_array(self) -> FloatArray:
        """Computation costs as a float64 vector (cached; frozen graphs only)."""
        self._check_frozen()
        if self._comps_np is None:
            self._comps_np = np.asarray(self._comp, dtype=np.float64)
        return self._comps_np

    def name(self, task: int) -> str:
        name = self._names[task]
        return name if name is not None else f"t{task}"

    def comm(self, src: int, dst: int) -> float:
        """Communication cost of edge ``src -> dst`` (KeyError if absent)."""
        return self._edges[(src, dst)]

    def has_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self._edges

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, comm)`` triples in insertion order."""
        for (src, dst), comm in self._edges.items():
            yield src, dst, comm

    def succs(self, task: int) -> Tuple[int, ...]:
        """Successor ids of ``task`` (frozen graphs only)."""
        self._check_frozen()
        return self._succs[task]

    def preds(self, task: int) -> Tuple[int, ...]:
        """Predecessor ids of ``task`` (frozen graphs only)."""
        self._check_frozen()
        return self._preds[task]

    def csr(self) -> AdjacencyCSR:
        """Flat CSR adjacency view, compiled on :meth:`freeze`.

        The fast scheduling kernels iterate this instead of the tuple-keyed
        edge dictionary; the dict API stays authoritative for construction,
        traces, and serialization.  Frozen graphs only.
        """
        self._check_frozen()
        assert self._csr is not None
        return self._csr

    def in_degree(self, task: int) -> int:
        self._check_frozen()
        return len(self._preds[task])

    def out_degree(self, task: int) -> int:
        self._check_frozen()
        return len(self._succs[task])

    @property
    def topological_order(self) -> Tuple[int, ...]:
        self._check_frozen()
        return self._topo

    @property
    def entry_tasks(self) -> Tuple[int, ...]:
        """Tasks with no input edges."""
        self._check_frozen()
        return self._entries

    @property
    def exit_tasks(self) -> Tuple[int, ...]:
        """Tasks with no output edges."""
        self._check_frozen()
        return self._exits

    def fingerprint(self) -> str:
        """Stable content hash of the graph (32 hex chars, blake2b-128).

        Two graphs with the same computation costs, the same weighted edge
        set, and the same effective task names (:meth:`name`, so an unset
        name equals an explicit ``"t<id>"``) have the same fingerprint —
        regardless of edge insertion order, ``copy()``, pickling, or the
        process computing it.  Any change to a comp, a communication cost,
        an edge, or a name changes it.

        This is the identity key of the zero-copy graph plane: the
        shared-memory registry (:mod:`repro.graphstore`) and the
        content-addressed result cache (:mod:`repro.resultcache`) are both
        addressed by it.  Frozen graphs cache the digest; mutable graphs
        recompute on every call.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        h = hashlib.blake2b(digest_size=16)
        n = len(self._comp)
        h.update(b"repro-taskgraph-v1")
        h.update(struct.pack("<Q", n))
        h.update(struct.pack(f"<{n}d", *self._comp))
        for t in range(n):
            name = self.name(t).encode()
            h.update(struct.pack("<I", len(name)))
            h.update(name)
        h.update(struct.pack("<Q", len(self._edges)))
        for (src, dst), comm in sorted(self._edges.items()):
            h.update(struct.pack("<QQd", src, dst, comm))
        digest = h.hexdigest()
        if self._frozen:
            self._fingerprint = digest
        return digest

    def memo_get(self, key: object) -> Any:
        """Read a graph-pure memo slot (``None`` when absent).

        The public face of the property cache for code outside
        :mod:`repro.graph`: derived quantities that depend only on the
        (frozen, hence immutable) graph — bottom-level vectors,
        machine-keyed edge delays, subgraph digests — memoized under any
        hashable key.  Frozen graphs only: a mutable graph could
        invalidate the memo after the fact.
        """
        self._check_frozen()
        return self._prop_cache.get(key)

    def memo_set(self, key: object, value: object) -> None:
        """Store a graph-pure derived quantity under ``key``.

        The value must be a pure function of the frozen graph (plus
        whatever parameters are folded into ``key``) — the memo is shared
        by every consumer of this graph instance and copied by
        :meth:`copy`.  Frozen graphs only.
        """
        self._check_frozen()
        self._prop_cache[key] = value

    def total_comp(self) -> float:
        """Sum of all computation costs (sequential execution time)."""
        return sum(self._comp)

    def total_comm(self) -> float:
        """Sum of all communication costs."""
        return sum(self._edges.values())

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return f"<TaskGraph V={self.num_tasks} E={self.num_edges} {state}>"

    # -- helpers ---------------------------------------------------------------

    def copy(self, mutable: bool = False) -> "TaskGraph":
        """Return a copy; ``mutable=True`` yields an unfrozen copy.

        Frozen-to-frozen copies share the immutable derived state (CSR
        arrays, topological order, cached properties, fingerprint, subgraph
        hashes) instead of recompiling and re-hashing it — the batch/serve
        planes copy structurally unchanged graphs on every dispatch.
        """
        g = TaskGraph()
        g._comp = list(self._comp)
        g._names = list(self._names)
        g._edges = dict(self._edges)
        if self._frozen and not mutable:
            g._succs = list(self._succs)
            g._preds = list(self._preds)
            g._topo = self._topo
            g._entries = self._entries
            g._exits = self._exits
            g._csr = self._csr
            g._comps_np = self._comps_np
            g._prop_cache = dict(self._prop_cache)
            g._fingerprint = self._fingerprint
            g._frozen = True
        return g

    def relabeled(self, permutation: Sequence[int]) -> "TaskGraph":
        """Return a copy with task ids renamed by ``permutation``.

        ``permutation[old_id] == new_id``; used by tests to check that
        schedulers do not depend on accidental id ordering beyond their
        documented tie-breaking.
        """
        n = self.num_tasks
        if sorted(permutation) != list(range(n)):
            raise GraphError("relabeling must be a permutation of task ids")
        g = TaskGraph()
        g._comp = [0.0] * n
        g._names = [None] * n
        for old in range(n):
            g._comp[permutation[old]] = self._comp[old]
            g._names[permutation[old]] = self._names[old]
        for (src, dst), comm in self._edges.items():
            g._edges[(permutation[src], permutation[dst])] = comm
        if self._frozen:
            g.freeze()
        return g

    def _check_task(self, task: int) -> None:
        if not 0 <= task < len(self._comp):
            raise GraphError(f"unknown task id {task}")

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenGraphError("task graph is frozen")

    def _check_frozen(self) -> None:
        if not self._frozen:
            raise GraphError("operation requires a frozen task graph; call freeze()")
