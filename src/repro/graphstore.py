"""Zero-copy graph plane: a shared-memory task-graph registry.

The batch front-end (:mod:`repro.batch`) used to pickle the entire
``O(V + E)`` :class:`~repro.graph.taskgraph.TaskGraph` over a ``Pipe`` for
*every* job, so a sweep of 30 ``(procs, algo)`` jobs over one 2000-task
graph shipped the same quarter-megabyte graph 30 times — the transport
dwarfed the near-linear scheduling kernel it fed.  This module separates
graph *transport* from job *dispatch*:

* :class:`GraphStore` (supervisor side) registers a frozen graph **once**
  into POSIX shared memory (:mod:`multiprocessing.shared_memory`) as flat
  arrays — the computation costs plus the CSR adjacency compiled by
  ``TaskGraph.freeze()`` — keyed by the graph's stable content hash
  (:meth:`~repro.graph.taskgraph.TaskGraph.fingerprint`).  Registration is
  idempotent per fingerprint; jobs then carry the small segment *name*
  instead of the graph.
* :func:`attach` (worker side) opens the segment zero-copy, rebuilds a
  frozen :class:`TaskGraph` from the flat arrays (one bulk ``frombytes``
  per array instead of unpickling a Python object web), closes the mapping
  immediately, and holds the decoded graph in a small per-process LRU —
  so a worker that serves 30 jobs on the same graph decodes it exactly
  once.

Lifecycle is strictly supervisor-owned: workers only ever ``close()`` their
attachment, never ``unlink()``.  The store unlinks every segment in
:meth:`GraphStore.close` (also wired through ``with``, a
``weakref.finalize`` at garbage collection, and the caller's
``try/finally`` in :func:`repro.batch.schedule_many`), so a worker that is
``SIGKILL``-ed mid-job can never strand a ``/dev/shm/repro_*`` segment —
the kernel drops its mapping with the process and the supervisor still
owns the name.

The rebuilt graph is *bit-identical* for scheduling purposes: computation
and communication costs cross the boundary as binary IEEE doubles (never
text), and ``freeze()`` on identical structure reproduces the identical
topological order, so deterministic schedulers return placements with the
same float start times they would produce on the original object.
"""

from __future__ import annotations

import json
import os
import struct
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "GraphStore",
    "GraphStoreError",
    "attach",
    "encode_graph",
    "decode_graph",
    "worker_cache_info",
    "clear_worker_cache",
    "SEGMENT_PREFIX",
    "WORKER_CACHE_SIZE",
]

#: Every segment name starts with this, so a leak check is one glob over
#: ``/dev/shm`` (see the CI workflow and tests/test_graphstore.py).
SEGMENT_PREFIX = "repro_tg"

#: Decoded graphs kept per worker process (override: ``REPRO_GRAPH_CACHE``).
#: Batches rarely interleave more than a handful of distinct graphs per
#: worker; keeping this small bounds worker memory to a few graphs.
WORKER_CACHE_SIZE = max(1, int(os.environ.get("REPRO_GRAPH_CACHE", "4") or 4))

_MAGIC = b"RPTG"
#: v2: CSR pointers/ids are int64 (was int32) so the wire format is byte-for-
#: byte the NumPy buffers ``TaskGraph.freeze()`` holds — encode and the array
#: scheduling kernel share one representation without a widening copy.
_VERSION = 2
_HEADER = struct.Struct("<4sHQQQ")  # magic, version, V, E, names_len


class GraphStoreError(GraphError):
    """A graph-plane registry/attach failure (bad segment, unknown key)."""


# -- flat-array codec --------------------------------------------------------


def encode_graph(graph: TaskGraph) -> bytes:
    """Serialise a frozen graph to the flat-array wire format.

    Layout (all little-endian, no alignment padding)::

        header   : magic "RPTG", version, V, E, names_len
        comps    : V   float64
        pred_ptr : V+1 int64      succ_ptr : V+1 int64
        pred_ids : E   int64      succ_ids : E   int64
        pred_comm: E   float64    succ_comm: E   float64
        names    : names_len bytes (JSON list; null = unnamed task)

    The six CSR arrays are exactly ``TaskGraph._compile_csr()``'s NumPy
    buffers, dumped with ``ndarray.tobytes`` — encoding is ``O(V + E)``
    memcpy, not a per-object pickle walk.
    """
    if not graph.frozen:
        raise GraphStoreError("only frozen graphs can be registered; call freeze()")
    csr = graph.csr()
    names_blob = json.dumps(
        [graph._names[t] for t in graph.tasks()], ensure_ascii=False
    ).encode()
    parts = [
        _HEADER.pack(_MAGIC, _VERSION, graph.num_tasks, graph.num_edges,
                     len(names_blob)),
        np.asarray(graph._comp, dtype=np.float64).tobytes(),
        csr.pred_ptr.tobytes(),
        csr.pred_ids.tobytes(),
        csr.pred_comm.tobytes(),
        csr.succ_ptr.tobytes(),
        csr.succ_ids.tobytes(),
        csr.succ_comm.tobytes(),
        names_blob,
    ]
    return b"".join(parts)


def decode_graph(buf: "bytes | memoryview") -> TaskGraph:
    """Rebuild a frozen :class:`TaskGraph` from :func:`encode_graph` bytes.

    ``buf`` may be any buffer (``bytes``, ``memoryview`` over shared
    memory); it may be longer than the payload (shm segments are rounded up
    to page size) — lengths come from the header.
    """
    mv = memoryview(buf)
    try:
        if len(mv) < _HEADER.size:
            raise GraphStoreError(f"graph segment too short ({len(mv)} bytes)")
        magic, version, n, e, names_len = _HEADER.unpack_from(mv, 0)
        if magic != _MAGIC:
            raise GraphStoreError(f"bad graph segment magic {magic!r}")
        if version != _VERSION:
            raise GraphStoreError(f"unsupported graph segment version {version}")

        def take(dtype: "type[np.generic]", count: int, offset: int) -> Tuple[np.ndarray, int]:
            nbytes = count * np.dtype(dtype).itemsize
            if offset + nbytes > len(mv):
                raise GraphStoreError("truncated graph segment")
            # Copy out of the shared mapping: the decoded graph must outlive
            # the segment (the supervisor may unlink it at any time).
            arr = np.frombuffer(mv[offset:offset + nbytes], dtype=dtype).copy()
            return arr, offset + nbytes

        off = _HEADER.size
        comps, off = take(np.float64, n, off)
        _pred_ptr, off = take(np.int64, n + 1, off)
        _pred_ids, off = take(np.int64, e, off)
        _pred_comm, off = take(np.float64, e, off)
        succ_ptr, off = take(np.int64, n + 1, off)
        succ_ids, off = take(np.int64, e, off)
        succ_comm, off = take(np.float64, e, off)
        if off + names_len > len(mv):
            raise GraphStoreError("truncated graph segment (names)")
        names = json.loads(bytes(mv[off:off + names_len]).decode())
        if len(names) != n:
            raise GraphStoreError(
                f"graph segment names/tasks mismatch ({len(names)} vs {n})"
            )
    finally:
        mv.release()

    g = TaskGraph()
    g._comp = comps.tolist()
    g._names = list(names)
    # One bulk pass instead of a per-edge Python loop: repeat each source id
    # by its out-degree, then zip against the CSR successor slices.
    src_rep = np.repeat(np.arange(n, dtype=np.int64), np.diff(succ_ptr))
    g._edges = dict(
        zip(zip(src_rep.tolist(), succ_ids.tolist()), succ_comm.tolist())
    )
    if n:
        g.freeze()
    return g


# -- supervisor side: the registry -------------------------------------------


class GraphStore:
    """Supervisor-side registry of shared-memory graph segments.

    ``register()`` is idempotent per content fingerprint and returns the
    segment *name* — the key a :class:`~repro.batch.BatchJob` carries over
    the pipe instead of the graph.  The store owns every segment it
    created: ``close()`` (or ``with``, or garbage collection) unlinks them
    all; :func:`attach` on the worker side never unlinks.
    """

    def __init__(self) -> None:
        # fingerprint -> (SharedMemory, payload size)
        self._segments: Dict[str, Tuple[shared_memory.SharedMemory, int]] = {}
        self._names: Dict[str, str] = {}  # segment name -> fingerprint
        self._seq = 0
        self._closed = False
        # Belt and braces: unlink at GC / interpreter exit even if the
        # owner forgot close() (the multiprocessing resource tracker is the
        # final backstop for a crashed supervisor).
        self._finalizer = weakref.finalize(
            self, GraphStore._unlink_all, self._segments
        )

    # NB: staticmethod taking the dict (not self) so the finalizer holds no
    # reference cycle back to the store.
    @staticmethod
    def _unlink_all(segments: Dict[str, Tuple[shared_memory.SharedMemory, int]]) -> None:
        for shm, _size in segments.values():
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        segments.clear()

    def register(self, graph: TaskGraph, fingerprint: Optional[str] = None) -> str:
        """Publish ``graph`` (frozen) into shared memory; return its key.

        Re-registering a graph with the same content is free and returns
        the existing segment's name.
        """
        if self._closed:
            raise GraphStoreError("graph store is closed")
        if not graph.frozen:
            raise GraphStoreError(
                "only frozen graphs can be registered; call freeze()"
            )
        fp = fingerprint if fingerprint is not None else graph.fingerprint()
        entry = self._segments.get(fp)
        if entry is not None:
            return entry[0].name
        blob = encode_graph(graph)
        # The fingerprint alone is not a safe segment name: two stores (or
        # a crashed predecessor) may hold the same content, and POSIX shm
        # names are a global namespace.  pid + sequence disambiguates.
        name = f"{SEGMENT_PREFIX}_{fp[:16]}_{os.getpid():x}_{self._seq:x}"
        self._seq += 1
        shm = shared_memory.SharedMemory(name=name, create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        self._segments[fp] = (shm, len(blob))
        self._names[shm.name] = fp
        return shm.name

    def fingerprint_of(self, name: str) -> Optional[str]:
        """The content fingerprint behind a segment name (None if unknown)."""
        return self._names.get(name)

    def release(self, name: str) -> None:
        """Unlink one segment by name (no-op for unknown names)."""
        fp = self._names.pop(name, None)
        if fp is None:
            return
        shm, _size = self._segments.pop(fp)
        try:
            shm.close()
        except OSError:
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def close(self) -> None:
        """Unlink every registered segment.  Idempotent."""
        self._closed = True
        self._finalizer.detach()
        GraphStore._unlink_all(self._segments)
        self._names.clear()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._segments

    @property
    def closed(self) -> bool:
        return self._closed

    def total_bytes(self) -> int:
        """Payload bytes currently registered (excludes page rounding)."""
        return sum(size for _shm, size in self._segments.values())

    def stats(self) -> Dict[str, int]:
        return {"graphs": len(self._segments), "bytes": self.total_bytes()}

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self)} graph(s)"
        return f"<GraphStore {state}, {self.total_bytes()} bytes>"


# -- worker side: attach + per-process LRU -----------------------------------


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    CPython < 3.13 registers *attachments* with the multiprocessing
    resource tracker as if the attaching process owned the segment
    (bpo-38119).  Under the ``fork`` start method every worker shares the
    supervisor's tracker, so a worker-side registration/unregistration
    corrupts the supervisor's own bookkeeping (spurious unlinks or KeyError
    noise at shutdown).  Ownership lives with :class:`GraphStore` alone:
    attachments must be invisible to the tracker — via ``track=False``
    where available (3.13+), else by stubbing out ``register`` for the
    duration of the open.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


_worker_cache: "OrderedDict[str, TaskGraph]" = OrderedDict()
_worker_cache_hits = 0
_worker_cache_misses = 0


def attach(name: str, cache_size: Optional[int] = None) -> TaskGraph:
    """Resolve a graph key to a frozen graph (worker side).

    Opens the shared segment read-only, decodes it into a process-local
    frozen :class:`TaskGraph`, **closes the mapping immediately** (the
    supervisor owns unlinking; a worker holds no shm state between jobs),
    and memoises the decoded graph in a small per-process LRU — repeated
    jobs on the same graph decode it exactly once per worker.
    """
    global _worker_cache_hits, _worker_cache_misses
    cached = _worker_cache.get(name)
    if cached is not None:
        _worker_cache.move_to_end(name)
        _worker_cache_hits += 1
        return cached
    _worker_cache_misses += 1
    try:
        shm = _open_untracked(name)
    except FileNotFoundError:
        raise GraphStoreError(
            f"graph segment {name!r} does not exist (store closed or never "
            f"registered)"
        ) from None
    try:
        graph = decode_graph(shm.buf)
    finally:
        shm.close()
    limit = WORKER_CACHE_SIZE if cache_size is None else max(1, cache_size)
    _worker_cache[name] = graph
    while len(_worker_cache) > limit:
        _worker_cache.popitem(last=False)
    return graph


def worker_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of this process's decoded-graph LRU."""
    return {
        "hits": _worker_cache_hits,
        "misses": _worker_cache_misses,
        "size": len(_worker_cache),
        "capacity": WORKER_CACHE_SIZE,
    }


def clear_worker_cache() -> None:
    """Drop this process's decoded graphs (tests; harmless elsewhere)."""
    global _worker_cache_hits, _worker_cache_misses
    _worker_cache.clear()
    _worker_cache_hits = 0
    _worker_cache_misses = 0


def list_segments() -> List[str]:
    """Names of live ``repro_tg_*`` segments visible in ``/dev/shm``.

    Linux-only diagnostic (returns ``[]`` where /dev/shm does not exist);
    the leak tests and the CI check are built on it.
    """
    base = "/dev/shm"
    try:
        entries = os.listdir(base)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
