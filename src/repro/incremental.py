"""Incremental rescheduling: diff two frozen graphs, reuse a schedule prefix.

Real serving traffic mutates DAGs (append a pipeline stage, retune a few
task weights) rather than submitting fresh graphs.  List-scheduling
decisions depend only on the already-placed frontier, so the prefix of a
base schedule whose inputs are unchanged is reusable verbatim — this module
computes *how much* of it is.

Identity of a placement's inputs
--------------------------------

FLB's selection of the ``k``-th placement reads, for every candidate task:
its computation cost, its predecessors' finish times and placements plus
the per-edge communication delays (``LMT``/``EMT``/``EST``), its bottom
level (the heap tie key), and its id.  Two per-task quantities therefore
certify reuse between a base graph and a new graph sharing the id space:

* the **upward subgraph hash** (:func:`repro.graph.properties.subgraph_hashes`)
  — equal iff the whole ancestor side (comps, names, in-edges, recursively)
  is unchanged, and
* the **bottom level** — equal iff the descendant side the tie-break reads
  is unchanged.

A task with both unchanged is *clean*.  The maximal reusable prefix is then
``reuse_steps`` = the largest ``k`` such that (a) the first ``k`` tasks of
the base placement order are all clean, and (b) no dirty task of the new
graph can enter the ready set before step ``k`` (a dirty task whose
predecessors are all clean becomes ready right after its last predecessor's
base placement; dirty tasks with a dirty predecessor become ready later by
induction).  Until step ``reuse_steps`` a cold run on the new graph makes
exactly the base run's choices: dirty tasks are absent from every ready
list, and a base-run heap entry that is *not selected* cannot change which
task is selected (removing a heap minimum only raises the opposing
candidate's key, preserving every Theorem-3 comparison the base run made).

The hashes themselves are computed *incrementally* against the base: a raw
vectorized diff (comps, names, pred-CSR rows) seeds a descendant closure,
unaffected digests are copied from the base, and only affected tasks are
re-hashed — ``O(dirty)`` blake2b calls instead of ``O(V)``.

:class:`ScheduleBaseCache` is the process-global bounded LRU of warm bases
(``fingerprint -> Schedule``) the batch/serve planes consult.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import numpy.typing as npt

from repro.graph.properties import (
    _concat_slices,
    _fill_subgraph_hashes,
    bottom_levels_array,
    subgraph_hash_array,
    subgraph_hashes,
)
from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = [
    "GraphDiff",
    "diff_prefix",
    "incremental_subgraph_hashes",
    "ScheduleBaseCache",
    "base_cache",
]

BoolArray = npt.NDArray[np.bool_]


@dataclass(frozen=True)
class GraphDiff:
    """Result of diffing a base schedule's graph against a new graph."""

    reuse_steps: int  #: placements of the base order that replay verbatim
    total: int  #: tasks in the new graph
    changed: int  #: tasks whose own comp/name/in-edges differ (raw diff)
    dirty: int  #: changed tasks plus their descendants (hash-dirty closure)
    bl_dirty: int  #: tasks whose bottom level changed (tie-key dirty)

    @property
    def reuse_fraction(self) -> float:
        return self.reuse_steps / self.total if self.total else 0.0


def _raw_changed(base: TaskGraph, new: TaskGraph) -> BoolArray:
    """Tasks of ``new`` whose *own* placement inputs differ from the task
    with the same id in ``base``: computation cost, effective name, or
    predecessor row (ids and communication costs).  Ids absent from
    ``base`` are changed by definition.  Fully vectorized over the CSR."""
    vb, vn = base.num_tasks, new.num_tasks
    vc = min(vb, vn)
    changed = np.zeros(vn, dtype=bool)
    if vn > vc:
        changed[vc:] = True
    changed[:vc] |= base.comps_array()[:vc] != new.comps_array()[:vc]
    names_b, names_n = base._names, new._names
    if names_b[:vc] != names_n[:vc]:
        for i in range(vc):
            a, b = names_b[i], names_n[i]
            if a != b and (a or f"t{i}") != (b or f"t{i}"):
                changed[i] = True
    csr_b, csr_n = base.csr(), new.csr()
    deg_b = np.diff(csr_b.pred_ptr)[:vc]
    deg_n = np.diff(csr_n.pred_ptr)[:vc]
    deg_mismatch = deg_b != deg_n
    changed[:vc] |= deg_mismatch
    rows = np.flatnonzero(~deg_mismatch & (deg_b > 0))
    if rows.size:
        cnt = deg_b[rows]
        idx_b = _concat_slices(csr_b.pred_ptr[rows], cnt)
        idx_n = _concat_slices(csr_n.pred_ptr[rows], cnt)
        mism = (csr_b.pred_ids[idx_b] != csr_n.pred_ids[idx_n]) | (
            csr_b.pred_comm[idx_b] != csr_n.pred_comm[idx_n]
        )
        changed[rows] |= np.logical_or.reduceat(mism, np.cumsum(cnt) - cnt)
    return changed


def _descendant_closure(graph: TaskGraph, seed: BoolArray) -> BoolArray:
    """``seed`` plus every task reachable from it (vectorized frontier)."""
    csr = graph.csr()
    succ_ptr, succ_ids = csr.succ_ptr, csr.succ_ids
    affected = seed.copy()
    frontier = np.flatnonzero(seed)
    while frontier.size:
        counts = succ_ptr[frontier + 1] - succ_ptr[frontier]
        idx = _concat_slices(succ_ptr[frontier], counts)
        if idx.size == 0:
            break
        succs = np.unique(succ_ids[idx])
        fresh = succs[~affected[succs]]
        affected[fresh] = True
        frontier = fresh
    return affected


def _seed_hashes(new: TaskGraph, base: TaskGraph, dirty: BoolArray) -> None:
    """Fill ``new``'s digest cache: copy base digests outside ``dirty``
    (their upward closures are bitwise identical, so the digests provably
    match a full sweep), re-hash the dirty tasks in topological order."""
    if new.memo_get("subh") is not None:
        return
    vn = new.num_tasks
    vc = min(base.num_tasks, vn)
    digests_base = subgraph_hashes(base)
    digests: List[bytes] = digests_base[:vc] + [b""] * (vn - vc)
    topo = np.asarray(new.topological_order, dtype=np.int64)
    dirty_topo = topo[dirty[topo]]
    _fill_subgraph_hashes(new, digests, dirty_topo.tolist())
    new.memo_set("subh", digests)


def incremental_subgraph_hashes(new: TaskGraph, base: TaskGraph) -> BoolArray:
    """Populate ``new``'s subgraph-hash cache by diffing against ``base``.

    ``O(dirty)`` blake2b calls plus vectorized ``O(V + E)`` array sweeps.
    Returns the dirty mask (raw-changed tasks and their descendants).
    After this call :func:`~repro.graph.properties.subgraph_hashes` /
    :func:`~repro.graph.properties.subgraph_hash_array` on ``new`` are free.
    """
    new.freeze()
    base.freeze()
    dirty = _descendant_closure(new, _raw_changed(base, new))
    _seed_hashes(new, base, dirty)
    return dirty


def diff_prefix(base: Schedule, new: TaskGraph) -> GraphDiff:
    """Diff ``base``'s graph against ``new``; compute the reusable prefix.

    The machine view and tie rule are the caller's to check (the warm-start
    entry in :mod:`repro.core.flb_array` does); this function is purely
    graph-side.  ``base`` must be complete.
    """
    new.freeze()
    graph_b = base.graph
    vb, vn = graph_b.num_tasks, new.num_tasks
    vc = min(vb, vn)

    changed = _raw_changed(graph_b, new)
    dirty = _descendant_closure(new, changed)
    _seed_hashes(new, graph_b, dirty)
    hashes_b = subgraph_hash_array(graph_b)
    hashes_n = subgraph_hash_array(new)
    bl_b = bottom_levels_array(graph_b)
    bl_n = bottom_levels_array(new)

    # Clean = same upward hash (ancestor side) and same bottom level
    # (descendant side / heap tie key); over the shared id space only.
    clean_common = (hashes_b[:vc] == hashes_n[:vc]) & (bl_b[:vc] == bl_n[:vc])
    clean_new = np.zeros(vn, dtype=bool)
    clean_new[:vc] = clean_common
    bl_dirty = int(vn - vc + int(np.count_nonzero(bl_b[:vc] != bl_n[:vc])))

    order_b, _proc_b, _start_b, _finish_b = base._placement_arrays()
    clean_base = np.zeros(vb, dtype=bool)
    clean_base[:vc] = clean_common

    # Candidate (a): the first base placement that is not clean caps the
    # prefix — its selection is the first the two runs can disagree on.
    not_clean_pos = np.flatnonzero(~clean_base[order_b])
    k_a = int(not_clean_pos[0]) if not_clean_pos.size else vb

    # Candidate (b): the earliest step a dirty task of the new graph can
    # enter the ready set.  A dirty task whose preds are all clean becomes
    # ready right after its last pred's base placement; dirty tasks with a
    # dirty pred are ready strictly later (their pred places at >= k*).
    k_b = vb
    dirty_ids = np.flatnonzero(~clean_new)
    if dirty_ids.size:
        pos = np.zeros(vn, dtype=np.int64)
        pos_b = np.empty(vb, dtype=np.int64)
        pos_b[order_b] = np.arange(vb, dtype=np.int64)
        pos[:vc] = pos_b[:vc]
        csr_n = new.csr()
        deg = np.diff(csr_n.pred_ptr)[dirty_ids]
        if bool((deg == 0).any()):
            k_b = 0
        else:
            cnt_idx = _concat_slices(csr_n.pred_ptr[dirty_ids], deg)
            preds = csr_n.pred_ids[cnt_idx]
            seg = np.cumsum(deg) - deg
            preds_clean = clean_new[preds]
            all_clean = np.logical_and.reduceat(preds_clean, seg)
            if bool(all_clean.any()):
                entry = np.maximum.reduceat(
                    np.where(preds_clean, pos[preds], -1), seg
                )
                k_b = int(entry[all_clean].min()) + 1

    return GraphDiff(
        reuse_steps=min(k_a, k_b),
        total=vn,
        changed=int(np.count_nonzero(changed)),
        dirty=int(np.count_nonzero(dirty)),
        bl_dirty=bl_dirty,
    )


class ScheduleBaseCache:
    """Bounded LRU of warm-start bases, keyed by graph fingerprint.

    Process-global (see :func:`base_cache`): the batch plane's worker
    processes each hold their own, like the graph-decode caches.  ``get``
    with an unknown or ``None`` fingerprint falls back to the most recently
    used base — the differ makes an unrelated base harmless (it yields an
    empty clean prefix and the run falls back to cold).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Schedule]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, fingerprint: Optional[str] = None) -> Optional[Schedule]:
        with self._lock:
            if fingerprint is not None:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    return entry
            self.misses += 1
            if self._entries:
                # Latest-base fallback: newest entry, without re-ranking it.
                return next(reversed(self._entries.values()))
            return None

    def put(self, fingerprint: str, schedule: Schedule) -> None:
        with self._lock:
            self._entries[fingerprint] = schedule
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_BASE_CACHE = ScheduleBaseCache()


def base_cache() -> ScheduleBaseCache:
    """The process-global warm-base LRU (one per worker process)."""
    return _BASE_CACHE
