"""Machine model: homogeneous contention-free processor clique."""

from repro.machine.model import MachineModel

__all__ = ["MachineModel"]
