"""The distributed-memory machine model.

The paper assumes "a set P of P processors connected in homogeneous clique
topology" with contention-free interprocessor communication, and zero
communication cost between tasks on the same processor (Section 2).

:class:`MachineModel` captures exactly that, with three extension hooks
kept out of the paper's experiments but useful for sensitivity studies and
the heterogeneous extension (HEFT; the authors' own follow-up work went
heterogeneous):

* ``comm_scale`` — multiplies every cross-processor communication cost
  (models faster/slower interconnect relative to the task-graph's weights);
* ``latency`` — fixed per-message start-up cost added to every
  cross-processor message;
* ``speeds`` — optional per-processor relative speeds: a task with
  computation cost ``c`` runs for ``c / speeds[p]`` on processor ``p``
  (``None`` = homogeneous, the paper's model).

With the defaults the model is precisely the paper's:
``delay(src, dst, cost) = cost`` when the processors differ, ``0``
otherwise, and every task runs for exactly its computation cost.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["MachineModel"]

#: Version tag mixed into :meth:`MachineModel.fingerprint`.  Bump it if the
#: set of fingerprinted fields ever changes, so old persisted keys can never
#: alias new ones.
_FINGERPRINT_VERSION = b"machine-v1"


@dataclass(frozen=True)
class MachineModel:
    """A contention-free clique of ``num_procs`` processors."""

    num_procs: int
    comm_scale: float = 1.0
    latency: float = 0.0
    speeds: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.comm_scale < 0:
            raise ValueError(f"comm_scale must be >= 0, got {self.comm_scale}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.speeds is not None:
            speeds = tuple(float(s) for s in self.speeds)
            if len(speeds) != self.num_procs:
                raise ValueError(
                    f"speeds must have one entry per processor "
                    f"({self.num_procs}), got {len(speeds)}"
                )
            if any(s <= 0 for s in speeds):
                raise ValueError("all processor speeds must be positive")
            object.__setattr__(self, "speeds", speeds)

    @property
    def procs(self) -> range:
        """Processor ids ``0 .. num_procs-1``."""
        return range(self.num_procs)

    @property
    def is_heterogeneous(self) -> bool:
        return self.speeds is not None and len(set(self.speeds)) > 1

    def duration(self, comp: float, proc: int) -> float:
        """Execution time of a task with computation cost ``comp`` on ``proc``."""
        if self.speeds is None:
            return comp
        return comp / self.speeds[proc]

    def mean_duration(self, comp: float) -> float:
        """Execution time averaged over processors (HEFT's rank weights)."""
        if self.speeds is None:
            return comp
        return comp * sum(1.0 / s for s in self.speeds) / self.num_procs

    def comm_delay(self, src_proc: int, dst_proc: int, cost: float) -> float:
        """Delay for a message of weight ``cost`` between two processors.

        Zero when both endpoints are the same processor; otherwise
        ``latency + comm_scale * cost`` (paper default: ``cost``).
        """
        if src_proc == dst_proc:
            return 0.0
        return self.remote_delay(cost)

    def remote_delay(self, cost: float) -> float:
        """Delay for a message of weight ``cost`` that must cross processors.

        This is what the paper's ``LMT`` uses: the arrival time assuming the
        message is remote, regardless of where the consumer ends up.
        """
        return self.latency + self.comm_scale * cost

    @property
    def is_paper_model(self) -> bool:
        """True when the model matches the paper's assumptions exactly."""
        return (
            self.comm_scale == 1.0
            and self.latency == 0.0
            and not self.is_heterogeneous
        )

    def fingerprint(self) -> str:
        """Canonical hex digest of the model (cache/coalescing key material).

        blake2b over the exact field values — ``num_procs``, ``comm_scale``,
        ``latency`` and the ``speeds`` tuple (absent vs. present is part of
        the digest, so ``MachineModel(4)`` and ``MachineModel(4, speeds=(1.0,
        1.0, 1.0, 1.0))`` fingerprint differently, exactly as they compare
        unequal).  Floats are packed as IEEE-754 doubles, so two models
        fingerprint equal iff they are ``==``.  Memoized on the instance;
        the dataclass is frozen, so the digest can never go stale.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return str(cached)
        h = hashlib.blake2b(digest_size=16)
        h.update(_FINGERPRINT_VERSION)
        h.update(struct.pack("<q", self.num_procs))
        h.update(struct.pack("<dd", self.comm_scale, self.latency))
        if self.speeds is None:
            h.update(b"homog")
        else:
            h.update(struct.pack(f"<{len(self.speeds)}d", *self.speeds))
        digest = h.hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document (the serve plane's ``machine`` object)."""
        doc: Dict[str, Any] = {
            "num_procs": self.num_procs,
            "comm_scale": self.comm_scale,
            "latency": self.latency,
        }
        if self.speeds is not None:
            doc["speeds"] = list(self.speeds)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "MachineModel":
        """Parse the :meth:`to_dict` document (strict: unknown keys raise).

        Raises :class:`ValueError` on malformed input — wire-facing callers
        (the HTTP front-end, ``--machine-json``) turn that into their own
        400/usage errors.
        """
        if not isinstance(doc, Mapping):
            raise ValueError(f"machine must be an object, got {type(doc).__name__}")
        unknown = set(doc) - {"num_procs", "comm_scale", "latency", "speeds"}
        if unknown:
            raise ValueError(f"unknown machine field(s): {sorted(unknown)}")
        num_procs = doc.get("num_procs")
        if not isinstance(num_procs, int) or isinstance(num_procs, bool):
            raise ValueError("machine.num_procs must be an integer")
        comm_scale = doc.get("comm_scale", 1.0)
        latency = doc.get("latency", 0.0)
        for name, value in (("comm_scale", comm_scale), ("latency", latency)):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"machine.{name} must be a number")
        speeds = doc.get("speeds")
        if speeds is not None:
            if not isinstance(speeds, (list, tuple)) or any(
                isinstance(s, bool) or not isinstance(s, (int, float))
                for s in speeds
            ):
                raise ValueError("machine.speeds must be a list of numbers")
            speeds = tuple(float(s) for s in speeds)
        return cls(
            num_procs=num_procs,
            comm_scale=float(comm_scale),
            latency=float(latency),
            speeds=speeds,
        )
