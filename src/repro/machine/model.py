"""The distributed-memory machine model.

The paper assumes "a set P of P processors connected in homogeneous clique
topology" with contention-free interprocessor communication, and zero
communication cost between tasks on the same processor (Section 2).

:class:`MachineModel` captures exactly that, with three extension hooks
kept out of the paper's experiments but useful for sensitivity studies and
the heterogeneous extension (HEFT; the authors' own follow-up work went
heterogeneous):

* ``comm_scale`` — multiplies every cross-processor communication cost
  (models faster/slower interconnect relative to the task-graph's weights);
* ``latency`` — fixed per-message start-up cost added to every
  cross-processor message;
* ``speeds`` — optional per-processor relative speeds: a task with
  computation cost ``c`` runs for ``c / speeds[p]`` on processor ``p``
  (``None`` = homogeneous, the paper's model).

With the defaults the model is precisely the paper's:
``delay(src, dst, cost) = cost`` when the processors differ, ``0``
otherwise, and every task runs for exactly its computation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["MachineModel"]


@dataclass(frozen=True)
class MachineModel:
    """A contention-free clique of ``num_procs`` processors."""

    num_procs: int
    comm_scale: float = 1.0
    latency: float = 0.0
    speeds: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.comm_scale < 0:
            raise ValueError(f"comm_scale must be >= 0, got {self.comm_scale}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.speeds is not None:
            speeds = tuple(float(s) for s in self.speeds)
            if len(speeds) != self.num_procs:
                raise ValueError(
                    f"speeds must have one entry per processor "
                    f"({self.num_procs}), got {len(speeds)}"
                )
            if any(s <= 0 for s in speeds):
                raise ValueError("all processor speeds must be positive")
            object.__setattr__(self, "speeds", speeds)

    @property
    def procs(self) -> range:
        """Processor ids ``0 .. num_procs-1``."""
        return range(self.num_procs)

    @property
    def is_heterogeneous(self) -> bool:
        return self.speeds is not None and len(set(self.speeds)) > 1

    def duration(self, comp: float, proc: int) -> float:
        """Execution time of a task with computation cost ``comp`` on ``proc``."""
        if self.speeds is None:
            return comp
        return comp / self.speeds[proc]

    def mean_duration(self, comp: float) -> float:
        """Execution time averaged over processors (HEFT's rank weights)."""
        if self.speeds is None:
            return comp
        return comp * sum(1.0 / s for s in self.speeds) / self.num_procs

    def comm_delay(self, src_proc: int, dst_proc: int, cost: float) -> float:
        """Delay for a message of weight ``cost`` between two processors.

        Zero when both endpoints are the same processor; otherwise
        ``latency + comm_scale * cost`` (paper default: ``cost``).
        """
        if src_proc == dst_proc:
            return 0.0
        return self.remote_delay(cost)

    def remote_delay(self, cost: float) -> float:
        """Delay for a message of weight ``cost`` that must cross processors.

        This is what the paper's ``LMT`` uses: the arrival time assuming the
        message is remote, regardless of where the consumer ends up.
        """
        return self.latency + self.comm_scale * cost

    @property
    def is_paper_model(self) -> bool:
        """True when the model matches the paper's assumptions exactly."""
        return (
            self.comm_scale == 1.0
            and self.latency == 0.0
            and not self.is_heterogeneous
        )
