"""Schedule-quality and scheduling-cost metrics."""

from repro.metrics.metrics import (
    CommStats,
    comm_stats,
    efficiency,
    load_imbalance,
    normalized_schedule_length,
    speedup,
    summarize,
    time_scheduler,
    utilization,
)

__all__ = [
    "speedup",
    "efficiency",
    "normalized_schedule_length",
    "utilization",
    "load_imbalance",
    "comm_stats",
    "CommStats",
    "summarize",
    "time_scheduler",
]
