"""Schedule-quality and cost metrics used by the paper's evaluation.

* **speedup** (Fig. 3): sequential time (sum of computation costs) over the
  schedule length;
* **NSL** — normalized schedule length (Fig. 4): the schedule length of an
  algorithm divided by MCP's schedule length on the same instance;
* **efficiency**, **utilisation**, **load imbalance**, and communication
  statistics for deeper analysis;
* :func:`time_scheduler` — wall-clock cost measurement (Fig. 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule

__all__ = [
    "speedup",
    "efficiency",
    "normalized_schedule_length",
    "utilization",
    "load_imbalance",
    "comm_stats",
    "CommStats",
    "summarize",
    "time_scheduler",
]


def speedup(schedule: Schedule) -> float:
    """Sequential execution time over parallel schedule length (Fig. 3).

    Raises :class:`ValueError` for a degenerate schedule with non-positive
    makespan (empty graph or all-zero computation costs): speedup is
    undefined there, and a bare ``ZeroDivisionError`` would not say which
    schedule was at fault.
    """
    span = schedule.makespan
    if span <= 0:
        raise ValueError(
            f"speedup undefined: schedule of {schedule.graph.num_tasks} task(s) "
            f"on {schedule.num_procs} processor(s) has non-positive makespan "
            f"{span!r}"
        )
    return schedule.graph.total_comp() / span


def efficiency(schedule: Schedule) -> float:
    """Speedup per processor, in ``(0, 1]`` for valid schedules.

    Like :func:`speedup`, raises :class:`ValueError` on a zero-makespan
    (degenerate) schedule.
    """
    return speedup(schedule) / schedule.num_procs


def normalized_schedule_length(schedule: Schedule, reference_makespan: float) -> float:
    """NSL: this schedule's length relative to a reference (MCP in Fig. 4).

    Values below 1 beat the reference, above 1 lose to it.
    """
    if reference_makespan <= 0:
        raise ValueError(f"reference makespan must be positive, got {reference_makespan}")
    return schedule.makespan / reference_makespan


def utilization(schedule: Schedule) -> List[float]:
    """Per-processor busy fraction of the makespan."""
    span = schedule.makespan
    if span <= 0:
        return [0.0] * schedule.num_procs
    return [
        sum(
            schedule.finish_of(t) - schedule.start_of(t)
            for t in schedule.proc_tasks(p)
        )
        / span
        for p in schedule.machine.procs
    ]


def load_imbalance(schedule: Schedule) -> float:
    """Max over mean per-processor busy time (1.0 = perfectly balanced).

    Returns ``inf`` for a degenerate schedule whose total busy time is zero
    (nothing placed, or every placed task has zero cost): with no work to
    balance, imbalance is undefined and reported as infinite rather than
    masquerading as a perfect ``0.0``.
    """
    busy = [
        sum(
            schedule.finish_of(t) - schedule.start_of(t)
            for t in schedule.proc_tasks(p)
        )
        for p in schedule.machine.procs
    ]
    mean = sum(busy) / len(busy)
    if mean <= 0:
        return float("inf")
    return max(busy) / mean


@dataclass(frozen=True)
class CommStats:
    """Cross-processor communication statistics for a schedule."""

    total_messages: int  # all edges
    remote_messages: int  # edges crossing processors
    remote_volume: float  # sum of crossing edges' costs
    local_volume: float  # sum of zeroed (same-processor) edges' costs

    @property
    def remote_fraction(self) -> float:
        return self.remote_messages / self.total_messages if self.total_messages else 0.0


def comm_stats(schedule: Schedule) -> CommStats:
    """Count messages and volume that actually cross processors."""
    graph = schedule.graph
    remote = 0
    remote_volume = 0.0
    local_volume = 0.0
    total = 0
    for src, dst, comm in graph.edges():
        total += 1
        if schedule.proc_of(src) != schedule.proc_of(dst):
            remote += 1
            remote_volume += comm
        else:
            local_volume += comm
    return CommStats(
        total_messages=total,
        remote_messages=remote,
        remote_volume=remote_volume,
        local_volume=local_volume,
    )


def summarize(schedule: Schedule) -> Dict[str, float]:
    """One-line metric summary of a complete schedule."""
    stats = comm_stats(schedule)
    return {
        "makespan": schedule.makespan,
        "speedup": speedup(schedule),
        "efficiency": efficiency(schedule),
        "load_imbalance": load_imbalance(schedule),
        "procs_used": float(schedule.num_procs_used()),
        "remote_messages": float(stats.remote_messages),
        "remote_volume": stats.remote_volume,
    }


def time_scheduler(
    scheduler: Callable[..., Schedule],
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    repeats: int = 3,
    machine: Optional[MachineModel] = None,
    **kwargs: object,
) -> float:
    """Median wall-clock running time of ``scheduler`` in seconds (Fig. 2).

    The graph is frozen (and its bottom levels warmed) outside the timed
    region in a first untimed call, so the measurement captures scheduling
    work, not one-off graph preparation.  The target is passed to the
    scheduler as a :class:`~repro.machine.MachineModel` (an integer
    ``num_procs`` resolves to the homogeneous clique outside the timed
    region), so timing never pays or triggers the legacy-argument shim.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if machine is None:
        if num_procs is None:
            raise ValueError("time_scheduler requires num_procs or machine")
        machine = MachineModel(num_procs)
    graph.freeze()
    scheduler(graph, machine=machine, **kwargs)  # warm-up, untimed
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        scheduler(graph, machine=machine, **kwargs)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]
