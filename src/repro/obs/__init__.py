"""Observability plane: metrics, traces, and exporters for the serving stack.

Dependency-free and disabled by default — the library records nothing
unless a :class:`MetricsRegistry` is passed in (``SchedulingOptions(metrics=...)``,
``schedule_many(..., metrics=...)``, ``BatchScheduler(metrics=...)``,
``repro-sched batch --metrics-out``).  One registry captures one run:

* **metrics** — counters, gauges, and fixed-bucket histograms
  (:mod:`repro.obs.metrics`), exported as Prometheus text exposition
  (:mod:`repro.obs.prom`);
* **traces** — a lightweight span API (``with metrics.span("flb.kernel"):``)
  producing structured JSONL event logs (:mod:`repro.obs.trace`), rendered
  into a human report by ``repro-sched report`` (:mod:`repro.obs.report`);
* **instruments** — adapters binding existing hooks to a registry, e.g.
  :class:`KernelMetricsObserver` on the ``FlbObserver`` protocol
  (:mod:`repro.obs.instruments`).

The full metric/label catalogue and trace schema live in
docs/observability.md.
"""

from __future__ import annotations

from repro.obs.instruments import KernelMetricsObserver, ServeInstruments
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    span,
)
from repro.obs.prom import parse_prometheus, render_prometheus
from repro.obs.report import render_report, summarize_trace
from repro.obs.trace import JOB_EVENT, PHASE_NAMES, read_trace, validate_event

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "span",
    "DEFAULT_BUCKETS",
    "KernelMetricsObserver",
    "ServeInstruments",
    "render_prometheus",
    "parse_prometheus",
    "read_trace",
    "validate_event",
    "summarize_trace",
    "render_report",
    "JOB_EVENT",
    "PHASE_NAMES",
]
