"""Ready-made instruments binding the library's hooks to a registry.

:class:`KernelMetricsObserver` implements the existing
:class:`repro.core.flb.FlbObserver` protocol, so deep kernel metrics ride
the hook that already exists for the trace recorder and the Theorem-3
oracle — no new kernel surface.  Attaching any observer selects FLB's
*observed* path (structured ``FlbLists`` instead of the fused fast kernel),
which is the price of per-iteration visibility; kernel **wall time**
(``sched_kernel_seconds``) is always recorded from outside the call and
never forces the slow path.  See docs/observability.md for the tradeoff.

:class:`ServeInstruments` is the serving front-end's (:mod:`repro.serve`)
instrument set — the ``serve_*`` request/queue/admission metrics layered on
top of the ``batch_*`` family the wrapped :class:`repro.batch.BatchScheduler`
already records into the same registry, so one ``GET /metrics`` scrape
exposes the whole stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.flb import FlbIteration

__all__ = ["KernelMetricsObserver", "ServeInstruments"]

#: Ready-set sizes are small integers; give them integer-ish buckets
#: instead of the latency defaults.
_READY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


class KernelMetricsObserver:
    """An :class:`~repro.core.flb.FlbObserver` that records per-iteration
    kernel metrics into a :class:`~repro.obs.MetricsRegistry`:

    * ``flb_kernel_iterations_total`` — scheduling iterations (one per task);
    * ``flb_kernel_ready_tasks`` — histogram of the ready-set size ``W`` at
      each iteration (the ``log W`` factor in the paper's bound);
    * ``flb_kernel_heap_ops_total`` — ``O(log n)`` priority-list mutations,
      read from :attr:`repro.core.lists.FlbLists.heap_ops`;
    * ``flb_kernel_ep_choices_total{kind=...}`` — how often the EP vs the
      non-EP Theorem-3 candidate won.

    Usage::

        reg = MetricsRegistry()
        flb(graph, procs, observer=KernelMetricsObserver(reg))
        print(reg.total("flb_kernel_iterations_total"))
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._iterations = registry.counter("flb_kernel_iterations_total")
        self._ready = registry.histogram("flb_kernel_ready_tasks", _READY_BUCKETS)
        self._heap_ops = registry.counter("flb_kernel_heap_ops_total")
        self._ep = registry.counter("flb_kernel_choices_total", kind="ep")
        self._non_ep = registry.counter("flb_kernel_choices_total", kind="non-ep")
        self._last_heap_ops = 0

    def on_iteration(self, snapshot: "FlbIteration") -> None:
        self._iterations.inc()
        self._ready.observe(float(snapshot.lists.num_ready))
        ops = snapshot.lists.heap_ops
        if ops < self._last_heap_ops:
            # A new kernel run began with fresh lists; restart the delta.
            self._last_heap_ops = 0
        self._heap_ops.inc(ops - self._last_heap_ops)
        self._last_heap_ops = ops
        if snapshot.chosen_is_ep:
            self._ep.inc()
        else:
            self._non_ep.inc()


#: Queue-depth style small-integer buckets for the serving queue/backlog.
_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class ServeInstruments:
    """The ``serve_*`` metric family for the HTTP scheduling front-end.

    One instance per :class:`repro.serve.SchedulingService`, bound to the
    service's registry (shared with its :class:`~repro.batch.BatchScheduler`,
    so ``serve_*`` and ``batch_*`` metrics land in one scrape):

    * ``serve_requests_total{endpoint,status}`` — every HTTP response;
    * ``serve_request_seconds{endpoint}`` — request wall time (histogram);
    * ``serve_shed_total`` — admission-control rejections (HTTP 429);
    * ``serve_coalesced_total`` — requests answered by an identical
      in-flight computation instead of a new dispatch;
    * ``serve_queue_wait_seconds`` / ``serve_service_seconds`` — fair-queue
      wait vs dispatch service time per scheduled job;
    * ``serve_queue_depth`` / ``serve_inflight`` / ``serve_draining`` —
      gauges of the admission queue, active dispatches, and drain state;
    * ``serve_graphs_registered_total`` — ``POST /v1/graphs`` admissions;
    * ``serve_tenant_requests_total{tenant}`` — per-tenant fair-queue
      submissions (the fairness plane's accounting).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._shed = registry.counter("serve_shed_total")
        self._coalesced = registry.counter("serve_coalesced_total")
        self._graphs = registry.counter("serve_graphs_registered_total")
        self._queue_depth = registry.gauge("serve_queue_depth")
        self._inflight = registry.gauge("serve_inflight")
        self._draining = registry.gauge("serve_draining")
        self._queue_wait = registry.histogram("serve_queue_wait_seconds")
        self._service = registry.histogram("serve_service_seconds")
        self._backlog = registry.histogram(
            "serve_admitted_backlog", _DEPTH_BUCKETS
        )

    def request(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed HTTP exchange."""
        self.registry.counter(
            "serve_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        self.registry.histogram(
            "serve_request_seconds", endpoint=endpoint
        ).observe(seconds)

    def tenant_request(self, tenant: str) -> None:
        self.registry.counter(
            "serve_tenant_requests_total", tenant=tenant
        ).inc()

    def shed(self) -> None:
        self._shed.inc()

    def coalesced(self) -> None:
        self._coalesced.inc()

    def graph_registered(self) -> None:
        self._graphs.inc()

    def admitted(self, backlog: int) -> None:
        """Record the backlog (queued + active) seen by an admitted job."""
        self._backlog.observe(float(backlog))

    def queue_depth(self, depth: int) -> None:
        self._queue_depth.set(float(depth))

    def inflight(self, count: int) -> None:
        self._inflight.set(float(count))

    def draining(self, on: bool) -> None:
        self._draining.set(1.0 if on else 0.0)

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    def observe_service(self, seconds: float) -> None:
        self._service.observe(seconds)
