"""Ready-made instruments binding the library's hooks to a registry.

:class:`KernelMetricsObserver` implements the existing
:class:`repro.core.flb.FlbObserver` protocol, so deep kernel metrics ride
the hook that already exists for the trace recorder and the Theorem-3
oracle — no new kernel surface.  Attaching any observer selects FLB's
*observed* path (structured ``FlbLists`` instead of the fused fast kernel),
which is the price of per-iteration visibility; kernel **wall time**
(``sched_kernel_seconds``) is always recorded from outside the call and
never forces the slow path.  See docs/observability.md for the tradeoff.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.flb import FlbIteration

__all__ = ["KernelMetricsObserver"]

#: Ready-set sizes are small integers; give them integer-ish buckets
#: instead of the latency defaults.
_READY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


class KernelMetricsObserver:
    """An :class:`~repro.core.flb.FlbObserver` that records per-iteration
    kernel metrics into a :class:`~repro.obs.MetricsRegistry`:

    * ``flb_kernel_iterations_total`` — scheduling iterations (one per task);
    * ``flb_kernel_ready_tasks`` — histogram of the ready-set size ``W`` at
      each iteration (the ``log W`` factor in the paper's bound);
    * ``flb_kernel_heap_ops_total`` — ``O(log n)`` priority-list mutations,
      read from :attr:`repro.core.lists.FlbLists.heap_ops`;
    * ``flb_kernel_ep_choices_total{kind=...}`` — how often the EP vs the
      non-EP Theorem-3 candidate won.

    Usage::

        reg = MetricsRegistry()
        flb(graph, procs, observer=KernelMetricsObserver(reg))
        print(reg.total("flb_kernel_iterations_total"))
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._iterations = registry.counter("flb_kernel_iterations_total")
        self._ready = registry.histogram("flb_kernel_ready_tasks", _READY_BUCKETS)
        self._heap_ops = registry.counter("flb_kernel_heap_ops_total")
        self._ep = registry.counter("flb_kernel_choices_total", kind="ep")
        self._non_ep = registry.counter("flb_kernel_choices_total", kind="non-ep")
        self._last_heap_ops = 0

    def on_iteration(self, snapshot: "FlbIteration") -> None:
        self._iterations.inc()
        self._ready.observe(float(snapshot.lists.num_ready))
        ops = snapshot.lists.heap_ops
        if ops < self._last_heap_ops:
            # A new kernel run began with fresh lists; restart the delta.
            self._last_heap_ops = 0
        self._heap_ops.inc(ops - self._last_heap_ops)
        self._last_heap_ops = ops
        if snapshot.chosen_is_ep:
            self._ep.inc()
        else:
            self._non_ep.inc()
