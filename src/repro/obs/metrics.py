"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain in-process object — no background
threads, no sockets, no third-party client — that the serving stack writes
into while it works and that callers export afterwards (Prometheus text
exposition via :mod:`repro.obs.prom`, structured JSONL traces via
:mod:`repro.obs.trace`, a human report via :mod:`repro.obs.report`).

Design constraints (see docs/observability.md):

* **Disabled by default, cheap when enabled.**  Nothing in the library
  touches a registry unless the caller passed one
  (``SchedulingOptions(metrics=...)`` / ``schedule_many(..., metrics=...)``),
  and every instrument site guards with ``if metrics is not None`` — the
  uninstrumented path does zero extra work.  When enabled, one observation
  is a dict lookup plus a float add; the perf-smoke budget
  (``tools/perf_smoke.sh``) holds the enabled path to ≤5% throughput
  overhead.
* **Process-local.**  Worker processes cannot write to the supervisor's
  registry; worker-side measurements travel back as small payloads
  (``BatchResult.phases``) and are folded in supervisor-side.
* **Fixed label sets.**  A metric instance is identified by its name plus
  a sorted label tuple; the same ``(name, labels)`` pair always returns the
  same instrument, so counters accumulate across calls.

Metric names use Prometheus conventions directly (``snake_case``, ``_total``
for counters, ``_seconds`` for duration histograms); the exposition layer
only adds the ``repro_`` namespace prefix.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "span",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): spans five decades, from fast
#: in-process kernel calls (~100µs) to multi-second batch jobs.  Upper
#: bounds are inclusive; one implicit +Inf bucket catches the rest.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Canonical label representation: sorted (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (e.g. jobs served, worker deaths)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} {self.value:g}>"


class Gauge:
    """Point-in-time value (e.g. registry bytes, cache size)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} {self.value:g}>"


class Histogram:
    """Fixed-bucket histogram with a running sum and count.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit +Inf bucket.  ``counts`` holds one slot per
    finite bucket plus the +Inf slot, *non*-cumulative (the Prometheus
    exposition layer accumulates at render time).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be non-empty and increasing, got {buckets!r}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        self.counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{dict(self.labels)} "
            f"count={self.count} sum={self.sum:g}>"
        )


class Span:
    """One timed region, recorded as a trace event (and optionally into a
    duration histogram) when the ``with`` block exits.

    Use through :meth:`MetricsRegistry.span` or the module-level
    :func:`span` helper::

        with metrics.span("flb.kernel", algo="flb") as s:
            schedule = flb(graph, procs)
            s.annotate(makespan=schedule.makespan)
    """

    __slots__ = ("_registry", "name", "attrs", "_t0", "duration", "_histogram")

    def __init__(
        self,
        registry: Optional["MetricsRegistry"],
        name: str,
        attrs: Dict[str, Any],
        histogram: Optional[Histogram] = None,
    ) -> None:
        self._registry = registry
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self.duration: float = 0.0
        self._histogram = histogram

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span's trace event."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.perf_counter() - self._t0
        if self._registry is not None:
            self._registry.event(self.name, self.duration, **self.attrs)
        if self._histogram is not None:
            self._histogram.observe(self.duration)


def span(name: str, metrics: Optional["MetricsRegistry"] = None, **attrs: Any) -> Span:
    """Time a region against ``metrics`` (no-op when ``metrics`` is None).

    The returned context manager always measures ``duration``; it only
    records a trace event when a registry was supplied, so instrumented
    code can call this unconditionally on the disabled path.
    """
    if metrics is not None:
        return metrics.span(name, **attrs)
    return Span(None, name, dict(attrs))


class MetricsRegistry:
    """Process-local home for every metric and trace event of one run.

    ``counter``/``gauge``/``histogram`` get-or-create instruments keyed by
    ``(name, sorted labels)``; repeated calls return the same object, so
    call sites never cache instrument handles unless they are hot.
    ``events`` is the structured trace: one dict per span/event, in
    completion order, exportable as JSONL (:meth:`write_trace`).
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self.events: List[Dict[str, Any]] = []

    # -- instruments --------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labelset(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labelset(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _labelset(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, key[1], buckets)
        return inst

    # -- trace --------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Context manager timing a region into the trace *and* into the
        ``<name s/./_>_seconds`` histogram."""
        hist = self.histogram(name.replace(".", "_") + "_seconds")
        return Span(self, name, dict(attrs), histogram=hist)

    def event(self, name: str, dur: float = 0.0, **attrs: Any) -> None:
        """Append one structured trace event (see docs/observability.md for
        the schema: ``name``, wall-clock ``ts``, ``dur`` seconds, ``attrs``)."""
        self.events.append(
            {"name": name, "ts": time.time(), "dur": dur, "attrs": attrs}
        )

    # -- introspection / export --------------------------------------------

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge (0.0 when never touched) —
        a test/debug convenience that never creates the instrument."""
        key = (name, _labelset(labels))
        inst: object = self._counters.get(key) or self._gauges.get(key)
        if isinstance(inst, (Counter, Gauge)):
            return inst.value
        return 0.0

    def total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        return sum(c.value for c in self._counters.values() if c.name == name)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{'name{k=v,...}': value}`` view of counters and gauges."""

        def fmt(name: str, labels: LabelSet) -> str:
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        out: Dict[str, float] = {}
        for c in self._counters.values():
            out[fmt(c.name, c.labels)] = c.value
        for g in self._gauges.values():
            out[fmt(g.name, g.labels)] = g.value
        return out

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition (see :mod:`repro.obs.prom`)."""
        from repro.obs.prom import render_prometheus

        return render_prometheus(self)

    def write_prometheus(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_prometheus())

    def write_trace(self, path: str) -> None:
        """Write the trace as JSONL: one event object per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counter(s), "
            f"{len(self._gauges)} gauge(s), {len(self._histograms)} "
            f"histogram(s), {len(self.events)} event(s)>"
        )
