"""Prometheus text-exposition rendering for :class:`~repro.obs.MetricsRegistry`.

Implements the plain-text exposition format (version 0.0.4) without any
client-library dependency: ``# TYPE`` headers, label escaping, cumulative
histogram buckets with ``le`` labels (including ``+Inf``), and ``_sum`` /
``_count`` series.  Every metric is namespaced under ``repro_`` and name
dots are flattened to underscores, so a registry metric ``batch.run_seconds``
exposes as ``repro_batch_run_seconds``.

:func:`parse_prometheus` is the inverse used by the test suite and the perf
smoke to check that emitted files are well-formed; it is a validator for
this module's output, not a general exposition parser.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["render_prometheus", "parse_prometheus", "NAMESPACE"]

#: Prefix applied to every exposed metric name.
NAMESPACE = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _expose_name(name: str) -> str:
    flat = NAMESPACE + name.replace(".", "_")
    if not _NAME_RE.match(flat):
        raise ValueError(f"metric name {name!r} is not exposable")
    return flat


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render every instrument in ``registry`` as exposition text."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        elif typed[name] != kind:
            raise ValueError(
                f"metric {name!r} registered as both {typed[name]} and {kind}"
            )

    for counter in sorted(registry.counters(), key=lambda c: (c.name, c.labels)):
        name = _expose_name(counter.name)
        header(name, "counter")
        lines.append(f"{name}{_labels(counter.labels)} {_fmt(counter.value)}")
    for gauge in sorted(registry.gauges(), key=lambda g: (g.name, g.labels)):
        name = _expose_name(gauge.name)
        header(name, "gauge")
        lines.append(f"{name}{_labels(gauge.labels)} {_fmt(gauge.value)}")
    for hist in sorted(registry.histograms(), key=lambda h: (h.name, h.labels)):
        name = _expose_name(hist.name)
        header(name, "histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            le = 'le="' + _fmt(bound) + '"'
            lines.append(f"{name}_bucket{_labels(hist.labels, le)} {cumulative}")
        cumulative += hist.counts[-1]
        inf = 'le="+Inf"'
        lines.append(f"{name}_bucket{_labels(hist.labels, inf)} {cumulative}")
        lines.append(f"{name}_sum{_labels(hist.labels)} {_fmt(hist.sum)}")
        lines.append(f"{name}_count{_labels(hist.labels)} {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{'name{labels}': value}``.

    Raises ``ValueError`` on any malformed line — the validator half of the
    round-trip contract with :func:`render_prometheus`.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not (line.startswith("# TYPE ") or line.startswith("# HELP ")):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        raw = m.group("labels")
        if raw:
            matched = _LABEL_RE.findall(raw)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
            if rebuilt != raw:
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        value = m.group("value")
        if value == "+Inf":
            parsed = math.inf
        elif value == "-Inf":
            parsed = -math.inf
        else:
            parsed = float(value)  # raises ValueError on garbage
        key = m.group("name") + ("{" + raw + "}" if raw else "")
        samples[key] = parsed
    return samples
