"""Human-readable run reports from trace files (``repro-sched report``).

Takes the JSONL trace written by ``repro-sched batch --trace-out`` (or any
:meth:`~repro.obs.MetricsRegistry.write_trace` output) and answers the
operational questions the raw log obscures: where did the batch's wall
clock go per phase, which algorithms dominated, how many jobs failed and
why, and how effective the caches were.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.trace import JOB_EVENT, PHASE_NAMES, RUN_EVENT

__all__ = ["summarize_trace", "render_report"]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def summarize_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into the report's numbers (machine-readable form).

    Returns a dict with ``jobs`` (count/ok/failed/cached, wall stats),
    ``phases`` (per-phase total seconds, share of summed wall, mean),
    ``algos`` (per-algorithm job count and wall), ``failures`` (count per
    ``error_kind``), ``kernels`` (scheduling-backend usage gathered from
    ``batch.job`` and ``sched.kernel`` events: ``object`` / ``array`` /
    ``numba``), ``cache`` (serving-cache effectiveness aggregated from
    ``batch.run`` events: per-run hit and coalescing totals plus the
    result cache's cumulative counters and hit rate), ``warm``
    (warm-start rescheduling outcomes from ``batch.job`` events: jobs
    served from a base schedule, mean reuse fraction, fallback counts
    per reason) and ``spans`` (every non-job event name: count, total
    seconds).
    """
    jobs = [e for e in events if e["name"] == JOB_EVENT]
    walls = sorted(float(e["attrs"].get("wall", e["dur"])) for e in jobs)
    total_wall = sum(walls)

    phase_total: Dict[str, float] = {}
    phase_jobs: Dict[str, int] = {}
    algo_stats: Dict[str, Dict[str, float]] = {}
    failures: Dict[str, int] = {}
    cached = 0
    for e in jobs:
        attrs = e["attrs"]
        for phase, secs in attrs.get("phases", {}).items():
            phase_total[phase] = phase_total.get(phase, 0.0) + float(secs)
            phase_jobs[phase] = phase_jobs.get(phase, 0) + 1
        algo = str(attrs.get("algo", "?"))
        stats = algo_stats.setdefault(algo, {"jobs": 0.0, "wall": 0.0})
        stats["jobs"] += 1
        stats["wall"] += float(attrs.get("wall", e["dur"]))
        if attrs.get("cached"):
            cached += 1
        if not attrs.get("ok", True):
            kind = str(attrs.get("error_kind") or "unknown")
            failures[kind] = failures.get(kind, 0) + 1

    kernels: Dict[str, int] = {}
    for e in jobs:
        kernel = e["attrs"].get("kernel")
        if kernel is not None:
            kernels[str(kernel)] = kernels.get(str(kernel), 0) + 1

    # Warm-start outcomes ride on batch.job events ("warm" attribute).
    warm_served = 0
    warm_fallbacks: Dict[str, int] = {}
    warm_fractions: List[float] = []
    for e in jobs:
        warm = e["attrs"].get("warm")
        if not isinstance(warm, dict) or not warm:
            continue
        fallback = warm.get("fallback")
        if fallback is not None:
            key = str(fallback)
            warm_fallbacks[key] = warm_fallbacks.get(key, 0) + 1
        else:
            warm_served += 1
            warm_fractions.append(float(warm.get("fraction", 0.0)))

    # Serving-cache effectiveness rides on batch.run events: per-run
    # hit/coalescing totals are additive; the embedded "cache" stats are
    # cumulative, so the last run carries the end-of-trace truth.
    runs = [e for e in events if e["name"] == RUN_EVENT]
    cache_info: Dict[str, Any] = {}
    if runs:
        cache_info = {
            "batches": len(runs),
            "hits": sum(int(e["attrs"].get("cache_hits", 0)) for e in runs),
            "coalesced": sum(int(e["attrs"].get("coalesced", 0)) for e in runs),
        }
        last_stats = None
        for e in runs:
            if isinstance(e["attrs"].get("cache"), dict):
                last_stats = e["attrs"]["cache"]
        if last_stats is not None:
            lookups = int(last_stats.get("hits", 0)) + int(last_stats.get("misses", 0))
            cache_info.update(
                evictions=int(last_stats.get("evictions", 0)),
                size=int(last_stats.get("size", 0)),
                capacity=int(last_stats.get("capacity", 0)),
                hit_rate=(
                    int(last_stats.get("hits", 0)) / lookups if lookups else 0.0
                ),
            )

    spans: Dict[str, Dict[str, float]] = {}
    for e in events:
        if e["name"] == JOB_EVENT:
            continue
        if e["name"] == "sched.kernel":
            kernel = e["attrs"].get("kernel")
            if kernel is not None:
                kernels[str(kernel)] = kernels.get(str(kernel), 0) + 1
        stats = spans.setdefault(str(e["name"]), {"count": 0.0, "seconds": 0.0})
        stats["count"] += 1
        stats["seconds"] += float(e["dur"])

    ordered: List[Tuple[str, float]] = []
    for phase in PHASE_NAMES:  # canonical order first, extras after
        if phase in phase_total:
            ordered.append((phase, phase_total[phase]))
    for phase in sorted(phase_total):
        if phase not in PHASE_NAMES:
            ordered.append((phase, phase_total[phase]))

    return {
        "jobs": {
            "count": len(jobs),
            "ok": len(jobs) - sum(failures.values()),
            "failed": sum(failures.values()),
            "cached": cached,
            "wall_total": total_wall,
            "wall_mean": total_wall / len(jobs) if jobs else 0.0,
            "wall_p50": _percentile(walls, 0.50),
            "wall_p95": _percentile(walls, 0.95),
            "wall_max": walls[-1] if walls else 0.0,
        },
        "phases": [
            {
                "phase": phase,
                "seconds": secs,
                "share": secs / total_wall if total_wall > 0 else 0.0,
                "mean": secs / phase_jobs.get(phase, 1),
            }
            for phase, secs in ordered
        ],
        "algos": [
            {"algo": algo, "jobs": int(st["jobs"]), "wall": st["wall"]}
            for algo, st in sorted(algo_stats.items())
        ],
        "failures": dict(sorted(failures.items())),
        "kernels": dict(sorted(kernels.items())),
        "cache": cache_info,
        "warm": {
            "served": warm_served,
            "mean_reuse": (
                sum(warm_fractions) / len(warm_fractions)
                if warm_fractions else 0.0
            ),
            "fallbacks": dict(sorted(warm_fallbacks.items())),
        },
        "spans": [
            {"name": name, "count": int(st["count"]), "seconds": st["seconds"]}
            for name, st in sorted(spans.items())
        ],
    }


def render_report(events: List[Dict[str, Any]]) -> str:
    """Render the human report (``repro-sched report``'s default output)."""
    from repro.util.tables import format_table

    summary = summarize_trace(events)
    blocks: List[str] = []

    jobs = summary["jobs"]
    if jobs["count"]:
        blocks.append(
            f"jobs: {jobs['count']} ({jobs['ok']} ok, {jobs['failed']} failed, "
            f"{jobs['cached']} cached) — wall mean {jobs['wall_mean'] * 1e3:.2f}ms, "
            f"p50 {jobs['wall_p50'] * 1e3:.2f}ms, p95 {jobs['wall_p95'] * 1e3:.2f}ms, "
            f"max {jobs['wall_max'] * 1e3:.2f}ms"
        )
        blocks.append(
            format_table(
                ["phase", "total [ms]", "share", "mean/job [ms]"],
                [
                    [
                        row["phase"],
                        row["seconds"] * 1e3,
                        f"{row['share'] * 100:.1f}%",
                        row["mean"] * 1e3,
                    ]
                    for row in summary["phases"]
                ],
                title="where the wall-clock went",
            )
        )
        blocks.append(
            format_table(
                ["algorithm", "jobs", "wall [ms]"],
                [
                    [row["algo"], row["jobs"], row["wall"] * 1e3]
                    for row in summary["algos"]
                ],
                title="per algorithm",
            )
        )
        if summary["failures"]:
            blocks.append(
                format_table(
                    ["error kind", "jobs"],
                    [[kind, count] for kind, count in summary["failures"].items()],
                    title="failures",
                )
            )
    else:
        blocks.append("no batch.job events in this trace")
    if summary["kernels"]:
        usage = ", ".join(
            f"{kernel}: {count}" for kernel, count in summary["kernels"].items()
        )
        blocks.append(f"scheduling backend: {usage}")
    cache = summary["cache"]
    if cache:
        line = (
            f"serving cache: {cache['hits']} hit(s), "
            f"{cache['coalesced']} coalesced across {cache['batches']} batch(es)"
        )
        if "hit_rate" in cache:
            line += (
                f" — cumulative hit rate {cache['hit_rate'] * 100:.1f}%, "
                f"{cache['evictions']} eviction(s), "
                f"{cache['size']}/{cache['capacity']} entries"
            )
        blocks.append(line)
    warm = summary["warm"]
    if warm["served"] or warm["fallbacks"]:
        line = (
            f"warm-start: {warm['served']} job(s) replayed from a base "
            f"schedule (mean reuse {warm['mean_reuse'] * 100:.1f}%)"
        )
        if warm["fallbacks"]:
            falls = ", ".join(
                f"{reason}: {count}"
                for reason, count in warm["fallbacks"].items()
            )
            line += f"; cold fallbacks — {falls}"
        blocks.append(line)
    if summary["spans"]:
        blocks.append(
            format_table(
                ["span", "count", "total [ms]"],
                [
                    [row["name"], row["count"], row["seconds"] * 1e3]
                    for row in summary["spans"]
                ],
                title="other spans",
            )
        )
    return "\n\n".join(blocks)
