"""Structured trace files: JSONL read/validate helpers.

The write side lives on :meth:`repro.obs.MetricsRegistry.write_trace`; this
module is the read side used by ``repro-sched report`` and the test suite.

Trace schema (one JSON object per line)::

    {"name": "batch.job",          # event/span name, dot-separated
     "ts":   1754462000.123,       # wall-clock completion time (epoch s)
     "dur":  0.0123,               # duration in seconds
     "attrs": {...}}               # free-form attributes

``batch.job`` events additionally carry, in ``attrs``: ``tag``, ``algo``,
``procs``, ``ok``, ``error_kind``, ``cached``, ``attempts``, ``wall`` (the
job's total wall time, queue + execution) and ``phases`` — a mapping of
phase name to seconds whose values sum to ``wall`` (up to float rounding).
The canonical phase names are ``queue``, ``attach``, ``schedule``,
``certify`` and ``other`` (dispatch/reply overhead, computed as the
residual); see docs/observability.md.

``batch.run`` events (one per :func:`repro.batch.schedule_many` call)
carry the batch-level accounting in ``attrs``: ``jobs``, ``dispatched``,
``cache_hits``, ``coalesced`` and — when the batch ran with a result
cache — ``cache``, the cache's cumulative ``hits`` / ``misses`` /
``evictions`` / ``size`` / ``capacity`` counters at the end of the run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["read_trace", "validate_event", "JOB_EVENT", "RUN_EVENT", "PHASE_NAMES"]

#: Name of the per-job trace event emitted by the batch plane.
JOB_EVENT = "batch.job"

#: Name of the per-batch trace event emitted by the batch plane.
RUN_EVENT = "batch.run"

#: Canonical per-job phase names, in pipeline order.
PHASE_NAMES = ("queue", "attach", "schedule", "certify", "other")


def validate_event(event: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``event`` matches the trace schema."""
    for field in ("name", "ts", "dur"):
        if field not in event:
            raise ValueError(f"trace event missing {field!r}: {event!r}")
    if not isinstance(event["name"], str):
        raise ValueError(f"trace event name must be a string: {event!r}")
    for field in ("ts", "dur"):
        if not isinstance(event[field], (int, float)) or isinstance(event[field], bool):
            raise ValueError(f"trace event field {field!r} must be a number: {event!r}")
    attrs = event.get("attrs", {})
    if not isinstance(attrs, dict):
        raise ValueError(f"trace event attrs must be a mapping: {event!r}")
    if event["name"] == JOB_EVENT:
        phases = attrs.get("phases", {})
        if not isinstance(phases, dict) or not all(
            isinstance(v, (int, float)) for v in phases.values()
        ):
            raise ValueError(f"batch.job phases must map names to seconds: {event!r}")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load and validate a JSONL trace file written by
    :meth:`~repro.obs.MetricsRegistry.write_trace`."""
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: event must be an object")
            validate_event(event)
            events.append(event)
    return events
