"""Content-addressed result cache for batch serving.

Schedulers in this repo are deterministic: the same graph content, the same
processor count, and the same algorithm always produce the same schedule —
so a result cache keyed by ``(graph fingerprint, procs, algo)`` returns
*exact* answers, not approximations.  For a serving front-end (the ROADMAP
north-star), repeated requests are the common case: a cache hit answers in
``O(1)`` without dispatching a worker, without touching the graph plane,
and with bit-identical summary numbers.

The key carries every field that shapes the answer *or its report*:
``validate``/``certify`` because a certified result answers strictly more
than an uncertified one, and the **resolved kernel backend** because the
FLB backends, while bit-identical in their schedules, are reported to the
caller (``BatchResult.kernel``, the ``repro-sched report`` backend mix) —
serving an ``object``-computed entry to an ``array`` request would lie
about which backend ran.  Keys must be built with the *resolved* kernel
(:func:`repro.api.resolve_job_kernel`), never the raw request: ``auto``
and ``array`` resolve to the same backend on a numba-less host and share
entries, which is exactly right.

:class:`ResultCache` is a bounded LRU with hit/miss/eviction counters.
:func:`repro.batch.schedule_many` consults it before dispatch and inserts
successful results after; failures are never cached (timeouts and worker
deaths are not deterministic, and a transiently failing scheduler should be
re-tried, not remembered).  The machine is part of the key: every key
carries the :meth:`~repro.machine.model.MachineModel.fingerprint` of the
machine the schedule was computed for, with ``machine=None`` resolving to
the homogeneous default ``MachineModel(procs)`` — so the legacy
integer-``procs`` spelling and the explicit homogeneous model share
entries, while two machines with equal ``num_procs`` but different
``speeds``/``latency``/``comm_scale`` can never collide.

The cache is shared across batches by :class:`repro.batch.BatchScheduler`;
counters surface through ``BatchScheduler.stats()``,
``repro.batch.batch_stats`` and ``repro-sched batch --stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.machine.model import MachineModel

__all__ = ["ResultCache", "CacheKey", "make_key", "DEFAULT_CACHE_SIZE"]

#: Default bound for :class:`ResultCache`; one entry is a few hundred bytes
#: (a scalar ``BatchResult``), so the default costs well under a megabyte.
DEFAULT_CACHE_SIZE = 1024

#: Cache key: (graph fingerprint, procs, algo, validate, certify, kernel,
#: machine fingerprint).  ``kernel`` is the *resolved* backend name
#: (``object``/``array``/``numba``), never a raw request like ``auto``;
#: the machine fingerprint is
#: :meth:`repro.machine.model.MachineModel.fingerprint`.
CacheKey = Tuple[str, int, str, bool, bool, str, str]


def make_key(
    fingerprint: str,
    procs: int,
    algo: str,
    validate: bool,
    certify: bool,
    kernel: str,
    machine: Optional[MachineModel] = None,
) -> CacheKey:
    """Build a :data:`CacheKey` (the one place its field order is spelled).

    ``kernel`` must already be resolved via
    :func:`repro.api.resolve_job_kernel`; passing ``auto`` here would split
    the cache between spellings of the same backend.  ``machine=None``
    resolves to the homogeneous ``MachineModel(procs)`` — the same model a
    scheduler builds for an integer request — so both spellings of the
    paper's machine share one entry.  A ``machine`` whose ``num_procs``
    disagrees with ``procs`` is a :class:`ValueError`: such a request can
    never be served, so a key for it is necessarily a bug.
    """
    if kernel == "auto":
        raise ValueError("cache keys require a resolved kernel, not 'auto'")
    if machine is None:
        machine = MachineModel(procs)
    elif machine.num_procs != procs:
        raise ValueError(
            f"cache key procs={procs} conflicts with machine.num_procs="
            f"{machine.num_procs}"
        )
    return (fingerprint, procs, algo, validate, certify, kernel,
            machine.fingerprint())


class ResultCache:
    """Bounded LRU mapping ``(fingerprint, procs, algo, validate, certify,
    kernel, machine fingerprint)`` to a successful
    :class:`~repro.batch.BatchResult`.

    ``capacity=0`` disables the cache (every lookup misses nothing — no
    counters move, nothing is stored), which keeps call sites free of
    ``if cache`` branching.
    """

    __slots__ = ("_capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Optional[Hashable]) -> Optional[object]:
        """Look up a key; counts a hit or a miss.  ``None`` keys (uncacheable
        jobs) and a disabled cache return ``None`` without counting."""
        if key is None or not self._capacity:
            return None
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Optional[Hashable], value: object) -> None:
        """Insert/refresh a key, evicting the least recently used entry
        beyond capacity."""
        if key is None or not self._capacity:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        self._data.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "capacity": self._capacity,
        }

    def __repr__(self) -> str:
        return (
            f"<ResultCache {len(self._data)}/{self._capacity} "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )
