"""Schedule representation, validation, analysis, I/O, and rendering."""

from repro.schedule.analysis import (
    IdleProfile,
    critical_tasks,
    idle_profile,
    slack_times,
)
from repro.schedule.gantt import render_gantt
from repro.schedule.io import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.schedule.svg import render_gantt_svg, save_gantt_svg

__all__ = [
    "Schedule",
    "ScheduledTask",
    "render_gantt",
    "render_gantt_svg",
    "save_gantt_svg",
    "slack_times",
    "critical_tasks",
    "idle_profile",
    "IdleProfile",
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]
