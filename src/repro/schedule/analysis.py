"""Post-hoc schedule analysis: slack, critical tasks, idle accounting.

Given a complete schedule, the *scheduled graph* is the task DAG augmented
with the processor-order edges the placement induced (task A immediately
precedes task B on the same processor).  Over that combined precedence
structure this module computes:

* **latest start times** and per-task **slack** — how far a task can slip
  without extending the makespan, keeping the assignment and processor
  order fixed;
* the **schedule-critical tasks** (zero slack) — the chain that actually
  determines the makespan, which is generally *not* the graph-theoretic
  critical path once communication and processor contention are placed;
* per-processor **idle-time accounting** — how much of each processor's
  timeline is spent working vs. waiting.

These are the quantities a performance engineer inspects to decide whether
a longer-than-expected schedule is communication-bound (stalls before
critical tasks) or balance-bound (idle tails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ScheduleError
from repro.schedule.schedule import Schedule

__all__ = ["slack_times", "critical_tasks", "idle_profile", "IdleProfile"]

_EPS = 1e-9


def _scheduled_successors(schedule: Schedule) -> List[List[Tuple[int, float]]]:
    """Successors of each task in the scheduled graph as ``(succ, delay)``:
    graph edges carry their (placement-dependent) communication delay,
    processor-order edges carry zero."""
    graph = schedule.graph
    machine = schedule.machine
    succs: List[List[Tuple[int, float]]] = [[] for _ in graph.tasks()]
    for src, dst, comm in graph.edges():
        delay = machine.comm_delay(schedule.proc_of(src), schedule.proc_of(dst), comm)
        succs[src].append((dst, delay))
    for p in machine.procs:
        order = schedule.proc_tasks(p)
        for a, b in zip(order, order[1:]):
            succs[a].append((b, 0.0))
    return succs


def slack_times(schedule: Schedule) -> List[float]:
    """Per-task slack: the maximum uniform delay of the task's start that
    leaves the makespan unchanged (assignment and processor order fixed).

    Computed as ``LST(t) - ST(t)`` where latest start times run a backward
    pass over the scheduled graph from the makespan.
    """
    if not schedule.complete:
        raise ScheduleError("slack analysis requires a complete schedule")
    graph = schedule.graph
    succs = _scheduled_successors(schedule)
    makespan = schedule.makespan
    lft = [makespan] * graph.num_tasks  # latest finish
    # Process in reverse global start order: that is a reverse topological
    # order of the scheduled graph (all its edges go forward in time).
    order = sorted(graph.tasks(), key=lambda t: schedule.start_of(t))
    machine = schedule.machine
    for t in reversed(order):
        for succ, delay in succs[t]:
            duration = machine.duration(graph.comp(succ), schedule.proc_of(succ))
            latest = lft[succ] - duration - delay
            if latest < lft[t]:
                lft[t] = latest
    return [lft[t] - schedule.finish_of(t) for t in graph.tasks()]


def critical_tasks(schedule: Schedule, tol: float = 1e-9) -> List[int]:
    """Tasks with (near-)zero slack: the chain that pins the makespan."""
    return [t for t, s in enumerate(slack_times(schedule)) if s <= tol]


@dataclass(frozen=True)
class IdleProfile:
    """Per-processor timeline accounting over the makespan."""

    busy: Tuple[float, ...]
    idle_internal: Tuple[float, ...]  # gaps between tasks (waiting on messages)
    idle_leading: Tuple[float, ...]  # before the first task
    idle_trailing: Tuple[float, ...]  # after the last task

    @property
    def total_idle(self) -> float:
        return (
            sum(self.idle_internal) + sum(self.idle_leading) + sum(self.idle_trailing)
        )


def idle_profile(schedule: Schedule) -> IdleProfile:
    """Break each processor's makespan window into busy / waiting segments."""
    if not schedule.complete:
        raise ScheduleError("idle analysis requires a complete schedule")
    makespan = schedule.makespan
    busy: List[float] = []
    internal: List[float] = []
    leading: List[float] = []
    trailing: List[float] = []
    for p in schedule.machine.procs:
        order = schedule.proc_tasks(p)
        if not order:
            busy.append(0.0)
            internal.append(0.0)
            leading.append(0.0)
            trailing.append(makespan)
            continue
        busy.append(sum(schedule.finish_of(t) - schedule.start_of(t) for t in order))
        leading.append(schedule.start_of(order[0]))
        trailing.append(makespan - schedule.finish_of(order[-1]))
        gaps = 0.0
        for a, b in zip(order, order[1:]):
            gaps += schedule.start_of(b) - schedule.finish_of(a)
        internal.append(gaps)
    return IdleProfile(
        busy=tuple(busy),
        idle_internal=tuple(internal),
        idle_leading=tuple(leading),
        idle_trailing=tuple(trailing),
    )
