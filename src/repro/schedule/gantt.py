"""ASCII Gantt-chart rendering of schedules.

Renders each processor as one row on a discretised time axis; task cells are
filled with the task's name (truncated to its cell width) and idle time with
dots.  Intended for examples, the CLI, and debugging — precise enough to eyeball
load balance and communication stalls on small schedules.
"""

from __future__ import annotations

from typing import List

from repro.schedule.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, width: int = 78, show_axis: bool = True) -> str:
    """Render ``schedule`` as an ASCII Gantt chart ``width`` columns wide."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    graph = schedule.graph
    scale = width / makespan

    def col(t: float) -> int:
        return min(width, max(0, round(t * scale)))

    lines: List[str] = []
    label_w = len(f"P{schedule.num_procs - 1}")
    for p in schedule.machine.procs:
        row = ["."] * width
        for task in schedule.proc_tasks(p):
            lo = col(schedule.start_of(task))
            hi = max(lo + 1, col(schedule.finish_of(task)))
            cell = max(1, hi - lo)
            name = graph.name(task)
            text = name[:cell].center(cell, "=") if cell >= 3 else "=" * cell
            for i, ch in enumerate(text):
                if lo + i < width:
                    row[lo + i] = ch
        lines.append(f"P{p}".ljust(label_w) + " |" + "".join(row) + "|")
    if show_axis:
        axis = f"0{'':{max(1, width - len(f'{makespan:g}') - 1)}}{makespan:g}"
        lines.append(" " * label_w + "  " + axis)
    return "\n".join(lines)
