"""Schedule serialisation: JSON round-trip.

Persisting schedules lets toolchains separate the (expensive) scheduling
decision from downstream consumers — code generators, visualisers, the
discrete-event executor.  The JSON document embeds the task graph and the
machine model so a loaded schedule is self-contained and immediately
re-validatable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import ScheduleError
from repro.graph.io import from_json as graph_from_json
from repro.graph.io import to_json as graph_to_json
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule

__all__ = ["schedule_to_json", "schedule_from_json", "save_schedule", "load_schedule"]

_FORMAT_VERSION = 1


def schedule_to_json(schedule: Schedule) -> str:
    """Serialise a complete schedule (graph + machine + placements)."""
    if not schedule.complete:
        raise ScheduleError("only complete schedules can be serialised")
    machine = schedule.machine
    doc = {
        "format": "repro-schedule",
        "version": _FORMAT_VERSION,
        "machine": {
            "num_procs": machine.num_procs,
            "comm_scale": machine.comm_scale,
            "latency": machine.latency,
            "speeds": list(machine.speeds) if machine.speeds else None,
        },
        "graph": json.loads(graph_to_json(schedule.graph)),
        "placements": [
            {"task": e.task, "proc": e.proc, "start": e.start}
            for e in schedule  # start-time order
        ],
    }
    return json.dumps(doc, indent=2)


def schedule_from_json(text: str) -> Schedule:
    """Parse and re-validate a schedule produced by :func:`schedule_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid schedule JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-schedule":
        raise ScheduleError("not a repro-schedule JSON document")
    graph = graph_from_json(json.dumps(doc["graph"]))
    m = doc["machine"]
    speeds = m.get("speeds")
    machine = MachineModel(
        num_procs=int(m["num_procs"]),
        comm_scale=float(m.get("comm_scale", 1.0)),
        latency=float(m.get("latency", 0.0)),
        speeds=tuple(float(s) for s in speeds) if speeds else None,
    )
    schedule = Schedule(graph, machine)
    for entry in doc["placements"]:
        # Insertion-placed schedules may replay out of PRT order; allow it.
        schedule.place(
            int(entry["task"]), int(entry["proc"]), float(entry["start"]),
            insertion=True,
        )
    if not schedule.complete:
        raise ScheduleError("schedule document does not place every task")
    return schedule.validate()


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    Path(path).write_text(schedule_to_json(schedule))


def load_schedule(path: Union[str, Path]) -> Schedule:
    return schedule_from_json(Path(path).read_text())
