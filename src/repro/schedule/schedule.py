"""Schedule representation and validity checking.

A :class:`Schedule` maps every task of a frozen :class:`~repro.graph.TaskGraph`
to a processor, a start time ``ST`` and a finish time ``FT`` (Section 2 of
the paper).  Schedulers build it incrementally with :meth:`Schedule.place`;
the class maintains the per-processor ready times ``PRT(p)`` that all the
algorithms consult.

Because every scheduler in this repository is a non-insertion list
scheduler, tasks are appended to a processor at or after its current ready
time; :meth:`place` enforces this, which keeps per-processor task lists
sorted by construction.

:meth:`Schedule.violations` re-checks the three correctness conditions from
first principles (used by the test suite on every scheduler output):

1. every task is scheduled exactly once with ``FT = ST + comp``;
2. tasks on the same processor do not overlap;
3. every task starts no earlier than each predecessor's finish time plus the
   machine's communication delay (zero for same-processor predecessors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.exceptions import InvalidScheduleError, ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel

__all__ = ["Schedule", "ScheduledTask"]

_EPS = 1e-9


@dataclass(frozen=True)
class ScheduledTask:
    """Placement record for one task."""

    task: int
    proc: int
    start: float
    finish: float


class Schedule:
    """An (incrementally built) mapping of tasks to processors and times."""

    def __init__(self, graph: TaskGraph, machine: MachineModel) -> None:
        if not graph.frozen:
            raise ScheduleError("schedule requires a frozen task graph")
        self._graph = graph
        self._machine = machine
        n = graph.num_tasks
        self._proc: List[int] = [-1] * n
        self._start: List[float] = [0.0] * n
        self._finish: List[float] = [0.0] * n
        self._placed: List[bool] = [False] * n
        self._num_placed = 0
        self._proc_tasks: List[List[int]] = [[] for _ in machine.procs]
        self._prt: List[float] = [0.0] * machine.num_procs
        self._order: List[int] = []
        self._arrays_cache: Optional[
            Tuple[
                npt.NDArray[np.int64],
                npt.NDArray[np.int64],
                npt.NDArray[np.float64],
                npt.NDArray[np.float64],
            ]
        ] = None
        # Tie-rule provenance stamped by the FLB kernels: warm-start reuse
        # requires the base to have been produced under the same rule.
        self._flb_prefer: Optional[bool] = None

    # -- construction -----------------------------------------------------

    def place(
        self, task: int, proc: int, start: float, insertion: bool = False
    ) -> ScheduledTask:
        """Schedule ``task`` on ``proc`` starting at ``start``.

        The finish time is ``start + machine.duration(comp(task), proc)``
        (plain ``start + comp`` on the paper's homogeneous machine).  By default placement is
        non-insertion list scheduling: the start must respect the
        processor's current ready time.  With ``insertion=True`` the task
        may instead be slotted into an earlier idle gap, provided it fits
        without overlapping the processor's existing tasks (insertion-based
        variants of MCP/HLFET use this).
        """
        if not 0 <= task < self._graph.num_tasks:
            raise ScheduleError(f"unknown task {task}")
        if not 0 <= proc < self._machine.num_procs:
            raise ScheduleError(f"unknown processor {proc}")
        if self._placed[task]:
            raise ScheduleError(f"task {task} is already scheduled")
        if start < -_EPS:
            raise ScheduleError(f"task {task} start {start} is negative")
        finish = start + self._machine.duration(self._graph.comp(task), proc)
        tasks_on_proc = self._proc_tasks[proc]
        if start >= self._prt[proc] - _EPS:
            position = len(tasks_on_proc)
        elif not insertion:
            raise ScheduleError(
                f"task {task} start {start} precedes PRT({proc}) = {self._prt[proc]}"
            )
        else:
            position = self._insertion_position(proc, start, finish, task)
        self._proc[task] = proc
        self._start[task] = start
        self._finish[task] = finish
        self._placed[task] = True
        self._num_placed += 1
        self._order.append(task)
        self._arrays_cache = None
        tasks_on_proc.insert(position, task)
        if finish > self._prt[proc]:
            self._prt[proc] = finish
        return ScheduledTask(task, proc, start, finish)

    def _append(self, task: int, proc: int, start: float) -> float:
        """Non-insertion append without validation; returns the finish time.

        The fast scheduling kernels (``docs/performance.md``) use this in
        place of :meth:`place`; the caller guarantees everything ``place``
        checks — valid ids, an unscheduled task, and ``start >= PRT(proc)``
        — and the equivalence/validation test suite re-checks the resulting
        schedules from first principles via :meth:`violations`.
        """
        speeds = self._machine.speeds
        comp = self._graph.comp(task)
        finish = start + (comp if speeds is None else comp / speeds[proc])
        self._proc[task] = proc
        self._start[task] = start
        self._finish[task] = finish
        self._placed[task] = True
        self._num_placed += 1
        self._order.append(task)
        self._arrays_cache = None
        self._proc_tasks[proc].append(task)
        if finish > self._prt[proc]:
            self._prt[proc] = finish
        return finish

    @classmethod
    def _from_arrays(
        cls,
        graph: TaskGraph,
        machine: MachineModel,
        order: List[int],
        proc: List[int],
        start: List[float],
        finish: List[float],
        prt: List[float],
    ) -> "Schedule":
        """Bulk constructor for the array kernels (``docs/performance.md``).

        ``order`` is the placement order; ``proc``, ``start`` and ``finish``
        are task-indexed lists the schedule takes ownership of; ``prt`` is
        the per-processor ready time after the last placement.  The caller
        guarantees what :meth:`place` checks (each task placed once,
        non-insertion starts, ``finish = start + duration``); the
        equivalence suite re-checks kernel outputs from first principles
        via :meth:`violations`.
        """
        self = cls.__new__(cls)
        self._graph = graph
        self._machine = machine
        self._proc = proc
        self._start = start
        self._finish = finish
        n = graph.num_tasks
        placed = [False] * n
        proc_tasks: List[List[int]] = [[] for _ in machine.procs]
        for t in order:
            placed[t] = True
            proc_tasks[proc[t]].append(t)
        self._placed = placed
        self._num_placed = len(order)
        self._proc_tasks = proc_tasks
        self._prt = prt
        self._order = order
        self._arrays_cache = None
        self._flb_prefer = None
        return self

    def _insertion_position(
        self, proc: int, start: float, finish: float, task: int
    ) -> int:
        """Index at which ``[start, finish)`` fits into ``proc``'s idle gaps."""
        import bisect

        tasks_on_proc = self._proc_tasks[proc]
        starts = [self._start[t] for t in tasks_on_proc]
        position = bisect.bisect_right(starts, start)
        if position > 0:
            prev = tasks_on_proc[position - 1]
            if self._finish[prev] > start + _EPS:
                raise ScheduleError(
                    f"task {task} insertion at {start} overlaps task {prev} "
                    f"finishing at {self._finish[prev]} on processor {proc}"
                )
        if position < len(tasks_on_proc):
            nxt = tasks_on_proc[position]
            if finish > self._start[nxt] + _EPS:
                raise ScheduleError(
                    f"task {task} insertion ending {finish} overlaps task {nxt} "
                    f"starting at {self._start[nxt]} on processor {proc}"
                )
        return position

    def earliest_gap(self, proc: int, lower_bound: float, duration: float) -> float:
        """Earliest start >= ``lower_bound`` at which a ``duration``-long task
        fits on ``proc`` — inside an idle gap or after the last task.

        ``O(tasks on proc)``; the building block of insertion-based
        placement.
        """
        candidate = max(lower_bound, 0.0)
        for t in self._proc_tasks[proc]:
            if self._start[t] - candidate >= duration - _EPS:
                return candidate
            if self._finish[t] > candidate:
                candidate = self._finish[t]
        return candidate

    # -- queries -------------------------------------------------------------

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def machine(self) -> MachineModel:
        return self._machine

    @property
    def num_procs(self) -> int:
        return self._machine.num_procs

    def is_scheduled(self, task: int) -> bool:
        return self._placed[task]

    @property
    def complete(self) -> bool:
        """True when every task has been placed."""
        return self._num_placed == self._graph.num_tasks

    def proc_of(self, task: int) -> int:
        """``PROC(t)``; raises if the task is unscheduled."""
        self._check_placed(task)
        return self._proc[task]

    def start_of(self, task: int) -> float:
        """``ST(t)``."""
        self._check_placed(task)
        return self._start[task]

    def finish_of(self, task: int) -> float:
        """``FT(t)``."""
        self._check_placed(task)
        return self._finish[task]

    def entry(self, task: int) -> ScheduledTask:
        self._check_placed(task)
        return ScheduledTask(task, self._proc[task], self._start[task], self._finish[task])

    def prt(self, proc: int) -> float:
        """Processor ready time: finish of the last task on ``proc``."""
        return self._prt[proc]

    def proc_tasks(self, proc: int) -> Tuple[int, ...]:
        """Tasks assigned to ``proc`` in execution order."""
        return tuple(self._proc_tasks[proc])

    def assignment(self) -> Dict[int, int]:
        """``{task: proc}`` for all scheduled tasks."""
        return {t: self._proc[t] for t in self._graph.tasks() if self._placed[t]}

    def placement_order(self) -> Tuple[int, ...]:
        """Task ids in the order the scheduler placed them.

        Start times alone cannot recover this (simultaneous starts on
        different processors are common); the warm-start rescheduler
        (:mod:`repro.incremental`) replays a base schedule's decision
        sequence, so the order is recorded explicitly.
        """
        return tuple(self._order)

    def _placement_arrays(
        self,
    ) -> Tuple[
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
        npt.NDArray[np.float64],
        npt.NDArray[np.float64],
    ]:
        """``(order, proc, start, finish)`` as NumPy vectors (cached).

        ``order`` is placement-order task ids; the other three are
        task-indexed.  Read-only by contract — the warm-start path gathers
        prefix placements from these without per-task Python loops.
        """
        cached = self._arrays_cache
        if cached is None:
            cached = (
                np.asarray(self._order, dtype=np.int64),
                np.asarray(self._proc, dtype=np.int64),
                np.asarray(self._start, dtype=np.float64),
                np.asarray(self._finish, dtype=np.float64),
            )
            self._arrays_cache = cached
        return cached

    def __iter__(self) -> Iterator[ScheduledTask]:
        """Iterate placements in global start-time order."""
        order = sorted(
            (t for t in self._graph.tasks() if self._placed[t]),
            key=lambda t: (self._start[t], self._proc[t]),
        )
        for t in order:
            yield self.entry(t)

    def __len__(self) -> int:
        return self._num_placed

    @property
    def makespan(self) -> float:
        """Parallel completion time ``T_par = max_p PRT(p)``."""
        return max(self._prt)

    def num_procs_used(self) -> int:
        return sum(1 for tasks in self._proc_tasks if tasks)

    def __repr__(self) -> str:
        done = "complete" if self.complete else f"{self._num_placed}/{self._graph.num_tasks}"
        return (
            f"<Schedule P={self.num_procs} {done} "
            f"makespan={self.makespan:.3f}>"
        )

    # -- validation -----------------------------------------------------------

    def violations(self) -> List[str]:
        """Check all schedule-correctness conditions; return human-readable
        descriptions of every violation (empty list = valid).

        Delegates to the independent checker in :mod:`repro.verify.certify`
        (structural invariants ``S001``..``S006``), which recomputes every
        quantity from the graph and machine model rather than trusting this
        class's internals.  Use :func:`repro.verify.certify` directly for
        the machine-readable :class:`~repro.verify.Certificate` and the
        FLB/ETF greedy certificate.
        """
        from repro.verify.certify import certify

        return [v.message for v in certify(self).violations]

    def validate(self) -> "Schedule":
        """Raise :class:`InvalidScheduleError` on any violation; else return self."""
        problems = self.violations()
        if problems:
            detail = "; ".join(problems[:5])
            more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
            raise InvalidScheduleError(f"invalid schedule: {detail}{more}")
        return self

    # -- rendering ---------------------------------------------------------------

    def as_table(self) -> str:
        """Render placements as an aligned text table (start-time order)."""
        from repro.util.tables import format_table

        rows = [
            (self._graph.name(e.task), e.task, e.proc, e.start, e.finish)
            for e in self
        ]
        return format_table(
            ["task", "id", "proc", "start", "finish"],
            rows,
            title=f"schedule on {self.num_procs} processors, makespan {self.makespan:g}",
        )

    def _check_placed(self, task: int) -> None:
        if not self._placed[task]:
            raise ScheduleError(f"task {task} is not scheduled")
