"""SVG Gantt-chart export.

Dependency-free vector rendering of schedules: one lane per processor,
one rounded rectangle per task (critical tasks highlighted), a time axis,
and hover tooltips (SVG ``<title>`` elements) carrying task name and exact
times.  Complements the ASCII renderer for reports and documentation.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Set, Union
from xml.sax.saxutils import escape

from repro.schedule.analysis import slack_times
from repro.schedule.schedule import Schedule

__all__ = ["render_gantt_svg", "save_gantt_svg"]

#: Qualitative fill palette, cycled per task id.
_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
)
_CRITICAL_STROKE = "#c0392b"


def render_gantt_svg(
    schedule: Schedule,
    width: int = 900,
    lane_height: int = 34,
    highlight_critical: bool = True,
) -> str:
    """Render ``schedule`` as an SVG document string."""
    if width < 100:
        raise ValueError(f"width must be >= 100, got {width}")
    graph = schedule.graph
    makespan = schedule.makespan
    procs = schedule.machine.num_procs
    margin_left = 46
    margin_top = 18
    axis_height = 26
    chart_w = width - margin_left - 10
    height = margin_top + procs * lane_height + axis_height
    scale = chart_w / makespan if makespan > 0 else 1.0

    critical: Set[int] = set()
    if highlight_critical and schedule.complete:
        slack = slack_times(schedule)
        critical = {t for t, s in enumerate(slack) if s <= 1e-9}

    def x(t: float) -> float:
        return margin_left + t * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    # Lanes and labels.
    for p in range(procs):
        y = margin_top + p * lane_height
        fill = "#f7f7f7" if p % 2 else "#efefef"
        parts.append(
            f'<rect x="{margin_left}" y="{y}" width="{chart_w}" '
            f'height="{lane_height - 4}" fill="{fill}"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + lane_height / 2}" '
            f'text-anchor="end" dominant-baseline="middle">P{p}</text>'
        )
    # Tasks.
    for p in range(procs):
        y = margin_top + p * lane_height + 2
        for task in schedule.proc_tasks(p):
            start = schedule.start_of(task)
            finish = schedule.finish_of(task)
            w = max(1.0, (finish - start) * scale)
            color = _PALETTE[task % len(_PALETTE)]
            stroke = (
                f' stroke="{_CRITICAL_STROKE}" stroke-width="2"'
                if task in critical
                else ' stroke="#444" stroke-width="0.5"'
            )
            name = escape(graph.name(task))
            parts.append(
                f'<rect x="{x(start):.2f}" y="{y}" width="{w:.2f}" '
                f'height="{lane_height - 8}" rx="3" fill="{color}"{stroke}>'
                f"<title>{name}: [{start:g}, {finish:g}) on P{p}"
                f"{' (critical)' if task in critical else ''}</title></rect>"
            )
            if w > 28:
                parts.append(
                    f'<text x="{x(start) + w / 2:.2f}" '
                    f'y="{y + (lane_height - 8) / 2}" text-anchor="middle" '
                    f'dominant-baseline="middle" fill="white">{name[:12]}</text>'
                )
    # Time axis.
    axis_y = margin_top + procs * lane_height + 4
    parts.append(
        f'<line x1="{margin_left}" y1="{axis_y}" x2="{margin_left + chart_w}" '
        f'y2="{axis_y}" stroke="#333"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = makespan * frac
        parts.append(
            f'<line x1="{x(t):.2f}" y1="{axis_y}" x2="{x(t):.2f}" '
            f'y2="{axis_y + 4}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x(t):.2f}" y="{axis_y + 16}" '
            f'text-anchor="middle">{t:g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_gantt_svg(
    schedule: Schedule,
    path: Union[str, Path],
    width: int = 900,
    lane_height: int = 34,
    highlight_critical: bool = True,
) -> None:
    """Write the SVG rendering of ``schedule`` to ``path``."""
    Path(path).write_text(
        render_gantt_svg(schedule, width, lane_height, highlight_critical)
    )
