"""Scheduling algorithms: FLB plus the baselines it is evaluated against.

All schedulers share the signature
``scheduler(graph, num_procs=None, machine=None, **options) -> Schedule``.

========= ============================================ =========================================
name      algorithm                                    complexity
========= ============================================ =========================================
flb       Fast Load Balancing (the paper)              ``O(V (log W + log P) + E)``
etf       Earliest Task First                          ``O(W (E + V) P)``
mcp       Modified Critical Path (random ties)         ``O(V log V + (E + V) P)``
mcp-lex   MCP with lexicographic descendant ties       ``O(V^2 ...)``
fcp       Fast Critical Path                           ``O(V (log W + log P) + E)``
dls       Dynamic Level Scheduling                     ``O(W (E + V) P)``
hlfet     Highest Level First w/ Estimated Times       ``O(V log V + (E + V) P)``
heft      Heterogeneous Earliest Finish Time (ext.)    ``O(V log V + (E + V) P + V^2/P)``
mcp-i     MCP with idle-gap insertion (extension)      ``O(V log V + (E + V) P + V^2/P)``
hlfet-i   HLFET with idle-gap insertion (extension)    ``O(V log V + (E + V) P + V^2/P)``
dsc-llb   DSC clustering + LLB cluster mapping         ``O((E + V) log V + C log C)``
sarkar-llb Sarkar edge-zeroing + LLB (extension)       ``O(E (V + E))``
========= ============================================ =========================================
"""

from __future__ import annotations

import functools
from typing import Callable, Dict

from repro.core.flb import flb
from repro.exceptions import SchedulerError
from repro.schedule.schedule import Schedule
from repro.schedulers.dls import dls
from repro.schedulers.dsc import Clustering, dsc
from repro.schedulers.dsc_llb import dsc_llb
from repro.schedulers.etf import etf
from repro.schedulers.fcp import fcp
from repro.schedulers.heft import heft, upward_ranks
from repro.schedulers.hlfet import hlfet
from repro.schedulers.insertion import best_insertion_slot, hlfet_insertion, mcp_insertion
from repro.schedulers.llb import llb
from repro.schedulers.mcp import mcp, mcp_priority_order
from repro.schedulers.sarkar import sarkar, sarkar_llb

__all__ = [
    "SCHEDULERS",
    "get_scheduler",
    "flb",
    "etf",
    "mcp",
    "mcp_priority_order",
    "fcp",
    "dls",
    "hlfet",
    "heft",
    "upward_ranks",
    "mcp_insertion",
    "hlfet_insertion",
    "best_insertion_slot",
    "dsc",
    "llb",
    "dsc_llb",
    "sarkar",
    "sarkar_llb",
    "Clustering",
]

#: Registry of all scheduling algorithms by CLI/bench name.
SCHEDULERS: Dict[str, Callable[..., Schedule]] = {
    "flb": flb,
    "etf": etf,
    "mcp": mcp,
    "mcp-lex": functools.partial(mcp, tie="lex"),
    "fcp": fcp,
    "dls": dls,
    "hlfet": hlfet,
    "heft": heft,
    "mcp-i": mcp_insertion,
    "hlfet-i": hlfet_insertion,
    "dsc-llb": dsc_llb,
    "sarkar-llb": sarkar_llb,
}


def get_scheduler(name: str) -> Callable[..., Schedule]:
    """Look up a scheduler by registry name (see :data:`SCHEDULERS`)."""
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(SCHEDULERS))}"
        ) from None
