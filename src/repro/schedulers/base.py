"""Shared machinery for the baseline schedulers.

Everything here implements the common vocabulary of Section 2 of the paper:
estimated start times on partial schedules, ready-set tracking, and argument
resolution shared by every algorithm.  The baselines deliberately do *not*
reuse FLB's priority-list machinery — each is implemented the way its own
paper describes it, so cost comparisons between the algorithms remain
meaningful.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

from repro.exceptions import SchedulerError
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule

__all__ = [
    "resolve_machine",
    "reset_scheduler_deprecations",
    "emt_on",
    "est_on",
    "best_proc_for",
    "ReadyTracker",
]

#: Warn-once latch for the legacy integer ``num_procs`` scheduler argument.
_num_procs_warned = False


def reset_scheduler_deprecations() -> None:
    """Re-arm the one-per-process ``num_procs`` deprecation warning (tests)."""
    global _num_procs_warned
    _num_procs_warned = False


def resolve_machine(
    num_procs: Optional[int], machine: Optional[MachineModel]
) -> MachineModel:
    """Resolve the (num_procs, machine) argument pair used by every scheduler.

    ``machine`` is the canonical spelling; a bare integer ``num_procs``
    still resolves to the homogeneous ``MachineModel(num_procs)`` but is
    deprecated (one :class:`DeprecationWarning` per process — this shim is
    the single place every scheduler's legacy argument funnels through).
    Passing both with disagreeing processor counts is a
    :class:`~repro.exceptions.SchedulerError`.
    """
    global _num_procs_warned
    if machine is None:
        if num_procs is None:
            raise SchedulerError("scheduler requires num_procs or machine")
        if not _num_procs_warned:
            _num_procs_warned = True
            warnings.warn(
                "calling a scheduler with an integer num_procs is "
                "deprecated; pass machine=MachineModel(num_procs) instead "
                "(see docs/machine-model.md). This warning is emitted once "
                "per process.",
                DeprecationWarning,
                stacklevel=3,
            )
        return MachineModel(num_procs)
    if num_procs is not None and machine.num_procs != num_procs:
        raise SchedulerError(
            f"num_procs={num_procs} conflicts with machine.num_procs={machine.num_procs}"
        )
    return machine


def emt_on(schedule: Schedule, task: int, proc: int) -> float:
    """``EMT(task, proc)``: latest message arrival if ``task`` ran on ``proc``
    (messages from predecessors already on ``proc`` are free).

    All predecessors must already be scheduled.  ``O(in_degree)``.
    """
    graph = schedule.graph
    machine = schedule.machine
    emt = 0.0
    for pred in graph.preds(task):
        arrival = schedule.finish_of(pred) + machine.comm_delay(
            schedule.proc_of(pred), proc, graph.comm(pred, task)
        )
        if arrival > emt:
            emt = arrival
    return emt


def est_on(schedule: Schedule, task: int, proc: int) -> float:
    """``EST(task, proc) = max(EMT(task, proc), PRT(proc))``."""
    return max(emt_on(schedule, task, proc), schedule.prt(proc))


def best_proc_for(schedule: Schedule, task: int) -> Tuple[int, float]:
    """Scan all processors for the minimum-``EST`` placement of ``task``.

    Returns ``(proc, est)``; ties go to the lower processor id.  This is the
    ``O(P * in_degree)`` inner step of MCP/ETF-style algorithms.
    """
    best_proc = 0
    best_est = float("inf")
    for proc in schedule.machine.procs:
        est = est_on(schedule, task, proc)
        if est < best_est:
            best_est = est
            best_proc = proc
    return best_proc, best_est


class ReadyTracker:
    """Incremental ready-set maintenance (a task is ready when every
    predecessor has been scheduled)."""

    def __init__(self, graph: TaskGraph) -> None:
        graph.freeze()
        self._graph = graph
        self._remaining: List[int] = [graph.in_degree(t) for t in graph.tasks()]
        self.ready: List[int] = list(graph.entry_tasks)

    def mark_scheduled(self, task: int) -> List[int]:
        """Record ``task`` as scheduled; return (and track) newly ready tasks."""
        newly = []
        for succ in self._graph.succs(task):
            self._remaining[succ] -= 1
            if self._remaining[succ] == 0:
                newly.append(succ)
        self.ready.extend(newly)
        return newly

    def remove_ready(self, task: int) -> None:
        self.ready.remove(task)
