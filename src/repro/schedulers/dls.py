"""DLS — Dynamic Level Scheduling (Sih & Lee, 1993).

One of the one-step baselines the paper cites (ref [10]).  At each iteration
DLS computes, for every ready task ``t`` and processor ``p``, the *dynamic
level*

    DL(t, p) = SL(t) - EST(t, p)

where ``SL`` is the static level (bottom level *without* communication
costs, per Sih & Lee), and commits the pair with the **maximum** dynamic
level.  Like ETF this is an exhaustive ``O(W P)`` scan per iteration; unlike
ETF, the criterion trades start time against remaining critical-path length
instead of minimising start time alone.

Ties are broken toward the larger static level, then smaller task id, then
smaller processor id.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.properties import static_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ReadyTracker, est_on, resolve_machine

__all__ = ["dls"]


def dls(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with DLS.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    sl = static_levels(graph)
    tracker = ReadyTracker(graph)

    for _ in range(graph.num_tasks):
        best_key = None
        best_task = -1
        best_proc = -1
        best_est = 0.0
        for task in tracker.ready:
            for proc in machine.procs:
                est = est_on(schedule, task, proc)
                dl = sl[task] - est
                key = (-dl, -sl[task], task, proc)
                if best_key is None or key < best_key:
                    best_key = key
                    best_task, best_proc, best_est = task, proc, est
        assert best_key is not None, "ready set empty with tasks unscheduled"
        schedule.place(best_task, best_proc, best_est)
        tracker.remove_ready(best_task)
        tracker.mark_scheduled(best_task)

    return schedule
