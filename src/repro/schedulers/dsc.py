"""DSC — Dominant Sequence Clustering (Yang & Gerasoulis, 1994).

The clustering step of the paper's multi-step baseline (Section 3.3).  DSC
schedules for an *unbounded* number of processors by grouping heavily
communicating tasks into clusters; a second step (LLB here) maps clusters
onto the ``P`` physical processors.

Tasks are examined in decreasing order of the dynamic priority
``tlevel(t) + blevel(t)`` (the length of the longest path through ``t``,
the "dominant sequence").  ``blevel`` is static; ``tlevel`` is accumulated
incrementally as predecessors are examined.  When a task is examined it
either

* joins the predecessor cluster that minimises its start time — appended
  after that cluster's current last task, with messages from inside the
  cluster now free — when that strictly reduces its start time below the
  all-messages-remote value, or
* starts a new cluster of its own.

This is the DSC-I variant: the DSRW guard for partially free tasks is
omitted (DESIGN.md §4.3) — the standard simplification in OSS
reimplementations, preserving the cost/quality trade-off the paper compares
against.  Complexity ``O((V + E) log V)`` heap work plus ``O(sum of
in_degree^2)`` for candidate-cluster evaluation (negligible on the bounded-
degree evaluation graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.util.heap import IndexedHeap

__all__ = ["dsc", "Clustering"]


@dataclass(frozen=True)
class Clustering:
    """Result of a clustering pass.

    ``clusters[c]`` lists the tasks of cluster ``c`` in execution order;
    ``cluster_of[t]`` is the cluster id of task ``t``; ``tlevel[t]`` is the
    start time DSC assigned on the unbounded virtual machine; ``makespan``
    is the clustered schedule length on that machine.
    """

    clusters: Tuple[Tuple[int, ...], ...]
    cluster_of: Tuple[int, ...]
    tlevel: Tuple[float, ...]
    makespan: float

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def dsc(graph: TaskGraph, machine: Optional[MachineModel] = None) -> Clustering:
    """Cluster ``graph`` with DSC(-I).  See module docstring.

    ``machine`` only supplies the remote-communication cost model (scale /
    latency); the processor count is ignored — clustering targets an
    unbounded machine.
    """
    graph.freeze()
    if machine is None:
        machine = MachineModel(1)
    n = graph.num_tasks
    bl = bottom_levels(graph)

    cluster_of: List[int] = [-1] * n
    clusters: List[List[int]] = []
    cluster_finish: List[float] = []
    tlevel = [0.0] * n
    finish = [0.0] * n
    # Arrival time with every incoming message charged remotely; accumulated
    # as predecessors get examined.  This is the task's tlevel if it starts
    # its own cluster.
    remote_tlevel = [0.0] * n

    unexamined_preds = [graph.in_degree(t) for t in graph.tasks()]
    free: IndexedHeap = IndexedHeap()  # key: (-(tlevel + blevel), id)
    for t in graph.entry_tasks:
        free.push(t, (-(remote_tlevel[t] + bl[t]), t))

    examined = 0
    while free:
        task, _ = free.pop()
        examined += 1
        preds = graph.preds(task)
        best_start = remote_tlevel[task]
        best_cluster = -1
        for c in sorted({cluster_of[p] for p in preds}):
            start = cluster_finish[c]
            for p in preds:
                if cluster_of[p] == c:
                    arrival = finish[p]  # message inside the cluster: free
                else:
                    arrival = finish[p] + machine.remote_delay(graph.comm(p, task))
                if arrival > start:
                    start = arrival
            # Accept a merge only when it strictly reduces the start time.
            if start < best_start:
                best_start = start
                best_cluster = c
        if best_cluster == -1:
            best_cluster = len(clusters)
            clusters.append([])
            cluster_finish.append(0.0)
        cluster_of[task] = best_cluster
        clusters[best_cluster].append(task)
        tlevel[task] = best_start
        finish[task] = best_start + graph.comp(task)
        cluster_finish[best_cluster] = finish[task]

        for succ in graph.succs(task):
            arrival = finish[task] + machine.remote_delay(graph.comm(task, succ))
            if arrival > remote_tlevel[succ]:
                remote_tlevel[succ] = arrival
            unexamined_preds[succ] -= 1
            if unexamined_preds[succ] == 0:
                free.push(succ, (-(remote_tlevel[succ] + bl[succ]), succ))

    assert examined == n, "DSC did not examine every task (bug)"
    return Clustering(
        clusters=tuple(tuple(c) for c in clusters),
        cluster_of=tuple(cluster_of),
        tlevel=tuple(tlevel),
        makespan=max(finish) if n else 0.0,
    )
