"""DSC-LLB — the paper's multi-step baseline (Section 3.3).

Step 1 clusters the graph with DSC (minimising communication on an
unbounded machine); step 2 maps the clusters onto the ``P`` physical
processors with LLB.  The composition is cheap —
``O((E + V) log V)`` + ``O(C log C + V)`` — and, per the paper, trades
10–40% schedule quality against the one-step algorithms for that cost.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine
from repro.schedulers.dsc import dsc
from repro.schedulers.llb import llb

__all__ = ["dsc_llb"]


def dsc_llb(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    priority: str = "largest",
) -> Schedule:
    """Schedule ``graph`` with the DSC-LLB multi-step method."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    clustering = dsc(graph, machine)
    return llb(graph, clustering, machine=machine, priority=priority)
