"""ETF — Earliest Task First (Hwang, Chow, Anger & Lee, 1989).

The paper's Section 3.2: at each iteration ETF tentatively schedules every
ready task on every processor and commits the pair with the minimum start
time.  This is the same greedy criterion FLB implements, but found by an
exhaustive ``O(W P)`` scan per iteration (each ``EST`` costing
``O(in_degree)``), for the paper's quoted total of ``O(W (E + V) P)``.

Ties between pairs with equal earliest start time are broken by a *static*
priority — the task's bottom level (larger first), then task id, then
processor id — matching the paper's remark that "ETF uses statically
computed task priorities" where FLB uses dynamic message-arrival priorities.
That difference in tie-breaking is the only way the two algorithms' outputs
can diverge (Theorem 3), and is what the X2 ablation benchmark measures.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ReadyTracker, est_on, resolve_machine

__all__ = ["etf"]


def etf(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with ETF.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    tracker = ReadyTracker(graph)

    for _ in range(graph.num_tasks):
        best_key = None
        best_task = -1
        best_proc = -1
        best_est = 0.0
        for task in tracker.ready:
            for proc in machine.procs:
                est = est_on(schedule, task, proc)
                key = (est, -bl[task], task, proc)
                if best_key is None or key < best_key:
                    best_key = key
                    best_task, best_proc, best_est = task, proc, est
        assert best_key is not None, "ready set empty with tasks unscheduled"
        schedule.place(best_task, best_proc, best_est)
        tracker.remove_ready(best_task)
        tracker.mark_scheduled(best_task)

    return schedule
