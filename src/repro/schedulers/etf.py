"""ETF — Earliest Task First (Hwang, Chow, Anger & Lee, 1989).

The paper's Section 3.2: at each iteration ETF tentatively schedules every
ready task on every processor and commits the pair with the minimum start
time.  This is the same greedy criterion FLB implements, but found by an
exhaustive ``O(W P)`` scan per iteration (each ``EST`` costing
``O(in_degree)``), for the paper's quoted total of ``O(W (E + V) P)``.

Ties between pairs with equal earliest start time are broken by a *static*
priority — the task's bottom level (larger first), then task id, then
processor id — matching the paper's remark that "ETF uses statically
computed task priorities" where FLB uses dynamic message-arrival priorities.
That difference in tie-breaking is the only way the two algorithms' outputs
can diverge (Theorem 3), and is what the X2 ablation benchmark measures.

Implementation note (``docs/performance.md``): the inner ``EST`` evaluation
runs on the graph's CSR view with task finish/processor data hoisted into
local arrays, but the exhaustive per-(task, processor) predecessor scan is
deliberately *kept* — memoizing per-ready-task message maxima would collapse
the ``E x P`` product out of ETF's cost and silently falsify the paper's
Fig. 2 cost comparison (guarded by ``tests/test_paper_claims.py``).  The
CSR rewrite changes constants only, never the complexity.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine

__all__ = ["etf"]


def etf(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with ETF.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    n = graph.num_tasks
    csr = graph.csr().lists
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    succ_ptr, succ_ids = csr.succ_ptr, csr.succ_ids
    lat, scale = machine.latency, machine.comm_scale
    procs = range(machine.num_procs)

    finish = [0.0] * n
    on_proc = [0] * n
    pp = csr.pred_ptr
    npreds = [pp[t + 1] - pp[t] for t in range(n)]
    prt = [0.0] * machine.num_procs
    ready = list(graph.entry_tasks)

    for _ in range(n):
        best_est = float("inf")
        best_tie = (0.0, -1, -1)  # (-BL, task, proc)
        best_task = -1
        best_proc = -1
        for task in ready:
            nbl = -bl[task]
            lo = pred_ptr[task]
            hi = pred_ptr[task + 1]
            for proc in procs:
                # EMT(task, proc): same-processor messages are free.
                emt = 0.0
                for i in range(lo, hi):
                    pred = pred_ids[i]
                    ft = finish[pred]
                    # Parenthesised like MachineModel.remote_delay so the
                    # float rounding matches the reference exactly.
                    arr = ft if on_proc[pred] == proc else ft + (lat + scale * pred_comm[i])
                    if arr > emt:
                        emt = arr
                rt = prt[proc]
                est = emt if emt > rt else rt
                if est < best_est or (
                    est == best_est and (nbl, task, proc) < best_tie
                ):
                    best_est = est
                    best_tie = (nbl, task, proc)
                    best_task = task
                    best_proc = proc
        assert best_task >= 0, "ready set empty with tasks unscheduled"
        ft = schedule._append(best_task, best_proc, best_est)
        prt[best_proc] = ft
        finish[best_task] = ft
        on_proc[best_task] = best_proc
        ready.remove(best_task)

        for j in range(succ_ptr[best_task], succ_ptr[best_task + 1]):
            succ = succ_ids[j]
            npreds[succ] -= 1
            if not npreds[succ]:
                ready.append(succ)

    return schedule
