"""FCP — Fast Critical Path (Rădulescu & van Gemund, ICS 1999; ref [7]).

FLB's direct ancestor.  FCP keeps the ready tasks in a priority queue
ordered by a *static* priority (the bottom level — hence "critical path"),
and schedules, at each iteration, the highest-priority ready task.  Its key
result (reused by FLB) is that only **two processors** need to be considered
to start that task the earliest:

* the task's enabling processor (where its last message originates), and
* the processor that becomes idle the earliest.

The difference from FLB is purely in *task* selection: FCP picks the ready
task with the best static priority, which need not be the task that can
start the earliest; FLB strengthens the selection to the ETF criterion at
the same asymptotic cost.  Complexity: ``O(V (log W + log P) + E)``.

Implementation note (``docs/performance.md``): the hot loops run on the
graph's CSR view.  A task's predecessors are all placed by the time it
becomes ready, so a single fused pass computes its ``LMT``, enabling
processor, and ``EMT`` on that processor together; the ready queue is a
plain :mod:`heapq` (tasks enter and leave exactly once) and the idle
processor queue uses lazy invalidation keyed on the strictly increasing
``PRT``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional, Tuple

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine

__all__ = ["fcp"]


def fcp(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with FCP.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    n = graph.num_tasks
    csr = graph.csr().lists
    pred_ptr, pred_ids, pred_comm = csr.pred_ptr, csr.pred_ids, csr.pred_comm
    succ_ptr, succ_ids = csr.succ_ptr, csr.succ_ids
    lat, scale = machine.latency, machine.comm_scale

    ready: List[Tuple[float, int]] = [(-bl[t], t) for t in graph.entry_tasks]
    heapify(ready)
    # Processors by (PRT, id); an entry is current iff its key equals the
    # processor's PRT, which strictly increases — stale entries sink out.
    prt = [0.0] * machine.num_procs
    idle_heap = [(0.0, p) for p in machine.procs]  # sorted => a valid heap
    # Cached per-ready-task data, all fixed once the task becomes ready:
    # last message arrival, enabling processor, and EMT on it.
    finish = [0.0] * n
    on_proc = [0] * n
    lmt = [0.0] * n
    ep = [0] * n
    emt_ep = [0.0] * n
    pp = csr.pred_ptr
    npreds = [pp[t + 1] - pp[t] for t in range(n)]

    while ready:
        _, task = heappop(ready)
        # Candidate 1: the enabling processor (last message becomes free).
        ep_proc = ep[task]
        est_ep = max(emt_ep[task], prt[ep_proc])
        # Candidate 2: the earliest-idle processor (all messages remote).
        while True:
            idle_prt, idle_proc = idle_heap[0]
            if prt[idle_proc] == idle_prt:
                break
            heappop(idle_heap)
        est_idle = max(lmt[task], idle_prt)
        if est_ep <= est_idle:
            proc, est = ep_proc, est_ep
        else:
            proc, est = idle_proc, est_idle

        ft = schedule._append(task, proc, est)
        prt[proc] = ft
        heappush(idle_heap, (ft, proc))
        finish[task] = ft
        on_proc[task] = proc

        for j in range(succ_ptr[task], succ_ptr[task + 1]):
            succ = succ_ids[j]
            npreds[succ] -= 1
            if npreds[succ]:
                continue
            # Fused pass: LMT/EP with the (arrival, FT, id) tie rule, plus
            # EMT on EP = max(max FT, best arrival from off-EP processors);
            # see the matching loop in repro.core.flb for the derivation.
            b_arr = -1.0
            b_ft = -1.0
            b_id = -1
            b_proc = 0
            alt = 0.0
            max_ft = 0.0
            for i in range(pred_ptr[succ], pred_ptr[succ + 1]):
                pred = pred_ids[i]
                ft = finish[pred]
                # Parenthesised like MachineModel.remote_delay so the float
                # rounding matches the reference implementations exactly.
                arr = ft + (lat + scale * pred_comm[i])
                pp = on_proc[pred]
                if ft > max_ft:
                    max_ft = ft
                if arr > b_arr or (
                    arr == b_arr and (ft > b_ft or (ft == b_ft and pred > b_id))
                ):
                    if pp != b_proc and b_arr > alt:
                        alt = b_arr
                    b_arr = arr
                    b_ft = ft
                    b_id = pred
                    b_proc = pp
                elif pp != b_proc and arr > alt:
                    alt = arr
            lmt[succ] = b_arr
            ep[succ] = b_proc
            emt_ep[succ] = max_ft if max_ft > alt else alt
            heappush(ready, (-bl[succ], succ))

    return schedule
