"""FCP — Fast Critical Path (Rădulescu & van Gemund, ICS 1999; ref [7]).

FLB's direct ancestor.  FCP keeps the ready tasks in a priority queue
ordered by a *static* priority (the bottom level — hence "critical path"),
and schedules, at each iteration, the highest-priority ready task.  Its key
result (reused by FLB) is that only **two processors** need to be considered
to start that task the earliest:

* the task's enabling processor (where its last message originates), and
* the processor that becomes idle the earliest.

The difference from FLB is purely in *task* selection: FCP picks the ready
task with the best static priority, which need not be the task that can
start the earliest; FLB strengthens the selection to the ETF criterion at
the same asymptotic cost.  Complexity: ``O(V (log W + log P) + E)``.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine
from repro.util.heap import IndexedHeap

__all__ = ["fcp"]


def fcp(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with FCP.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    n = graph.num_tasks

    ready: IndexedHeap = IndexedHeap()  # key: (-bottom level, id)
    idle: IndexedHeap = IndexedHeap()  # processors by (PRT, id)
    for p in machine.procs:
        idle.push(p, (0.0, p))
    # Cached per-ready-task data: last message arrival and enabling processor.
    lmt = [0.0] * n
    ep = [0] * n
    unscheduled_preds = [graph.in_degree(t) for t in graph.tasks()]
    for t in graph.entry_tasks:
        ready.push(t, (-bl[t], t))

    while ready:
        task, _ = ready.pop()
        # Candidate 1: the enabling processor (last message becomes free).
        ep_proc = ep[task]
        emt_ep = 0.0
        for pred in graph.preds(task):
            arrival = schedule.finish_of(pred) + machine.comm_delay(
                schedule.proc_of(pred), ep_proc, graph.comm(pred, task)
            )
            if arrival > emt_ep:
                emt_ep = arrival
        est_ep = max(emt_ep, schedule.prt(ep_proc))
        # Candidate 2: the earliest-idle processor (all messages remote).
        idle_proc = idle.peek_item()
        assert idle_proc is not None
        est_idle = max(lmt[task], schedule.prt(idle_proc))
        if est_ep <= est_idle:
            proc, est = ep_proc, est_ep
        else:
            proc, est = idle_proc, est_idle

        placed = schedule.place(task, proc, est)
        idle.update(proc, (placed.finish, proc))

        for succ in graph.succs(task):
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] > 0:
                continue
            best = (-1.0, -1.0, -1)
            for pred in graph.preds(succ):
                ft = schedule.finish_of(pred)
                arrival = ft + machine.remote_delay(graph.comm(pred, succ))
                key = (arrival, ft, pred)
                if key > best:
                    best = key
                    lmt[succ] = arrival
                    ep[succ] = schedule.proc_of(pred)
            if not graph.preds(succ):  # unreachable: succ has a pred (task)
                lmt[succ] = 0.0
            ready.push(succ, (-bl[succ], succ))

    return schedule
