"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu, 2002).

The heterogeneous extension of this repository (the FLB authors' own
follow-up work took their schedulers heterogeneous; HEFT is the canonical
baseline for that setting).  Works on any :class:`MachineModel`; with
per-processor ``speeds`` a task with computation cost ``c`` runs for
``c / speeds[p]`` on processor ``p``.

Algorithm:

1. **Upward ranks**: ``rank(t) = mean_duration(t) + max over succs
   (comm(t, s) + rank(s))`` — the bottom level computed with
   processor-averaged execution times (on a homogeneous machine this is
   exactly the bottom level, and HEFT degenerates to an insertion-based
   bottom-level list scheduler).
2. Tasks in descending rank order (topological, since durations are
   positive).
3. Each task goes to the processor minimising its **earliest finish time**,
   with idle-gap insertion.

Minimising *finish* rather than *start* is what makes the algorithm
heterogeneity-aware: a slow processor can offer the earliest start but a
late finish.

Complexity ``O(V log V + (E + V) P + V^2 / P)`` (the last term from gap
scanning).
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import emt_on, resolve_machine

__all__ = ["heft", "upward_ranks"]


def upward_ranks(graph: TaskGraph, machine: MachineModel) -> List[float]:
    """HEFT's upward ranks: bottom levels with processor-averaged durations
    and remote-rate communication costs."""
    graph.freeze()
    rank = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for s in graph.succs(t):
            cand = machine.remote_delay(graph.comm(t, s)) + rank[s]
            if cand > best:
                best = cand
        rank[t] = machine.mean_duration(graph.comp(t)) + best
    return rank


def heft(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with HEFT.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    rank = upward_ranks(graph, machine)
    order = sorted(graph.tasks(), key=lambda t: (-rank[t], t))

    for task in order:
        best_proc = 0
        best_start = 0.0
        best_finish = float("inf")
        for proc in machine.procs:
            duration = machine.duration(graph.comp(task), proc)
            lower = emt_on(schedule, task, proc)
            start = schedule.earliest_gap(proc, lower, duration)
            finish = start + duration
            if finish < best_finish:
                best_finish = finish
                best_start = start
                best_proc = proc
        schedule.place(task, best_proc, best_start, insertion=True)

    return schedule
