"""HLFET — Highest Level First with Estimated Times (Adam, Chandy & Dickson).

The classic static list scheduler, included as an additional reference
point: tasks are ordered once by descending *static level* (bottom level
without communication costs) and each is placed on the processor where it
starts the earliest.

Because ``comp(t) > 0`` makes ``SL(parent) > SL(child)`` strictly, the
static order is topological, so predecessors are always scheduled first.
Complexity ``O(V log V + (E + V) P)`` — the cheapest of the exhaustive-scan
baselines, and typically the weakest on communication-heavy graphs since
its priorities ignore communication entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.properties import static_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import best_proc_for, resolve_machine

__all__ = ["hlfet"]


def hlfet(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """Schedule ``graph`` with HLFET.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    sl = static_levels(graph)
    order = sorted(graph.tasks(), key=lambda t: (-sl[t], t))
    for task in order:
        proc, est = best_proc_for(schedule, task)
        schedule.place(task, proc, est)
    return schedule
