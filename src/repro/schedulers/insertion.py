"""Insertion-based placement for static list schedulers (extension).

The schedulers in the paper place every task at the *end* of a processor's
queue (non-insertion).  The original MCP formulation, and insertion variants
of other static-order list schedulers, instead consider a processor's idle
*gaps*: a task may be slotted between two already-placed tasks when its
message-arrival lower bound and duration fit.

This module provides the shared placement primitive and the registry
variants ``mcp-i`` / ``hlfet-i``.  Insertion never hurts a static-order
scheduler's makespan on the same priority order (any end-of-queue slot is
also considered), and typically helps on join-heavy graphs where
non-insertion leaves long communication stalls; the cost is an extra
``O(tasks-on-proc)`` scan per (task, processor) pair.

Only schedulers with a *static* task order can use insertion safely here:
dynamic-selection algorithms (ETF/FLB) compute candidate start times
incrementally from ``PRT`` and would need different bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.graph.properties import static_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import emt_on, resolve_machine
from repro.schedulers.mcp import mcp_priority_order

__all__ = ["best_insertion_slot", "mcp_insertion", "hlfet_insertion"]


def best_insertion_slot(schedule: Schedule, task: int) -> Tuple[int, float]:
    """The (processor, start) minimising ``task``'s start time when idle-gap
    insertion is allowed.  Ties go to the lower processor id."""
    graph = schedule.graph
    machine = schedule.machine
    best_proc = 0
    best_start = float("inf")
    for proc in machine.procs:
        duration = machine.duration(graph.comp(task), proc)
        lower = emt_on(schedule, task, proc)
        start = schedule.earliest_gap(proc, lower, duration)
        if start < best_start:
            best_start = start
            best_proc = proc
    return best_proc, best_start


def _run_static_order(
    graph: TaskGraph, machine: MachineModel, order: Sequence[int]
) -> Schedule:
    schedule = Schedule(graph, machine)
    for task in order:
        proc, start = best_insertion_slot(schedule, task)
        schedule.place(task, proc, start, insertion=True)
    return schedule


def mcp_insertion(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    tie: str = "random",
    seed: int = 0,
) -> Schedule:
    """MCP with idle-gap insertion (closer to Wu & Gajski's original)."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    return _run_static_order(graph, machine, mcp_priority_order(graph, tie=tie, seed=seed))


def hlfet_insertion(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
) -> Schedule:
    """HLFET with idle-gap insertion."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    sl = static_levels(graph)
    order = sorted(graph.tasks(), key=lambda t: (-sl[t], t))
    return _run_static_order(graph, machine, order)
