"""LLB — List-based Load Balancing (Rădulescu, van Gemund & Lin, 1999).

The mapping/ordering step of the paper's multi-step baseline (Section 3.3):
given the clusters produced by DSC, LLB assigns clusters to the ``P``
physical processors and orders tasks, driven by load balancing:

1. select the destination processor ``p`` — the processor becoming idle the
   earliest;
2. select the task — the better of two candidates: (a) the
   highest-priority ready task whose cluster is already mapped to ``p``,
   and (b) the highest-priority ready task whose cluster is still
   unmapped.  Whichever starts earlier on ``p`` is scheduled there; if the
   unmapped candidate wins, its whole cluster becomes mapped to ``p``.

Ready tasks whose clusters are mapped to *other* processors wait for their
processor's turn.  If the earliest-idle processor has no candidate at all
(no unmapped ready task and nothing mapped to it), the next-idle processor
is considered, and so on.

Priority: the task's bottom level.  The FLB paper's related-work text says
the candidates use the "least bottom level", while LLB's own paper
prioritises the *largest*; we default to ``priority="largest"`` and keep
``"least"`` selectable — benchmark X3 ablates the choice (DESIGN.md §4.4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import SchedulerError
from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ReadyTracker, est_on, resolve_machine
from repro.schedulers.dsc import Clustering
from repro.util.heap import IndexedHeap

__all__ = ["llb"]


def llb(
    graph: TaskGraph,
    clustering: Clustering,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    priority: str = "largest",
) -> Schedule:
    """Map ``clustering`` onto processors with LLB.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    if priority not in ("largest", "least"):
        raise SchedulerError(
            f"unknown LLB priority {priority!r}; expected 'largest' or 'least'"
        )
    bl = bottom_levels(graph)
    sign = -1.0 if priority == "largest" else 1.0

    def prio_key(task: int) -> Tuple[float, int]:
        return (sign * bl[task], task)

    schedule = Schedule(graph, machine)
    tracker = ReadyTracker(graph)
    cluster_proc: List[Optional[int]] = [None] * clustering.num_clusters
    mapped_ready: List[IndexedHeap] = [IndexedHeap() for _ in machine.procs]
    unmapped_ready: IndexedHeap = IndexedHeap()
    # Ready-but-unmapped tasks bucketed by cluster, so a cluster's pending
    # ready tasks can be moved onto its processor the moment it gets mapped.
    cluster_pending: List[List[int]] = [[] for _ in range(clustering.num_clusters)]

    def enqueue_ready(task: int) -> None:
        c = clustering.cluster_of[task]
        p = cluster_proc[c]
        if p is None:
            unmapped_ready.push(task, prio_key(task))
            cluster_pending[c].append(task)
        else:
            mapped_ready[p].push(task, prio_key(task))

    for t in tracker.ready:
        enqueue_ready(t)

    for _ in range(graph.num_tasks):
        # Destination processor: earliest idle with at least one candidate.
        chosen: Optional[Tuple[int, int, float, bool]] = None  # task, proc, est, unmapped
        for proc in sorted(machine.procs, key=lambda p: (schedule.prt(p), p)):
            cand_mapped = mapped_ready[proc].peek_item()
            cand_unmapped = unmapped_ready.peek_item()
            if cand_mapped is None and cand_unmapped is None:
                continue
            best: Optional[Tuple[int, float, bool]] = None
            if cand_mapped is not None:
                best = (cand_mapped, est_on(schedule, cand_mapped, proc), False)
            if cand_unmapped is not None:
                est_u = est_on(schedule, cand_unmapped, proc)
                # Strict <: on ties the already-mapped task keeps its cluster
                # local instead of committing a fresh cluster to this proc.
                if best is None or est_u < best[1]:
                    best = (cand_unmapped, est_u, True)
            chosen = (best[0], proc, best[1], best[2])
            break
        if chosen is None:
            raise SchedulerError("no candidate task for any processor (bug)")

        task, proc, est, was_unmapped = chosen
        c = clustering.cluster_of[task]
        if was_unmapped:
            # Map the entire cluster to this processor.
            cluster_proc[c] = proc
            for pending in cluster_pending[c]:
                unmapped_ready.remove(pending)
                if pending != task:
                    mapped_ready[proc].push(pending, prio_key(pending))
            cluster_pending[c].clear()
        else:
            mapped_ready[proc].remove(task)

        schedule.place(task, proc, est)
        tracker.remove_ready(task)
        for succ in tracker.mark_scheduled(task):
            enqueue_ready(succ)

    return schedule
