"""MCP — Modified Critical Path (Wu & Gajski, 1990).

The paper's Section 3.1: task priorities are the *latest possible start
times* ``ALAP(t) = CP - BL(t)`` (smaller = higher priority).  Tasks are
scheduled in priority order, each on the processor where it can start the
earliest.

Two tie-breaking variants are provided, matching the paper:

* ``tie="random"`` (default) — the lower-cost version the paper selects for
  its experiments: among equal-ALAP tasks the order is randomised (here:
  deterministically, from ``seed``).  Complexity
  ``O(V log V + (E + V) P)``.
* ``tie="lex"`` — the original MCP rule: each task carries the sorted list
  of the ALAPs of itself and all of its descendants, and equal-ALAP tasks
  are ordered by lexicographic comparison of those lists.  ``O(V^2)``-ish in
  time and space; fine for the graph sizes in the evaluation but not for
  huge graphs.

Because ``comp(t) > 0`` implies ``ALAP(parent) < ALAP(child)`` strictly, the
priority order is always a valid topological order, so every task's
predecessors are scheduled (and its ``EMT`` computable) when its turn comes.

Placement is non-insertion (a task starts no earlier than the processor's
ready time), consistent with every other scheduler in this repository; see
DESIGN.md §4.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import SchedulerError
from repro.graph.properties import alap_times
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import best_proc_for, resolve_machine

__all__ = ["mcp", "mcp_priority_order"]


def _descendant_alap_lists(
    graph: TaskGraph, alap: List[float]
) -> List[Tuple[float, ...]]:
    """For each task, the sorted tuple of ALAPs of the task and all its
    descendants (the original MCP tie-breaking key)."""
    n = graph.num_tasks
    # Collect descendant sets via reverse topological sweep over bitsets.
    reach = [0] * n
    for t in reversed(graph.topological_order):
        r = 0
        for s in graph.succs(t):
            r |= (1 << s) | reach[s]
        reach[t] = r
    keys: List[Tuple[float, ...]] = [()] * n
    for t in range(n):
        alaps = [alap[t]]
        mask = reach[t]
        while mask:
            low = mask & -mask
            alaps.append(alap[low.bit_length() - 1])
            mask ^= low
        keys[t] = tuple(sorted(alaps))
    return keys


def mcp_priority_order(
    graph: TaskGraph, tie: str = "random", seed: int = 0
) -> List[int]:
    """The MCP scheduling order: ascending ALAP with the chosen tie rule."""
    graph.freeze()
    alap = alap_times(graph)
    n = graph.num_tasks
    if tie == "random":
        rng = np.random.default_rng(seed)
        jitter = rng.permutation(n)
        return sorted(range(n), key=lambda t: (alap[t], int(jitter[t])))
    if tie == "lex":
        keys = _descendant_alap_lists(graph, alap)
        return sorted(range(n), key=lambda t: (alap[t], keys[t], t))
    raise SchedulerError(f"unknown MCP tie rule {tie!r}; expected 'random' or 'lex'")


def mcp(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    tie: str = "random",
    seed: int = 0,
) -> Schedule:
    """Schedule ``graph`` with MCP.  See module docstring."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    schedule = Schedule(graph, machine)
    for task in mcp_priority_order(graph, tie=tie, seed=seed):
        proc, est = best_proc_for(schedule, task)
        schedule.place(task, proc, est)
    return schedule
