"""Sarkar's edge-zeroing clustering (ref [9] of the paper; extension).

Sarkar's classic internalisation pre-pass, the other canonical clustering
algorithm next to DSC: visit edges in **decreasing communication cost**
order and merge the two endpoint clusters whenever doing so does not
increase the estimated parallel time on an unbounded machine; tasks inside
a cluster are serialised in a fixed priority order (here: descending bottom
level, the standard choice).

Composed with LLB (``sarkar-llb`` in the registry) this gives a second
multi-step baseline, letting the harness ablate DSC against a simpler
clustering of higher cost — Sarkar's is ``O(E (V + E))`` because every
tentative merge re-estimates the parallel time.

The parallel-time estimator schedules each cluster on its own virtual
processor (list scheduling inside clusters by the fixed priority order) and
respects cross-cluster communication; it is shared with the tests, which
verify monotonic non-degradation across accepted merges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.properties import bottom_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers.base import resolve_machine
from repro.schedulers.dsc import Clustering
from repro.schedulers.llb import llb

__all__ = ["sarkar", "sarkar_llb", "estimate_parallel_time"]


def estimate_parallel_time(
    graph: TaskGraph,
    cluster_of: Sequence[int],
    machine: MachineModel,
    priority: Sequence[float],
) -> Tuple[float, List[float]]:
    """Parallel time of a clustering on an unbounded machine.

    Each cluster runs on its own processor; within a cluster, ready tasks
    run in descending ``priority`` order; messages between clusters cost
    their remote delay, inside a cluster they are free.  Returns
    ``(makespan, start_times)``.
    """
    n = graph.num_tasks
    start = [0.0] * n
    finish = [0.0] * n
    cluster_ready: Dict[int, float] = {}
    remaining = [graph.in_degree(t) for t in graph.tasks()]
    # Event-free list simulation: repeatedly take the globally next task to
    # start; O(V^2) worst case, fine for the estimator's role.
    ready = {t for t in graph.entry_tasks}
    done = 0
    while ready:
        best = None
        best_key = None
        for t in ready:
            c = cluster_of[t]
            arrivals = 0.0
            for p in graph.preds(t):
                if cluster_of[p] == c:
                    a = finish[p]
                else:
                    a = finish[p] + machine.remote_delay(graph.comm(p, t))
                if a > arrivals:
                    arrivals = a
            est = max(arrivals, cluster_ready.get(c, 0.0))
            key = (est, -priority[t], t)
            if best_key is None or key < best_key:
                best_key = key
                best = (t, est)
        t, est = best
        ready.remove(t)
        c = cluster_of[t]
        start[t] = est
        finish[t] = est + graph.comp(t)
        cluster_ready[c] = finish[t]
        for s in graph.succs(t):
            remaining[s] -= 1
            if remaining[s] == 0:
                ready.add(s)
        done += 1
    assert done == n
    return (max(finish) if n else 0.0), start


def sarkar(graph: TaskGraph, machine: Optional[MachineModel] = None) -> Clustering:
    """Cluster ``graph`` with Sarkar's edge-zeroing algorithm."""
    graph.freeze()
    if machine is None:
        machine = MachineModel(1)
    n = graph.num_tasks
    bl = bottom_levels(graph)

    cluster_of = list(range(n))  # singleton clusters

    def find(c: int) -> int:
        while cluster_of[c] != c:
            cluster_of[c] = cluster_of[cluster_of[c]]
            c = cluster_of[c]
        return c

    labels = list(range(n))
    current = [find(t) for t in labels]
    best_time, _ = estimate_parallel_time(graph, current, machine, bl)

    edges = sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1]))
    for src, dst, comm in edges:
        a, b = find(src), find(dst)
        if a == b:
            continue
        # Tentatively merge and re-estimate.
        cluster_of[b] = a
        merged = [find(t) for t in range(n)]
        time, _ = estimate_parallel_time(graph, merged, machine, bl)
        if time <= best_time + 1e-12:
            best_time = time
        else:
            cluster_of[b] = b  # revert

    final = [find(t) for t in range(n)]
    # Compact cluster ids and order members by their estimated start times.
    _, start = estimate_parallel_time(graph, final, machine, bl)
    ids: Dict[int, int] = {}
    members: List[List[int]] = []
    compact = [0] * n
    for t in range(n):
        c = final[t]
        if c not in ids:
            ids[c] = len(members)
            members.append([])
        compact[t] = ids[c]
        members[ids[c]].append(t)
    for m in members:
        m.sort(key=lambda t: (start[t], -bl[t], t))
    return Clustering(
        clusters=tuple(tuple(m) for m in members),
        cluster_of=tuple(compact),
        tlevel=tuple(start),
        makespan=best_time,
    )


def sarkar_llb(
    graph: TaskGraph,
    num_procs: Optional[int] = None,
    machine: Optional[MachineModel] = None,
    priority: str = "largest",
) -> Schedule:
    """Multi-step scheduling: Sarkar clustering + LLB mapping."""
    graph.freeze()
    machine = resolve_machine(num_procs, machine)
    clustering = sarkar(graph, machine)
    return llb(graph, clustering, machine=machine, priority=priority)
