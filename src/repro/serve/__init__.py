"""Scheduling-as-a-service: a stdlib-only asyncio HTTP front-end.

``repro-sched serve`` (or :func:`repro.serve.serve`) turns a
:class:`~repro.batch.BatchScheduler` into a long-running service:

* ``POST /v1/graphs`` registers a task graph (content-addressed,
  idempotent) and returns its fingerprint;
* ``POST /v1/schedule`` schedules a registered fingerprint or an inline
  graph, with per-tenant weighted-fair queuing, bounded-backlog admission
  control (429 + ``Retry-After`` from the observed service-time EWMA), and
  in-flight coalescing of identical requests;
* ``GET /metrics`` exposes the ``serve_*`` + ``batch_*`` metric families
  as Prometheus text; ``GET /healthz`` reports drain state and depths;
* SIGTERM/SIGINT triggers a graceful drain: stop admitting, finish every
  queued job, exit.

See docs/serving.md for the full endpoint reference and tuning guide.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController, ShedError
from repro.serve.handlers import (
    BadRequestError,
    Response,
    UnknownGraphError,
    route,
)
from repro.serve.queues import QueueFull, WeightedFairQueue
from repro.serve.server import (
    BackgroundServer,
    SchedulingService,
    ServeConfig,
    serve,
    serve_async,
)

__all__ = [
    "serve",
    "serve_async",
    "ServeConfig",
    "SchedulingService",
    "BackgroundServer",
    "AdmissionController",
    "ShedError",
    "WeightedFairQueue",
    "QueueFull",
    "Response",
    "route",
    "BadRequestError",
    "UnknownGraphError",
]
