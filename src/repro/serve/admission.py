"""Admission control for the scheduling service.

A long-running scheduler front-end must fail *fast* when overloaded:
queuing unboundedly trades a quick, honest 429 for an eventual timeout
after the client has already given up.  The admission controller keeps a
hard bound on backlog (queued + actively dispatching jobs) and sheds work
above it, attaching a ``Retry-After`` hint derived from *observed* service
time rather than a static guess:

    retry_after = (backlog + 1) * ewma_service_seconds / dispatchers

i.e. "the time for the current backlog to drain through the dispatcher
pool at the recently measured per-job rate, plus one slot for you".  The
estimate is an exponentially weighted moving average so a burst of huge
graphs raises the hint and a run of cached hits lowers it, with clamps so
the header is always a sane positive integer number of seconds.
"""

from __future__ import annotations

__all__ = ["AdmissionController", "ShedError"]

#: Starting per-job service estimate before any observation (seconds).
DEFAULT_SERVICE_ESTIMATE = 0.05

#: Smoothing factor for the service-time EWMA (higher = more reactive).
EWMA_ALPHA = 0.3

#: Retry-After clamps (seconds) — the header is advisory, keep it humane.
MIN_RETRY_AFTER = 1
MAX_RETRY_AFTER = 120


class ShedError(Exception):
    """Raised when a request is refused admission.

    Carries the 429 payload: ``retry_after`` (whole seconds, >= 1) and a
    human-readable ``reason``.
    """

    def __init__(self, retry_after: int, reason: str) -> None:
        super().__init__(reason)
        self.retry_after = retry_after
        self.reason = reason


class AdmissionController:
    """Bounded-backlog admission with an EWMA service-time estimator.

    ``max_backlog`` is the largest number of jobs allowed in the system
    (waiting in the fair queue plus being dispatched); ``dispatchers`` is
    the number of concurrent dispatch loops draining it, used to scale the
    ``Retry-After`` drain estimate.
    """

    def __init__(
        self,
        max_backlog: int,
        dispatchers: int = 1,
        initial_estimate: float = DEFAULT_SERVICE_ESTIMATE,
        alpha: float = EWMA_ALPHA,
    ) -> None:
        if max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        if dispatchers < 1:
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if initial_estimate <= 0:
            raise ValueError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        self.max_backlog = max_backlog
        self.dispatchers = dispatchers
        self._alpha = alpha
        self._ewma = initial_estimate
        self._observations = 0

    # -- service-time estimator ---------------------------------------------

    @property
    def service_estimate(self) -> float:
        """Current EWMA of per-job service time in seconds."""
        return self._ewma

    @property
    def observations(self) -> int:
        return self._observations

    def observe_service(self, seconds: float) -> None:
        """Feed one completed job's service time into the EWMA."""
        if seconds < 0:
            return
        if self._observations == 0:
            # First real sample replaces the configured prior outright.
            self._ewma = seconds
        else:
            self._ewma += self._alpha * (seconds - self._ewma)
        self._observations += 1

    # -- admission -----------------------------------------------------------

    def retry_after(self, backlog: int) -> int:
        """Whole-second drain estimate for a client arriving behind
        ``backlog`` jobs."""
        est = (backlog + 1) * self._ewma / self.dispatchers
        whole = int(est) + (1 if est > int(est) else 0)  # ceil without math
        return max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, whole))

    def admit(self, backlog: int, draining: bool = False) -> None:
        """Admit a request seen at ``backlog``, or raise :class:`ShedError`.

        ``draining`` sheds unconditionally (the server is completing
        in-flight work before shutdown and accepts nothing new).
        """
        if draining:
            raise ShedError(
                self.retry_after(backlog), "server is draining for shutdown"
            )
        if backlog >= self.max_backlog:
            raise ShedError(
                self.retry_after(backlog),
                f"backlog full ({backlog}/{self.max_backlog} jobs)",
            )

    def __repr__(self) -> str:
        return (
            f"<AdmissionController max_backlog={self.max_backlog} "
            f"dispatchers={self.dispatchers} ewma={self._ewma:.4f}s "
            f"obs={self._observations}>"
        )
