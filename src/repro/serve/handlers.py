"""HTTP route table and status mapping for the scheduling service.

This module is the translation layer between HTTP and the
:class:`repro.serve.SchedulingService`: it owns the endpoint table, the
request/response JSON shapes, and the mapping from service-level failures
to status codes.  It knows nothing about sockets — the server
(:mod:`repro.serve.server`) parses the wire format and calls
:func:`route`.

Endpoints
---------

``GET /healthz``
    Liveness/readiness JSON: ``status`` (``ok`` or ``draining``), queue
    depth, in-flight count, uptime.
``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the shared registry —
    the ``serve_*`` family plus everything the wrapped
    :class:`~repro.batch.BatchScheduler` records.
``POST /v1/graphs``
    Register a task graph (the ``repro-taskgraph`` JSON document, or
    ``{"graph": <document>}``).  Idempotent per content; returns the
    ``fingerprint`` to schedule by.
``POST /v1/schedule``
    Schedule a graph: ``{"fingerprint": ..., "procs": N, ...}`` for a
    registered graph or ``{"graph": <document>, "procs": N, ...}`` inline.
    Optional: ``algo``, ``validate``, ``certify``, ``kernel``, ``tenant``,
    ``tag``, ``base_fingerprint``.  The last marks a delta request: the
    FLB array path warm-starts from the named base schedule when it can
    (bit-identical answer, ``warm`` accounting in the reply) and runs
    cold when it cannot.

Failure mapping
---------------

* malformed JSON / bad field → **400**;
* unknown fingerprint or path → **404**;
* wrong method on a known path → **405**;
* admission shed or draining → **429** with ``Retry-After`` derived from
  the observed service-time EWMA;
* scheduling failed: ``timeout`` → **504**, ``worker-died`` → **500**,
  ``scheduler-error`` / ``invalid-schedule`` → **422** (the graph or
  options are at fault, retrying will not help).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.serve.admission import ShedError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serve.server import SchedulingService

__all__ = [
    "Response",
    "BadRequestError",
    "UnknownGraphError",
    "route",
    "json_response",
]


class BadRequestError(Exception):
    """The request body or fields are malformed (HTTP 400)."""


class UnknownGraphError(Exception):
    """The requested fingerprint has not been registered (HTTP 404)."""


_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: BatchResult.error_kind -> HTTP status for a failed scheduling job.
_ERROR_STATUS: Dict[str, int] = {
    "timeout": 504,
    "worker-died": 500,
    "scheduler-error": 422,
    "invalid-schedule": 422,
}

#: Paths used as the ``endpoint`` label on ``serve_requests_total`` —
#: anything else is folded into ``other`` to keep label cardinality bounded.
ENDPOINTS = ("/healthz", "/metrics", "/v1/graphs", "/v1/schedule")


@dataclass(frozen=True)
class Response:
    """One HTTP response: status, body, and any extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def reason(self) -> str:
        return _REASONS.get(self.status, "OK")


def json_response(
    status: int,
    payload: Dict[str, Any],
    headers: Tuple[Tuple[str, str], ...] = (),
) -> Response:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=headers)


def _error(status: int, message: str, **extra: Any) -> Response:
    payload: Dict[str, Any] = {"error": message}
    payload.update(extra)
    return json_response(status, payload)


def _parse_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    return payload


def _schedule_response(payload: Dict[str, Any]) -> Response:
    """Map a completed schedule's summary to its HTTP status."""
    if payload.get("ok", False):
        return json_response(200, payload)
    kind = payload.get("error_kind") or ""
    return json_response(_ERROR_STATUS.get(kind, 500), payload)


async def route(
    service: "SchedulingService",
    method: str,
    path: str,
    body: bytes,
) -> Response:
    """Dispatch one parsed HTTP request against the service."""
    path = path.split("?", 1)[0]
    try:
        if path == "/healthz":
            if method != "GET":
                return _error(405, "healthz supports GET only")
            return json_response(200, service.health())
        if path == "/metrics":
            if method != "GET":
                return _error(405, "metrics supports GET only")
            return Response(
                status=200,
                body=service.metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/v1/graphs":
            if method != "POST":
                return _error(405, "graphs supports POST only")
            return json_response(200, service.register_graph(_parse_body(body)))
        if path == "/v1/schedule":
            if method != "POST":
                return _error(405, "schedule supports POST only")
            return _schedule_response(await service.submit(_parse_body(body)))
        return _error(404, f"no such endpoint: {path}")
    except ShedError as exc:
        return json_response(
            429,
            {"error": exc.reason, "retry_after": exc.retry_after},
            headers=(("Retry-After", str(exc.retry_after)),),
        )
    except UnknownGraphError as exc:
        return _error(404, str(exc))
    except BadRequestError as exc:
        return _error(400, str(exc))
    except Exception as exc:  # unexpected: keep the connection answerable
        return _error(500, f"internal error: {type(exc).__name__}: {exc}")


def endpoint_label(path: str) -> str:
    """The bounded-cardinality ``endpoint`` metric label for ``path``."""
    path = path.split("?", 1)[0]
    return path if path in ENDPOINTS else "other"
