"""Per-tenant weighted-fair queuing for the scheduling service.

A single FIFO in front of the scheduler lets one chatty tenant starve
everyone else: whoever submits fastest owns the queue.  The serving
front-end instead runs **start-time fair queuing** over per-tenant FIFOs —
the classic virtual-time construction from packet scheduling, which
"Decentralized List Scheduling" (arXiv:1107.3734) motivates as the
per-participant shape that later shards across schedulers:

* every tenant ``t`` has a weight ``w_t`` (default 1.0);
* each enqueued item is stamped with a *virtual finish time*
  ``vf = max(V, last_vf_t) + 1 / w_t`` where ``V`` is the queue's virtual
  clock (the ``vf`` of the most recently dequeued item) and ``last_vf_t``
  the tenant's previous stamp;
* :meth:`WeightedFairQueue.get` always dequeues the smallest ``vf``.

The effect: over any backlogged interval, tenant ``t`` receives a
``w_t / sum(w)`` share of dispatch slots, regardless of arrival rates,
while an idle tenant's first item is stamped at the current virtual clock
(no banked credit, no starvation).  Within one tenant, order stays FIFO
(``vf`` ties broken by sequence number).

The queue is asyncio-native and single-loop: ``put_nowait`` from request
handlers, ``await get()`` from dispatcher tasks, ``task_done``/``join``
for drain barriers — the same contract as :class:`asyncio.Queue`, plus
tenancy.  ``maxsize`` bounds the *total* backlog across tenants; admission
control (:mod:`repro.serve.admission`) decides what to do when it is hit.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from typing import (
    Deque,
    Dict,
    Generic,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

__all__ = ["WeightedFairQueue", "QueueFull"]

T = TypeVar("T")


class QueueFull(Exception):
    """The queue's total backlog bound would be exceeded."""


class WeightedFairQueue(Generic[T]):
    """Bounded multi-tenant queue dequeuing in weighted-fair order.

    ``weights`` maps tenant name to weight; unknown tenants get
    ``default_weight``.  Weights must be positive — a higher weight means
    a proportionally larger share of dequeues under contention.
    ``maxsize=0`` means unbounded.
    """

    def __init__(
        self,
        maxsize: int = 0,
        weights: Optional[Mapping[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        if default_weight <= 0:
            raise ValueError(
                f"default_weight must be positive, got {default_weight}"
            )
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be positive, got {weight}"
                )
        self._maxsize = maxsize
        self._weights: Dict[str, float] = dict(weights or {})
        self._default_weight = default_weight
        # Heap of (virtual_finish, sequence, tenant, item).
        self._heap: List[Tuple[float, int, str, T]] = []
        self._seq = 0
        self._vtime = 0.0  # virtual clock: vf of the last dequeued item
        self._tenant_vf: Dict[str, float] = {}
        self._getters: Deque["asyncio.Future[None]"] = deque()
        self._unfinished = 0
        self._finished: Optional[asyncio.Event] = None

    # -- introspection -------------------------------------------------------

    def qsize(self) -> int:
        return len(self._heap)

    def full(self) -> bool:
        return bool(self._maxsize) and len(self._heap) >= self._maxsize

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def weight_of(self, tenant: str) -> float:
        return self._weights.get(tenant, self._default_weight)

    def depths(self) -> Dict[str, int]:
        """Current backlog per tenant (for stats/health reporting)."""
        out: Dict[str, int] = {}
        for _vf, _seq, tenant, _item in self._heap:
            out[tenant] = out.get(tenant, 0) + 1
        return out

    # -- queue protocol ------------------------------------------------------

    def put_nowait(self, tenant: str, item: T) -> None:
        """Enqueue ``item`` for ``tenant``; raises :class:`QueueFull` at the
        backlog bound (never blocks — shedding is the caller's decision)."""
        if self.full():
            raise QueueFull(
                f"queue full ({len(self._heap)}/{self._maxsize} items)"
            )
        start = max(self._vtime, self._tenant_vf.get(tenant, 0.0))
        vf = start + 1.0 / self.weight_of(tenant)
        self._tenant_vf[tenant] = vf
        heapq.heappush(self._heap, (vf, self._seq, tenant, item))
        self._seq += 1
        self._unfinished += 1
        if self._finished is not None:
            self._finished.clear()
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(None)
                break

    async def get(self) -> Tuple[str, T]:
        """Dequeue the weighted-fair next ``(tenant, item)``; waits when
        empty."""
        while not self._heap:
            loop = asyncio.get_running_loop()
            getter: "asyncio.Future[None]" = loop.create_future()
            self._getters.append(getter)
            try:
                await getter
            except asyncio.CancelledError:
                getter.cancel()
                try:
                    self._getters.remove(getter)
                except ValueError:
                    pass
                # If we were woken and cancelled in the same tick, pass the
                # wake-up on so another getter does not starve.
                if self._heap:
                    self._wakeup_next()
                raise
        vf, _seq, tenant, item = heapq.heappop(self._heap)
        self._vtime = vf
        return tenant, item

    def _wakeup_next(self) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(None)
                break

    def task_done(self) -> None:
        """Mark one previously-gotten item as fully processed."""
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than items put")
        self._unfinished -= 1
        if self._unfinished == 0 and self._finished is not None:
            self._finished.set()

    async def join(self) -> None:
        """Wait until every enqueued item has been processed
        (``task_done``-ed) — the drain barrier."""
        if self._unfinished == 0:
            return
        if self._finished is None:
            self._finished = asyncio.Event()
        if self._unfinished == 0:  # re-check after the await point creation
            return
        await self._finished.wait()

    def __repr__(self) -> str:
        bound = self._maxsize or "inf"
        return (
            f"<WeightedFairQueue {len(self._heap)}/{bound} "
            f"tenants={len(self.depths())} vtime={self._vtime:.3f}>"
        )
