"""The asyncio scheduling service: HTTP front-end over a BatchScheduler.

Scheduling a graph is a few milliseconds of CPU; the expensive parts of a
*serving* deployment are everything around that call — graph decode,
shared-memory registration, cache lookups, fairness between tenants, and
staying up under overload.  This module packages those concerns into one
long-running process (stdlib only — ``asyncio`` + the library itself):

* **one event loop** accepts HTTP/1.1 connections and parses requests
  (:func:`_read_request` — no web framework);
* **admission control** (:class:`repro.serve.admission.AdmissionController`)
  bounds the backlog and sheds with ``429`` + ``Retry-After`` when full;
* **weighted-fair queuing** (:class:`repro.serve.queues.WeightedFairQueue`)
  orders admitted jobs so no tenant starves another;
* **coalescing**: concurrent requests for the same
  ``(fingerprint, procs, algo, validate, certify, kernel, machine)`` share
  a single computation — the same machine-fingerprinted key the result
  cache uses, so a coalesced answer is exactly the answer a cache hit
  would give and two requests that differ only in processor speeds never
  share one;
* **dispatchers** pull from the fair queue and run
  :meth:`repro.batch.BatchScheduler.run_one` via ``asyncio.to_thread`` —
  the scheduler (and its metrics registry) is not thread-safe, so the
  runner is serialised behind a lock; real parallelism lives in the
  scheduler's worker pool, and ``dispatchers`` stays 1 unless a custom
  thread-safe runner is injected;
* **graceful drain**: SIGTERM/SIGINT stop accepting work (new schedules
  shed with 429), complete every queued job, then exit.

Entry points: :func:`serve` (blocking; ``repro-sched serve`` calls it) and
:class:`BackgroundServer` (thread-hosted, for tests and benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.api import SchedulingOptions, resolve_job_kernel
from repro.batch import BatchJob, BatchResult, BatchScheduler
from repro.graph.io import from_json
from repro.machine.model import MachineModel
from repro.obs import ServeInstruments, render_prometheus
from repro.resultcache import CacheKey, make_key as make_cache_key
from repro.serve.admission import AdmissionController, ShedError
from repro.serve.handlers import (
    BadRequestError,
    Response,
    UnknownGraphError,
    endpoint_label,
    route,
)
from repro.serve.queues import QueueFull, WeightedFairQueue

__all__ = [
    "ServeConfig",
    "SchedulingService",
    "BackgroundServer",
    "serve",
    "serve_async",
]

#: A runner takes one job + options and returns the result, synchronously.
Runner = Callable[[BatchJob, SchedulingOptions], BatchResult]


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration for one service instance.

    ``max_backlog`` bounds queued + in-flight jobs (the admission limit);
    ``tenant_weights`` sets fair-queue weights (unknown tenants get
    ``default_weight``).  ``dispatchers`` > 1 only helps with a custom
    thread-safe runner — the default runner serialises on a lock.
    ``options`` seeds the wrapped scheduler's defaults (procs-independent
    fields: validate/certify/kernel/timeout/retries); per-request fields
    override it.  ``machine`` is the default target
    :class:`~repro.machine.MachineModel` for requests that do not carry a
    ``machine`` object of their own (a bare ``procs`` request resolves to
    the homogeneous clique as before).  ``port`` 0 binds an ephemeral port
    (the chosen one is printed as ``serving on host:port`` and exposed by
    :attr:`BackgroundServer.port`).
    """

    host: str = "127.0.0.1"
    port: int = 8423
    workers: Optional[int] = None
    dispatchers: int = 1
    max_backlog: int = 64
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    max_body_bytes: int = 32 * 1024 * 1024
    drain_grace: float = 10.0
    options: Optional[SchedulingOptions] = None
    machine: Optional[MachineModel] = None

    def __post_init__(self) -> None:
        if self.dispatchers < 1:
            raise ValueError(f"dispatchers must be >= 1, got {self.dispatchers}")
        if self.max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {self.max_backlog}")
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )


@dataclass
class _Work:
    """One admitted schedule request waiting in the fair queue."""

    key: CacheKey
    job: BatchJob
    options: SchedulingOptions
    future: "asyncio.Future[BatchResult]"
    tenant: str
    enqueued_at: float
    machine: MachineModel


class SchedulingService:
    """The service core: admission, fairness, coalescing, dispatch.

    Wraps a :class:`~repro.batch.BatchScheduler` (created and owned when
    not supplied) and shares its metrics registry, so one scrape exposes
    ``serve_*`` and ``batch_*`` together.  ``runner`` injects the blocking
    per-job computation (default: ``scheduler.run_one`` behind a lock) —
    tests substitute a counting/delaying stub to pin down coalescing and
    drain semantics deterministically.
    """

    def __init__(
        self,
        scheduler: Optional[BatchScheduler] = None,
        config: Optional[ServeConfig] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._owns_scheduler = scheduler is None
        if scheduler is None:
            scheduler = BatchScheduler(
                workers=self.config.workers,
                options=self.config.options,
            )
        self.scheduler = scheduler
        self.registry = scheduler.metrics()
        self.instruments = ServeInstruments(self.registry)
        self.admission = AdmissionController(
            max_backlog=self.config.max_backlog,
            dispatchers=self.config.dispatchers,
        )
        self.queue: WeightedFairQueue[_Work] = WeightedFairQueue(
            maxsize=self.config.max_backlog,
            weights=self.config.tenant_weights,
            default_weight=self.config.default_weight,
        )
        self._runner: Runner = runner if runner is not None else self._run_locked
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, "asyncio.Future[BatchResult]"] = {}
        self._graphs: Dict[str, str] = {}  # fingerprint -> graph_key
        self._active = 0
        self._draining = False
        self._started_at = time.monotonic()
        self._dispatcher_tasks: List["asyncio.Task[None]"] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher tasks (requires a running event loop)."""
        if self._dispatcher_tasks:
            return
        for i in range(self.config.dispatchers):
            task = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name=f"repro-serve-dispatch-{i}"
            )
            self._dispatcher_tasks.append(task)

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Stop admitting, finish every queued job, stop the dispatchers.

        Idempotent; new ``/v1/schedule`` requests shed with 429 the moment
        this is called, while queued and in-flight jobs run to completion.
        """
        self._draining = True
        self.instruments.draining(True)
        await self.queue.join()
        for task in self._dispatcher_tasks:
            task.cancel()
        if self._dispatcher_tasks:
            await asyncio.gather(*self._dispatcher_tasks, return_exceptions=True)
        self._dispatcher_tasks.clear()

    def close(self) -> None:
        """Release the scheduler (and its shared-memory registry) if owned."""
        if self._owns_scheduler and not self.scheduler.closed:
            self.scheduler.close()

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "queued": self.queue.qsize(),
            "inflight": self._active,
            "tenants": self.queue.depths(),
            "graphs": len(self._graphs),
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "service_estimate_seconds": round(
                self.admission.service_estimate, 6
            ),
        }

    def metrics_text(self) -> str:
        return render_prometheus(self.registry)

    def register_graph(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/graphs``: publish a graph, return its fingerprint.

        Accepts either the ``repro-taskgraph`` document itself or
        ``{"graph": <document>}``.  Idempotent per content fingerprint.
        """
        doc = payload.get("graph", payload)
        if not isinstance(doc, dict):
            raise BadRequestError("'graph' must be a JSON object")
        try:
            graph = from_json(json.dumps(doc))
        except Exception as exc:
            raise BadRequestError(f"invalid task graph: {exc}") from None
        fingerprint = graph.fingerprint()
        known = fingerprint in self._graphs
        if not known:
            key = self.scheduler.store.register(graph, fingerprint=fingerprint)
            self._graphs[fingerprint] = key
            self.instruments.graph_registered()
        return {
            "fingerprint": fingerprint,
            "graph_key": self._graphs[fingerprint],
            "tasks": graph.num_tasks,
            "registered": not known,
        }

    async def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/schedule``: admit, enqueue (or coalesce), await.

        Raises :class:`ShedError` when admission refuses,
        :class:`UnknownGraphError` for an unregistered fingerprint, and
        :class:`BadRequestError` for malformed fields.
        """
        work = self._prepare(payload)
        tenant = work.tenant
        self.instruments.tenant_request(tenant)
        existing = self._inflight.get(work.key)
        if existing is not None:
            # Identical request already computing: share its outcome.  The
            # shield keeps one waiter's cancellation (client disconnect)
            # from killing the shared computation.
            self.instruments.coalesced()
            result = await asyncio.shield(existing)
            return _result_payload(result, coalesced=True, machine=work.machine)
        backlog = self.queue.qsize() + self._active
        try:
            self.admission.admit(backlog, draining=self._draining)
            self.queue.put_nowait(tenant, work)
        except (ShedError, QueueFull) as exc:
            self.instruments.shed()
            if isinstance(exc, ShedError):
                raise
            raise ShedError(
                self.admission.retry_after(backlog), str(exc)
            ) from None
        self._inflight[work.key] = work.future
        self.instruments.admitted(backlog)
        self.instruments.queue_depth(self.queue.qsize())
        result = await asyncio.shield(work.future)
        return _result_payload(result, coalesced=False, machine=work.machine)

    # -- internals -----------------------------------------------------------

    def _prepare(self, payload: Dict[str, Any]) -> _Work:
        """Validate a schedule payload into a queued work item."""
        fingerprint = payload.get("fingerprint")
        graph_doc = payload.get("graph")
        if (fingerprint is None) == (graph_doc is None):
            raise BadRequestError(
                "provide exactly one of 'fingerprint' (a registered graph) "
                "or 'graph' (an inline repro-taskgraph document)"
            )
        if graph_doc is not None:
            registered = self.register_graph({"graph": graph_doc})
            fingerprint = registered["fingerprint"]
        if not isinstance(fingerprint, str):
            raise BadRequestError("'fingerprint' must be a string")
        graph_key = self._graphs.get(fingerprint)
        if graph_key is None:
            raise UnknownGraphError(
                f"no graph registered with fingerprint {fingerprint!r}; "
                f"POST it to /v1/graphs first"
            )
        procs = payload.get("procs")
        if procs is not None and (
            not isinstance(procs, int) or isinstance(procs, bool) or procs < 1
        ):
            raise BadRequestError("'procs' must be an integer >= 1")
        machine_doc = payload.get("machine")
        machine: Optional[MachineModel] = None
        if machine_doc is not None:
            if not isinstance(machine_doc, dict):
                raise BadRequestError("'machine' must be a JSON object")
            try:
                machine = MachineModel.from_dict(machine_doc)
            except (TypeError, ValueError) as exc:
                raise BadRequestError(f"invalid 'machine': {exc}") from None
        if machine is None:
            machine = self.config.machine
        if machine is None:
            if procs is None:
                raise BadRequestError("'procs' must be an integer >= 1")
            machine = MachineModel(procs)
        elif procs is not None and procs != machine.num_procs:
            raise BadRequestError(
                f"'procs' ({procs}) conflicts with machine.num_procs "
                f"({machine.num_procs})"
            )
        procs = machine.num_procs
        base = self.scheduler.options
        algo = payload.get("algo", base.algorithm)
        if not isinstance(algo, str):
            raise BadRequestError("'algo' must be a string")
        overrides: Dict[str, Any] = {"algorithm": algo}
        for key in ("validate", "certify"):
            if key in payload:
                if not isinstance(payload[key], bool):
                    raise BadRequestError(f"'{key}' must be a boolean")
                overrides[key] = payload[key]
        if "kernel" in payload:
            if not isinstance(payload["kernel"], str):
                raise BadRequestError("'kernel' must be a string")
            overrides["kernel"] = payload["kernel"]
        base_fingerprint = payload.get("base_fingerprint")
        if base_fingerprint is not None:
            # Delta request: warm-start against the named base schedule.
            # Purely an execution hint — the reply is bit-identical to a
            # cold run, so the coalescing/cache key is unaffected and an
            # unknown or unusable base silently runs cold.
            if not isinstance(base_fingerprint, str):
                raise BadRequestError("'base_fingerprint' must be a string")
            overrides["warm_start"] = True
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise BadRequestError("'tenant' must be a non-empty string")
        tag = payload.get("tag", "")
        if not isinstance(tag, str):
            raise BadRequestError("'tag' must be a string")
        try:
            options = base.replace(**overrides)
            resolved_kernel = resolve_job_kernel(algo, options.kernel)
        except Exception as exc:
            raise BadRequestError(str(exc)) from None
        key = make_cache_key(
            fingerprint,
            procs,
            algo,
            options.validate,
            options.certify,
            resolved_kernel,
            machine=machine,
        )
        job = BatchJob(
            graph=None, procs=procs, algo=algo, tag=tag, graph_key=graph_key,
            base_fingerprint=base_fingerprint, machine=machine,
        )
        future: "asyncio.Future[BatchResult]" = (
            asyncio.get_running_loop().create_future()
        )
        # Retrieve late exceptions so an abandoned computation does not log
        # an "exception was never retrieved" warning at GC time.
        future.add_done_callback(_consume_exception)
        return _Work(
            key=key,
            job=job,
            options=options,
            future=future,
            tenant=tenant,
            enqueued_at=time.monotonic(),
            machine=machine,
        )

    def _run_locked(self, job: BatchJob, options: SchedulingOptions) -> BatchResult:
        # BatchScheduler (and MetricsRegistry) are not thread-safe; with
        # dispatchers > 1, to_thread calls would otherwise interleave.
        with self._lock:
            return self.scheduler.run_one(job, options=options)

    async def _dispatch_loop(self) -> None:
        while True:
            tenant, work = await self.queue.get()
            del tenant  # fairness already applied by the queue order
            self._active += 1
            self.instruments.inflight(self._active)
            self.instruments.queue_depth(self.queue.qsize())
            self.instruments.observe_queue_wait(
                time.monotonic() - work.enqueued_at
            )
            started = time.monotonic()
            try:
                result = await asyncio.to_thread(
                    self._runner, work.job, work.options
                )
            except asyncio.CancelledError:
                if not work.future.done():
                    work.future.cancel()
                raise
            except Exception as exc:
                if not work.future.done():
                    work.future.set_exception(exc)
            else:
                if not work.future.done():
                    work.future.set_result(result)
            finally:
                elapsed = time.monotonic() - started
                self.admission.observe_service(elapsed)
                self.instruments.observe_service(elapsed)
                self._inflight.pop(work.key, None)
                self._active -= 1
                self.instruments.inflight(self._active)
                self.queue.task_done()


def _consume_exception(future: "asyncio.Future[BatchResult]") -> None:
    if not future.cancelled():
        future.exception()


def _result_payload(
    result: BatchResult,
    coalesced: bool,
    machine: Optional[MachineModel] = None,
) -> Dict[str, Any]:
    """The JSON summary for one completed schedule."""
    payload: Dict[str, Any] = {
        "ok": result.ok,
        "tag": result.tag,
        "algo": result.algo,
        "procs": result.procs,
        "num_tasks": result.num_tasks,
        "makespan": result.makespan,
        "speedup": result.speedup,
        "procs_used": result.procs_used,
        "seconds": result.seconds,
        "kernel": result.kernel,
        "cached": result.cached,
        "coalesced": coalesced,
        "attempts": result.attempts,
        "certified": result.certified,
    }
    if machine is not None:
        payload["machine"] = machine.to_dict()
    if result.phases is not None:
        payload["phases"] = dict(result.phases)
    if result.warm is not None:
        payload["warm"] = dict(result.warm)
    if result.error is not None:
        payload["error"] = result.error
        payload["error_kind"] = result.error_kind
    return payload


# ---------------------------------------------------------------------------
# The HTTP layer: hand-rolled HTTP/1.1 over asyncio streams.
# ---------------------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[Tuple[str, str, Dict[str, str], bytes, bool]]:
    """Parse one request; returns ``None`` on EOF before a request line.

    Returns ``(method, path, headers, body, keep_alive)``.  Raises
    :class:`BadRequestError` on malformed framing and :class:`ShedError`
    never — overload is an application decision, not a parsing one.
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise BadRequestError("malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0") or "0"
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequestError(
            f"bad Content-Length: {length_text!r}"
        ) from None
    if length < 0 or length > max_body:
        raise _PayloadTooLarge(length)
    body = await reader.readexactly(length) if length else b""
    connection = headers.get("connection", "").lower()
    keep_alive = version.upper() != "HTTP/1.0" and connection != "close"
    return method.upper(), target, headers, body, keep_alive


class _PayloadTooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds the limit")
        self.length = length


def _render_response(response: Response, keep_alive: bool) -> bytes:
    head = [
        f"HTTP/1.1 {response.status} {response.reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in response.headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


class _HttpFrontend:
    """Connection handling + per-request instrumentation for a service."""

    def __init__(self, service: SchedulingService) -> None:
        self.service = service
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._serve_connection(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                parsed = await _read_request(
                    reader, self.service.config.max_body_bytes
                )
            except _PayloadTooLarge as exc:
                writer.write(
                    _render_response(
                        _plain_error(413, str(exc)), keep_alive=False
                    )
                )
                await writer.drain()
                return
            except BadRequestError as exc:
                writer.write(
                    _render_response(
                        _plain_error(400, str(exc)), keep_alive=False
                    )
                )
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if parsed is None:
                return
            method, path, _headers, body, keep_alive = parsed
            started = time.monotonic()
            response = await route(self.service, method, path, body)
            self.service.instruments.request(
                endpoint_label(path),
                response.status,
                time.monotonic() - started,
            )
            writer.write(_render_response(response, keep_alive))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not keep_alive:
                return

    async def wait_idle(self, grace: float) -> None:
        """Give open connections up to ``grace`` seconds to finish."""
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=grace)


def _plain_error(status: int, message: str) -> Response:
    body = (json.dumps({"error": message}) + "\n").encode("utf-8")
    return Response(status=status, body=body)


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


async def serve_async(
    config: Optional[ServeConfig] = None,
    scheduler: Optional[BatchScheduler] = None,
    shutdown: Optional[asyncio.Event] = None,
    ready: Optional[Callable[[SchedulingService, str, int], None]] = None,
) -> None:
    """Run the service until ``shutdown`` is set (or SIGTERM/SIGINT).

    ``ready`` is called once with ``(service, host, port)`` after the
    socket is bound — :class:`BackgroundServer` uses it to learn an
    ephemeral port.
    """
    cfg = config or ServeConfig()
    service = SchedulingService(scheduler=scheduler, config=cfg)
    frontend = _HttpFrontend(service)
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: List[signal.Signals] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or unsupported platform
    server = await asyncio.start_server(frontend.handle, cfg.host, cfg.port)
    try:
        sockname = server.sockets[0].getsockname()
        host, port = str(sockname[0]), int(sockname[1])
        service.start()
        print(f"serving on {host}:{port}", flush=True)
        if ready is not None:
            ready(service, host, port)
        await stop.wait()
        print("draining: completing in-flight jobs...", flush=True)
        server.close()
        await server.wait_closed()
        await service.drain()
        await frontend.wait_idle(cfg.drain_grace)
        print("drained; bye", flush=True)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        server.close()
        service.close()


def serve(
    config: Optional[ServeConfig] = None,
    scheduler: Optional[BatchScheduler] = None,
) -> None:
    """Blocking entry point: run until SIGTERM/SIGINT, then drain."""
    asyncio.run(serve_async(config=config, scheduler=scheduler))


class BackgroundServer:
    """A service running on a dedicated thread — for tests and benchmarks.

    ::

        with BackgroundServer(ServeConfig(port=0)) as srv:
            url = f"http://{srv.host}:{srv.port}"
            ...                         # urllib / raw sockets against url
        # __exit__ triggers the drain and joins the thread

    The signal handlers are skipped automatically (not the main thread);
    :meth:`stop` is the SIGTERM equivalent.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        scheduler: Optional[BatchScheduler] = None,
    ) -> None:
        self.config = config or ServeConfig(port=0)
        self._scheduler = scheduler
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self.service: Optional[SchedulingService] = None
        self.host: str = self.config.host
        self.port: int = 0

    def _on_ready(
        self, service: SchedulingService, host: str, port: int
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._ready.set()

    def _main(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            await serve_async(
                config=self.config,
                scheduler=self._scheduler,
                shutdown=self._shutdown,
                ready=self._on_ready,
            )

        try:
            asyncio.run(body())
        except Exception as exc:  # pragma: no cover - surfaced in start()/stop()
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("BackgroundServer already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.port == 0:
            raise RuntimeError("server did not come up within 30s")
        return self

    def stop(self) -> None:
        """Trigger the drain (SIGTERM equivalent) and join the thread."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
