"""Discrete-event simulation: schedule re-execution and perturbation studies."""

from repro.sim.contention import execute_contended
from repro.sim.desim import Simulator
from repro.sim.executor import ExecutionResult, execute, execute_perturbed

__all__ = [
    "Simulator",
    "ExecutionResult",
    "execute",
    "execute_perturbed",
    "execute_contended",
]
