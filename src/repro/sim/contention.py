"""Link-contention execution model (extension X5).

The paper assumes interprocessor communication "without contention": any
number of messages may be in flight simultaneously.  Real machines serialise
messages on each node's network interface.  This module re-executes a
schedule under a **single-port sender model**: each processor has one
outgoing port; outbound messages queue FIFO (in task finish order).  A
message of weight ``c`` occupies the port for ``remote_delay(c) /
bandwidth`` (injection) and arrives ``remote_delay(c)`` after its injection
starts (wire latency unchanged from the paper's model).  Contention can
therefore only *add* delay: at any bandwidth the contended times dominate
the contention-free replay, and as ``bandwidth`` grows they converge to it.

Comparing :func:`execute_contended` against the contention-free replay
(:func:`repro.sim.executor.execute`) measures how much of a schedule's
promised makespan survives when the paper's contention-free assumption is
violated — and how that degradation grows as schedules get more
communication-heavy (CCR) or more spread out (P).

The assignment and per-processor task order stay fixed (self-timed
execution), exactly as in the perturbation study.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.exceptions import ScheduleError
from repro.schedule.schedule import Schedule
from repro.sim.desim import Simulator
from repro.sim.executor import ExecutionResult

__all__ = ["execute_contended"]


def execute_contended(schedule: Schedule, bandwidth: float = 1.0) -> ExecutionResult:
    """Self-timed replay with single-port FIFO sender contention.

    ``bandwidth`` scales the sender port's injection rate: a message of
    weight ``c`` blocks the port for ``machine.remote_delay(c) / bandwidth``
    and is delivered ``machine.remote_delay(c)`` after injection starts.
    Results dominate the contention-free replay at every bandwidth and
    converge to it as ``bandwidth`` grows.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    graph = schedule.graph
    machine = schedule.machine
    if not schedule.complete:
        raise ScheduleError("cannot execute an incomplete schedule")

    n = graph.num_tasks
    sim = Simulator()
    start = [0.0] * n
    finish = [0.0] * n
    remaining_msgs = [graph.in_degree(t) for t in graph.tasks()]
    proc_queue = [list(schedule.proc_tasks(p)) for p in machine.procs]
    proc_pos = [0] * machine.num_procs
    proc_free = [True] * machine.num_procs
    busy = [0.0] * machine.num_procs
    executed = 0

    # Single-port sender NICs: FIFO of (dst_task, wire_delay).
    port_queue: List[Deque[Tuple[int, float]]] = [deque() for _ in machine.procs]
    port_free = [True] * machine.num_procs

    def pump_port(p: int) -> None:
        if not port_free[p] or not port_queue[p]:
            return
        dst_task, wire_delay = port_queue[p].popleft()
        port_free[p] = False
        # The port is blocked for the injection time; the message lands one
        # full wire delay after injection starts.
        sim.after(wire_delay, lambda: deliver(dst_task))

        def injection_done() -> None:
            port_free[p] = True
            pump_port(p)

        sim.after(wire_delay / bandwidth, injection_done)

    def deliver(task: int) -> None:
        remaining_msgs[task] -= 1
        try_start(schedule.proc_of(task))

    def try_start(p: int) -> None:
        nonlocal executed
        if not proc_free[p] or proc_pos[p] >= len(proc_queue[p]):
            return
        task = proc_queue[p][proc_pos[p]]
        if remaining_msgs[task] > 0:
            return
        proc_free[p] = False
        proc_pos[p] += 1
        start[task] = sim.now
        duration = machine.duration(graph.comp(task), p)
        busy[p] += duration
        executed += 1

        def finish_task() -> None:
            finish[task] = sim.now
            proc_free[p] = True
            for succ in graph.succs(task):
                if schedule.proc_of(succ) == p:
                    deliver(succ)
                else:
                    wire_delay = machine.remote_delay(graph.comm(task, succ))
                    port_queue[p].append((succ, wire_delay))
            pump_port(p)
            try_start(p)

        sim.after(duration, finish_task)

    for p in machine.procs:
        sim.at(0.0, lambda p=p: try_start(p))
    events = sim.run()

    if executed != n:
        stuck = [t for t in graph.tasks() if remaining_msgs[t] > 0]
        raise ScheduleError(
            f"contended execution deadlocked; {len(stuck)} tasks starved "
            f"(first few: {stuck[:5]})"
        )
    return ExecutionResult(
        start=tuple(start),
        finish=tuple(finish),
        makespan=max(finish),
        busy_time=tuple(busy),
        events=events,
    )
