"""A small discrete-event simulation engine.

Generic machinery used by :mod:`repro.sim.executor` to *re-execute*
schedules as actual message-driven runs: events are ``(time, priority,
seq)``-ordered callbacks; the engine pops them in order and advances the
clock.  Determinism is guaranteed by the monotone sequence number that
breaks time/priority ties in insertion order.

The engine is intentionally minimal — just enough to model processors
picking up tasks and messages arriving after link delays — but it is a real
event queue, not a fixed-step loop, so executions cost ``O(events log
events)`` regardless of the magnitude of the time values.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulator with a monotone clock.

    >>> sim = Simulator()
    >>> log = []
    >>> sim.at(2.0, lambda: log.append(("b", sim.now)))
    >>> sim.at(1.0, lambda: log.append(("a", sim.now)))
    >>> sim.run()
    >>> log
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self._events_processed = 0

    def at(self, time: float, action: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``action`` to run at absolute ``time``.

        ``priority`` orders simultaneous events (lower runs first); events
        with equal time and priority run in insertion order.  Scheduling in
        the past (before ``now``) is an error.
        """
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule event at {time} < now {self.now}")
        heapq.heappush(self._queue, (time, priority, next(self._seq), action))

    def after(self, delay: float, action: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.at(self.now + delay, action, priority)

    def run(self, until: Optional[float] = None) -> int:
        """Process events (optionally only those at time <= ``until``).

        Returns the number of events processed.  Callbacks may schedule
        further events.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            time, _, _, action = heapq.heappop(self._queue)
            self.now = time
            action()
            processed += 1
        self._events_processed += processed
        return processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed
