"""Discrete-event re-execution of schedules.

A compile-time schedule fixes, per processor, the task *sequence*; the
actual run is **self-timed**: each processor starts its next task as soon as
(a) its previous task has finished and (b) every incoming message has
arrived (messages leave when the producing task finishes and take the
machine's communication delay).

:func:`execute` replays a schedule this way on the event engine and returns
the achieved times.  For the non-insertion list schedulers in this
repository the replay must reproduce the scheduler's claimed start/finish
times *exactly* — the test suite asserts this, which cross-checks every
scheduler's internal bookkeeping against an independent executor.

:func:`execute_perturbed` replays the same assignment and sequences with
randomly rescaled computation/communication weights — modelling compile-time
estimates being wrong at run time — which powers the robustness extension
experiment (DESIGN.md X4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ScheduleError
from repro.schedule.schedule import Schedule
from repro.sim.desim import Simulator

__all__ = ["ExecutionResult", "execute", "execute_perturbed"]

_EPS = 1e-6


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of a discrete-event replay."""

    start: Tuple[float, ...]
    finish: Tuple[float, ...]
    makespan: float
    busy_time: Tuple[float, ...]  # per processor
    events: int

    def matches(self, schedule: Schedule, tol: float = _EPS) -> bool:
        """True when the replay reproduced the schedule's times exactly."""
        for t in range(len(self.start)):
            if abs(self.start[t] - schedule.start_of(t)) > tol:
                return False
            if abs(self.finish[t] - schedule.finish_of(t)) > tol:
                return False
        return True

    def mismatches(self, schedule: Schedule, tol: float = _EPS) -> List[str]:
        """Human-readable description of every time disagreement."""
        out = []
        for t in range(len(self.start)):
            if abs(self.start[t] - schedule.start_of(t)) > tol:
                out.append(
                    f"task {t}: executed start {self.start[t]} != "
                    f"scheduled {schedule.start_of(t)}"
                )
        return out


def _replay(
    schedule: Schedule,
    comp: Sequence[float],
    comm_scale_per_edge: Optional[Dict[Tuple[int, int], float]] = None,
) -> ExecutionResult:
    graph = schedule.graph
    machine = schedule.machine
    if not schedule.complete:
        raise ScheduleError("cannot execute an incomplete schedule")
    n = graph.num_tasks
    sim = Simulator()
    start = [0.0] * n
    finish = [0.0] * n
    done = [False] * n
    proc_queue = [list(schedule.proc_tasks(p)) for p in machine.procs]
    proc_pos = [0] * machine.num_procs
    proc_free = [True] * machine.num_procs
    msgs_needed = [0] * n
    busy = [0.0] * machine.num_procs

    def edge_delay(src: int, dst: int) -> float:
        base = graph.comm(src, dst)
        if comm_scale_per_edge is not None:
            base = base * comm_scale_per_edge[(src, dst)]
        return machine.comm_delay(schedule.proc_of(src), schedule.proc_of(dst), base)

    for t in graph.tasks():
        msgs_needed[t] = graph.in_degree(t)
    remaining_msgs = list(msgs_needed)

    executed = 0

    def try_start(p: int) -> None:
        nonlocal executed
        if not proc_free[p] or proc_pos[p] >= len(proc_queue[p]):
            return
        task = proc_queue[p][proc_pos[p]]
        if remaining_msgs[task] > 0:
            return
        proc_free[p] = False
        proc_pos[p] += 1
        start[task] = sim.now
        duration = comp[task]
        busy[p] += duration
        executed += 1

        def finish_task(task: int = task, p: int = p) -> None:
            finish[task] = sim.now
            done[task] = True
            proc_free[p] = True
            for succ in graph.succs(task):
                delay = edge_delay(task, succ)

                def deliver(succ: int = succ) -> None:
                    remaining_msgs[succ] -= 1
                    try_start(schedule.proc_of(succ))

                # Message arrivals run before task starts at equal times
                # (priority 0 == default); starting is triggered inside the
                # delivery callback, so ordering is already correct.
                sim.after(delay, deliver)
            try_start(p)

        sim.after(duration, finish_task)

    for p in machine.procs:
        sim.at(0.0, lambda p=p: try_start(p))
    events = sim.run()

    if executed != n:
        stuck = [t for t in graph.tasks() if not done[t]]
        raise ScheduleError(
            f"execution deadlocked: {len(stuck)} tasks never started "
            f"(first few: {stuck[:5]}); per-processor sequences are "
            f"inconsistent with the dependencies"
        )
    return ExecutionResult(
        start=tuple(start),
        finish=tuple(finish),
        makespan=max(finish),
        busy_time=tuple(busy),
        events=events,
    )


def execute(schedule: Schedule) -> ExecutionResult:
    """Self-timed discrete-event replay of ``schedule`` (exact weights)."""
    graph, machine = schedule.graph, schedule.machine
    comp = [
        machine.duration(graph.comp(t), schedule.proc_of(t)) for t in graph.tasks()
    ]
    return _replay(schedule, comp)


def execute_perturbed(
    schedule: Schedule,
    rng: np.random.Generator,
    comp_cv: float = 0.2,
    comm_cv: float = 0.2,
) -> ExecutionResult:
    """Replay with weights rescaled by i.i.d. lognormal factors.

    ``comp_cv`` / ``comm_cv`` are the coefficients of variation of the
    multiplicative noise on computation and communication weights (0 = no
    noise).  The assignment and per-processor sequences stay fixed — exactly
    what happens when a compile-time schedule meets inaccurate estimates.
    """
    if comp_cv < 0 or comm_cv < 0:
        raise ValueError("coefficients of variation must be non-negative")
    graph = schedule.graph

    def lognormal_factors(cv: float, size: int) -> np.ndarray:
        if cv == 0 or size == 0:
            return np.ones(size)
        sigma2 = np.log(1.0 + cv * cv)
        mu = -sigma2 / 2.0  # mean exactly 1
        return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=size)

    machine = schedule.machine
    comp_f = lognormal_factors(comp_cv, graph.num_tasks)
    comp = [
        machine.duration(graph.comp(t), schedule.proc_of(t)) * float(comp_f[t])
        for t in graph.tasks()
    ]
    edge_list = list(graph.edges())
    comm_f = lognormal_factors(comm_cv, len(edge_list))
    comm_scale = {
        (src, dst): float(f) for (src, dst, _), f in zip(edge_list, comm_f)
    }
    return _replay(schedule, comp, comm_scale)
