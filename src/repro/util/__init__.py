"""Shared utilities: addressable heaps, seeded RNG helpers, text rendering."""

from repro.util.heap import HeapEmptyError, IndexedHeap
from repro.util.rng import (
    WEIGHT_DISTRIBUTIONS,
    make_rng,
    sample_weights,
    scale_to_ccr,
    spawn_rngs,
)
from repro.util.tables import (
    format_bar_chart,
    format_float,
    format_series_chart,
    format_table,
)

__all__ = [
    "IndexedHeap",
    "HeapEmptyError",
    "make_rng",
    "spawn_rngs",
    "sample_weights",
    "scale_to_ccr",
    "WEIGHT_DISTRIBUTIONS",
    "format_table",
    "format_series_chart",
    "format_bar_chart",
    "format_float",
]
