"""Addressable binary min-heaps.

FLB's five priority structures (two per-processor EP-task lists, the global
non-EP task list, the active-processor list and the global processor list)
all need a priority queue that supports, in ``O(log n)``:

* ``push(item, key)``
* ``pop()`` / ``peek()`` of the minimum-key item
* ``remove(item)`` of an arbitrary item (the paper's ``RemoveItem``)
* ``update(item, key)`` (the paper's ``BalanceList``)

The standard-library :mod:`heapq` only supports the first two, so this module
provides :class:`IndexedHeap`, a classic binary heap augmented with a
position map.  Keys are compared as plain Python tuples/scalars, so callers
encode their tie-breaking rules directly in the key (e.g. FLB uses
``(value, -bottom_level, task_id)``).

The implementation deliberately avoids the "lazy deletion" idiom (pushing
tombstones and skipping them on pop): with lazy deletion the amortised bounds
still hold, but peeks become mutating operations and the structure's size is
no longer meaningful, both of which complicate FLB's bookkeeping and its
complexity accounting.
"""

from __future__ import annotations

from typing import Any, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["IndexedHeap", "HeapEmptyError"]

T = TypeVar("T", bound=Hashable)


class HeapEmptyError(LookupError):
    """Raised when popping or peeking an empty :class:`IndexedHeap`."""


class IndexedHeap(Generic[T]):
    """A binary min-heap with a position map for addressable updates.

    Items must be hashable and unique within the heap.  Keys may be any
    totally ordered value (numbers, tuples, ...).

    >>> h = IndexedHeap()
    >>> h.push("a", 3); h.push("b", 1); h.push("c", 2)
    >>> h.peek()
    ('b', 1)
    >>> h.update("a", 0)
    >>> h.pop()
    ('a', 0)
    >>> h.remove("c")
    2
    >>> len(h)
    1
    """

    __slots__ = ("_items", "_keys", "_pos", "ops")

    def __init__(self) -> None:
        self._items: List[T] = []
        self._keys: List[Any] = []
        self._pos: dict[T, int] = {}
        #: Count of O(log n) mutating operations (push/pop/remove/update)
        #: performed over this heap's lifetime — the unit FLB's complexity
        #: bound charges per iteration.  Read by the observability plane
        #: (repro.obs.KernelMetricsObserver via FlbLists.heap_ops); a bare
        #: integer increment, cheap enough to leave unconditionally on.
        self.ops: int = 0

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[T]:
        """Iterate over items in arbitrary (heap) order."""
        return iter(list(self._items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{i!r}:{k!r}" for i, k in zip(self._items, self._keys))
        return f"IndexedHeap({{{pairs}}})"

    # -- queries -----------------------------------------------------------

    def key_of(self, item: T) -> Any:
        """Return the key currently associated with ``item``.

        Raises ``KeyError`` if the item is not in the heap.
        """
        return self._keys[self._pos[item]]

    def peek(self) -> Tuple[T, Any]:
        """Return ``(item, key)`` with the minimum key without removing it."""
        if not self._items:
            raise HeapEmptyError("peek on empty heap")
        return self._items[0], self._keys[0]

    def peek_item(self) -> Optional[T]:
        """Return the minimum-key item, or ``None`` if the heap is empty.

        Mirrors the paper's ``Head`` operation, which yields ``NULL`` on an
        empty list.
        """
        return self._items[0] if self._items else None

    def sorted_items(self) -> List[Tuple[T, Any]]:
        """Return all ``(item, key)`` pairs in ascending key order.

        ``O(n log n)``; used by trace rendering and tests, never by the
        scheduling hot path.
        """
        return sorted(zip(self._items, self._keys), key=lambda p: p[1])

    # -- mutations ----------------------------------------------------------

    def push(self, item: T, key: Any) -> None:
        """Insert ``item`` with ``key``.  ``O(log n)``.

        Raises ``ValueError`` if the item is already present (use
        :meth:`update` to change a key).
        """
        if item in self._pos:
            raise ValueError(f"item already in heap: {item!r}")
        self.ops += 1
        self._items.append(item)
        self._keys.append(key)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def pop(self) -> Tuple[T, Any]:
        """Remove and return the ``(item, key)`` pair with minimum key."""
        if not self._items:
            raise HeapEmptyError("pop on empty heap")
        self.ops += 1
        item, key = self._items[0], self._keys[0]
        self._delete_at(0)
        return item, key

    def remove(self, item: T) -> Any:
        """Remove an arbitrary ``item``; return its key.  ``O(log n)``."""
        pos = self._pos[item]
        self.ops += 1
        key = self._keys[pos]
        self._delete_at(pos)
        return key

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was present."""
        if item in self._pos:
            self.remove(item)
            return True
        return False

    def update(self, item: T, key: Any) -> None:
        """Change the key of ``item`` (up or down).  ``O(log n)``."""
        pos = self._pos[item]
        self.ops += 1
        old = self._keys[pos]
        self._keys[pos] = key
        if key < old:
            self._sift_up(pos)
        elif old < key:
            self._sift_down(pos)

    def push_or_update(self, item: T, key: Any) -> None:
        """Insert ``item`` or change its key if already present."""
        if item in self._pos:
            self.update(item, key)
        else:
            self.push(item, key)

    def clear(self) -> None:
        self._items.clear()
        self._keys.clear()
        self._pos.clear()

    # -- internals -----------------------------------------------------------

    def _delete_at(self, pos: int) -> None:
        last = len(self._items) - 1
        item = self._items[pos]
        if pos != last:
            self._move(last, pos)
        self._items.pop()
        self._keys.pop()
        del self._pos[item]
        if pos <= last - 1 and self._items:
            # The swapped-in element may need to move either direction.
            self._sift_up(pos)
            self._sift_down(pos)

    def _move(self, src: int, dst: int) -> None:
        self._items[dst] = self._items[src]
        self._keys[dst] = self._keys[src]
        self._pos[self._items[dst]] = dst

    def _sift_up(self, pos: int) -> None:
        items, keys, posmap = self._items, self._keys, self._pos
        item, key = items[pos], keys[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if keys[parent] <= key:
                break
            self._move(parent, pos)
            pos = parent
        items[pos] = item
        keys[pos] = key
        posmap[item] = pos

    def _sift_down(self, pos: int) -> None:
        items, keys, posmap = self._items, self._keys, self._pos
        n = len(items)
        item, key = items[pos], keys[pos]
        while True:
            child = 2 * pos + 1
            if child >= n:
                break
            right = child + 1
            if right < n and keys[right] < keys[child]:
                child = right
            if key <= keys[child]:
                break
            self._move(child, pos)
            pos = child
        items[pos] = item
        keys[pos] = key
        posmap[item] = pos

    # -- debugging / testing --------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the heap property and position-map consistency (tests only)."""
        n = len(self._items)
        assert len(self._keys) == n
        assert len(self._pos) == n
        for i in range(1, n):
            parent = (i - 1) >> 1
            assert not (self._keys[i] < self._keys[parent]), (
                f"heap property violated at {i}: "
                f"{self._keys[i]!r} < {self._keys[parent]!r}"
            )
        for item, pos in self._pos.items():
            assert self._items[pos] == item, f"stale position for {item!r}"
