"""Seeded random-number utilities and task/edge weight samplers.

The paper generates, per workload instance, "random execution times and
communication delays (i.i.d., uniform distribution with unit coefficient of
variation)" and controls granularity through the communication-to-computation
ratio (CCR).

Two samplers are provided:

``uniform``
    Uniform on ``[eps, 2*mean]``.  A non-negative uniform distribution cannot
    actually reach CV = 1 (its maximum is ``1/sqrt(3) ~= 0.577`` at ``[0, 2m]``),
    so this is the closest uniform match to the paper's description and is the
    default.

``exponential``
    Exponential with the requested mean, which has CV exactly 1 — provided for
    users who read the paper's "unit coefficient of variation" literally.

All sampling goes through :class:`numpy.random.Generator` seeded explicitly,
so every experiment in the repository is reproducible from its seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "sample_weights",
    "WEIGHT_DISTRIBUTIONS",
    "scale_to_ccr",
]

#: Minimum weight produced by any sampler.  Task computation costs must be
#: strictly positive (a zero-cost task breaks the strict topological ordering
#: of MCP's ALAP priorities); communication costs may be zero, but keeping a
#: small floor avoids degenerate CCR scaling.
MIN_WEIGHT = 1e-9


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an explicit seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> List[np.random.Generator]:
    """Create ``n`` independent generators derived from ``seed``.

    Uses ``SeedSequence.spawn`` so streams are statistically independent and
    stable across runs.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def _sample_uniform(rng: np.random.Generator, mean: float, n: int) -> np.ndarray:
    return rng.uniform(MIN_WEIGHT, 2.0 * mean, size=n)


def _sample_exponential(rng: np.random.Generator, mean: float, n: int) -> np.ndarray:
    return np.maximum(rng.exponential(mean, size=n), MIN_WEIGHT)


def _sample_constant(rng: np.random.Generator, mean: float, n: int) -> np.ndarray:
    return np.full(n, float(mean))


WEIGHT_DISTRIBUTIONS: Dict[str, Callable[[np.random.Generator, float, int], np.ndarray]] = {
    "uniform": _sample_uniform,
    "exponential": _sample_exponential,
    "constant": _sample_constant,
}


def sample_weights(
    rng: np.random.Generator,
    mean: float,
    n: int,
    distribution: str = "uniform",
) -> np.ndarray:
    """Sample ``n`` positive weights with the given mean.

    Parameters
    ----------
    rng:
        Seeded generator.
    mean:
        Target mean weight; must be positive.
    n:
        Number of samples.
    distribution:
        One of :data:`WEIGHT_DISTRIBUTIONS` (``uniform`` / ``exponential`` /
        ``constant``).
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    try:
        sampler = WEIGHT_DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(WEIGHT_DISTRIBUTIONS)}"
        ) from None
    return sampler(rng, float(mean), int(n))


def scale_to_ccr(
    comp: Sequence[float],
    comm: Sequence[float],
    ccr: float,
) -> np.ndarray:
    """Rescale communication weights so the instance's CCR is exactly ``ccr``.

    CCR is defined in the paper as the ratio of the *average* communication
    cost to the *average* computation cost.  Given sampled computation weights
    ``comp`` and raw communication weights ``comm`` (any positive scale), this
    returns scaled communication weights with
    ``mean(scaled) == ccr * mean(comp)``.

    Returns an empty array when there are no edges.
    """
    if ccr < 0:
        raise ValueError(f"ccr must be non-negative, got {ccr}")
    comp_arr = np.asarray(comp, dtype=float)
    comm_arr = np.asarray(comm, dtype=float)
    if comp_arr.size == 0:
        raise ValueError("cannot scale CCR with no tasks")
    if comm_arr.size == 0:
        return comm_arr
    mean_comm = comm_arr.mean()
    if mean_comm <= 0:
        raise ValueError("raw communication weights must have positive mean")
    target = ccr * comp_arr.mean()
    return comm_arr * (target / mean_comm)
