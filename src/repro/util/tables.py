"""Plain-text tables and charts for the experiment harness.

The benchmark harness regenerates the paper's tables and figures as text:
aligned tables for tabular data (Table 1, per-figure data series) and simple
ASCII line/bar charts for the figures.  Keeping rendering dependency-free
means the harness runs in any environment the library runs in.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series_chart", "format_bar_chart", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly: integers without a fraction, else fixed."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align: Optional[Sequence[str]] = None,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells are converted with ``str`` (floats
        via :func:`format_float`).
    title:
        Optional title line printed above the table.
    align:
        Per-column alignment, ``"l"`` or ``"r"``; defaults to left for the
        first column and right for the rest (the usual shape for results
        tables).
    """
    str_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format_float(cell))
            else:
                cells.append(str(cell))
        str_rows.append(cells)

    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}: {row}")

    if align is None:
        align = ["l", *["r"] * (ncols - 1)]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.ljust(width) if a == "l" else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_series_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multiple ``y = f(x)`` series as an ASCII chart.

    Each series gets a distinct marker character; a legend maps markers to
    series names.  Intended for the figure reproductions (e.g. NSL vs P).
    """
    markers = "ox+*#@%&"
    if not series:
        return title
    all_y = [y for ys in series.values() for y in ys if y is not None]
    if not all_y:
        return title
    y_min, y_max = min(all_y), max(all_y)
    if math.isclose(y_min, y_max):
        y_min -= 0.5
        y_max += 0.5
    x_min, x_max = min(x_values), max(x_values)
    if math.isclose(x_min, x_max):
        x_min -= 0.5
        x_max += 0.5

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_min) / (x_max - x_min) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, max(0, (height - 1) - round(frac * (height - 1))))

    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(x_values, ys):
            if y is None:
                continue
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    label_w = max(len(format_float(y_max)), len(format_float(y_min)))
    for i, row in enumerate(grid):
        if i == 0:
            label = format_float(y_max).rjust(label_w)
        elif i == height - 1:
            label = format_float(y_min).rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = (
        format_float(x_min)
        + " " * max(1, width - len(format_float(x_min)) - len(format_float(x_max)))
        + format_float(x_max)
    )
    lines.append(" " * (label_w + 2) + x_axis + ("  " + x_label if x_label else ""))
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append("legend: " + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
) -> str:
    """Render a horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return title
    vmax = max(values)
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = 0 if vmax <= 0 else round(value / vmax * width)
        lines.append(f"{label.ljust(label_w)} | {'#' * n} {format_float(value)}")
    return "\n".join(lines)
