"""Static verification plane: graph linting and schedule certification.

Two independent planes sit in front of and behind the schedulers:

* :mod:`repro.verify.graphlint` analyses a task graph *before* scheduling —
  a rule-registry linter (codes ``G001``..) that catches cycles (with a
  witness path), malformed weights, and structural anomalies that would
  either crash a scheduler or silently produce meaningless schedules.
* :mod:`repro.verify.certify` checks a produced :class:`~repro.schedule.Schedule`
  *after* scheduling — an independent checker, deliberately sharing no code
  with the scheduling kernels, that verifies the paper's formal invariants
  (codes ``S001``..), the FLB/ETF Theorem-3 greedy certificate
  (``F001``/``F002``), and the HEFT related-machines replay certificate
  (``F003``).

:func:`~repro.verify.graphlint.lint_machine` extends the pre-scheduling
plane to the machine model itself (codes ``M001``..): degenerate
configurations — single processor, extreme speed skew, communication-free
machines — that schedule fine but rarely mean what the experiment intended.

See ``docs/verification.md`` for the full rule catalogue.
"""

from __future__ import annotations

from repro.verify.certify import (
    Certificate,
    Violation,
    certify,
    greedy_flavor,
)
from repro.verify.graphlint import (
    LintIssue,
    LintReport,
    find_cycle,
    lint,
    lint_data,
    lint_machine,
    rule_catalogue,
)

__all__ = [
    "Certificate",
    "Violation",
    "certify",
    "greedy_flavor",
    "LintIssue",
    "LintReport",
    "find_cycle",
    "lint",
    "lint_data",
    "lint_machine",
    "rule_catalogue",
]
