"""Independent schedule certification.

:func:`certify` re-checks a produced :class:`~repro.schedule.Schedule`
against the paper's formal invariants *without sharing any code with the
scheduling kernels*: it consumes only the schedule's public query API, the
task graph, and the machine model's cost primitives, and recomputes every
quantity (durations, message arrivals, ready times) from first principles.
A bug in ``repro.core`` therefore cannot hide itself here.

Two layers of checks, each with stable rule codes:

**Structural invariants** (``S001``..``S006``) — hold for *any* valid
schedule, regardless of algorithm:

* ``S001`` every task is scheduled exactly once;
* ``S002`` no task starts before time zero;
* ``S003`` ``FT(t) = ST(t) + duration(comp(t), PROC(t))``;
* ``S004`` tasks on the same processor do not overlap;
* ``S005`` every task starts at or after each predecessor's message arrival
  ``FT(pred) + delay`` (zero delay when co-located) — the paper's
  ``ST(t) >= EMT(t, PROC(t))``;
* ``S006`` the reported makespan equals ``max_p PRT(p)`` recomputed from
  the placements.

**Greedy certificate** (``F001``/``F002``) — the ETF-greedy invariant that
Theorem 3 proves FLB preserves.  The checker replays the schedule in start
order, maintaining the ready set and per-processor ready times, and at
every step recomputes the paper's two candidate pairs:

(a) the EP-type ready task (``LMT(t) >= PRT(EP(t))``) with the minimum
    ``EST(t, EP(t)) = max(EMT(t, EP(t)), PRT(EP(t)))``, and
(b) the non-EP-type ready task with the minimum ``LMT``, started at
    ``max(LMT(t), min_p PRT(p))`` on the earliest-idle processor.

* ``F001`` fires when the scheduled task started *later* than the best
  candidate's EST — the schedule is not ETF-greedy;
* ``F002`` (FLB flavour only) fires when an EP-type task was chosen even
  though a non-EP candidate achieved the same start time — the paper
  breaks such ties toward the non-EP task, whose communication is already
  overlapped with computation.

**Related-machines replay certificate** (``F003``, flavour ``"heft"``) —
for HEFT schedules on (possibly heterogeneous) related machines the
checker recomputes the upward ranks from the machine model's mean
durations, replays the tasks in decreasing-rank order, and at each step
scans every processor for the insertion-based earliest finish time given
the placements recorded so far (speed-scaled durations ``comp/speed(p)``,
message arrivals ``scale * comm + latency``).  ``F003`` fires when a
recorded finish time exceeds the best achievable finish at that step —
the schedule is not the greedy insertion-based EFT schedule the
algorithm promises (cf. the list-scheduling analyses on related machines,
arXiv:2004.14639).

Structural checks cost ``O(E + V log V)`` (the sort dominates); the greedy
replay adds ``O(E + V·W)`` where ``W`` is the peak ready-set width, and the
HEFT replay ``O(V·P·K + E)`` with ``K`` the peak per-processor queue.  The
certificate is machine-readable (:meth:`Certificate.to_dict`) and surfaces
through ``Schedule.validate()``, the batch plane (``certify=``), and
``repro-sched certify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.schedule.schedule import Schedule

__all__ = ["Certificate", "Violation", "certify", "greedy_flavor"]

_EPS = 1e-9

#: Algorithms whose output carries an ETF-greedy certificate obligation.
#: FLB additionally promises the non-EP tie rule (F002); plain ETF only the
#: minimum-EST invariant (F001); HEFT owes the related-machines replay
#: certificate (F003).  Everything else (MCP, FCP, DLS, ...) is checked
#: structurally only.
_GREEDY_FLAVORS: Dict[str, str] = {"flb": "flb", "etf": "etf", "heft": "heft"}


def greedy_flavor(algo: str) -> Optional[str]:
    """The greedy-certificate flavour owed by ``algo``'s schedules, if any."""
    return _GREEDY_FLAVORS.get(algo)


@dataclass(frozen=True)
class Violation:
    """One broken invariant: a stable rule code plus a description."""

    code: str
    message: str
    task: Optional[int] = None
    proc: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.task is not None:
            out["task"] = self.task
        if self.proc is not None:
            out["proc"] = self.proc
        return out


@dataclass(frozen=True)
class Certificate:
    """The machine-readable result of :func:`certify`.

    ``ok`` is True iff no violations were found.  ``greedy_checked`` records
    whether the greedy replay ran (it is skipped when structural errors make
    the replay meaningless, or when no flavour was requested).
    """

    ok: bool
    violations: Tuple[Violation, ...]
    num_tasks: int
    num_procs: int
    makespan: float
    flavor: Optional[str]
    greedy_checked: bool

    def codes(self) -> Tuple[str, ...]:
        return tuple(v.code for v in self.violations)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "num_tasks": self.num_tasks,
            "num_procs": self.num_procs,
            "makespan": self.makespan,
            "flavor": self.flavor,
            "greedy_checked": self.greedy_checked,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        """Human-readable certificate, one line per violation."""
        head = (
            f"certified schedule: V={self.num_tasks} P={self.num_procs} "
            f"makespan={self.makespan:g}"
        )
        lines = [head]
        if self.flavor is not None:
            state = "checked" if self.greedy_checked else "skipped"
            lines.append(f"  greedy certificate ({self.flavor}): {state}")
        if not self.violations:
            lines.append("  valid: all invariants hold")
        for v in self.violations:
            lines.append(f"  {v.code} {v.message}")
        return "\n".join(lines)


def certify(
    schedule: Schedule,
    flavor: Optional[str] = None,
    eps: float = _EPS,
) -> Certificate:
    """Independently verify ``schedule``; optionally add a greedy certificate.

    ``flavor`` selects the greedy obligation: ``None`` checks structural
    invariants only, ``"etf"`` adds the minimum-EST replay (F001),
    ``"flb"`` additionally enforces the non-EP tie rule (F002), and
    ``"heft"`` runs the related-machines insertion-EFT replay (F003).
    """
    if flavor not in (None, "flb", "etf", "heft"):
        raise ValueError(f"unknown greedy flavor {flavor!r}")
    violations = _structural_violations(schedule, eps)
    greedy_checked = False
    if flavor is not None and not violations and schedule.complete:
        if flavor == "heft":
            violations.extend(_heft_replay_violations(schedule, eps))
        else:
            violations.extend(_greedy_violations(schedule, flavor, eps))
        greedy_checked = True
    return Certificate(
        ok=not violations,
        violations=tuple(violations),
        num_tasks=schedule.graph.num_tasks,
        num_procs=schedule.num_procs,
        makespan=schedule.makespan,
        flavor=flavor,
        greedy_checked=greedy_checked,
    )


# -- structural invariants ---------------------------------------------------


def _structural_violations(schedule: Schedule, eps: float) -> List[Violation]:
    graph = schedule.graph
    machine = schedule.machine
    out: List[Violation] = []

    # S001: exactly once.  Count appearances across the per-processor task
    # lists rather than trusting the placement flags — a corrupted schedule
    # can disagree between the two.
    appearances: Dict[int, int] = {}
    for p in machine.procs:
        for t in schedule.proc_tasks(p):
            appearances[t] = appearances.get(t, 0) + 1
    for t in graph.tasks():
        count = appearances.get(t, 0)
        if not schedule.is_scheduled(t) or count == 0:
            out.append(
                Violation("S001", f"task {t} is not scheduled", task=t)
            )
        elif count > 1:
            out.append(
                Violation(
                    "S001",
                    f"task {t} is scheduled {count} times",
                    task=t,
                )
            )

    placed = [t for t in graph.tasks() if schedule.is_scheduled(t)]

    # S002/S003: start and finish sanity, recomputing the duration from the
    # machine model.
    for t in placed:
        start = schedule.start_of(t)
        finish = schedule.finish_of(t)
        proc = schedule.proc_of(t)
        if start < -eps:
            out.append(
                Violation(
                    "S002",
                    f"task {t} starts before time 0 ({start})",
                    task=t,
                    proc=proc,
                )
            )
        expected = start + machine.duration(graph.comp(t), proc)
        if abs(finish - expected) > eps:
            out.append(
                Violation(
                    "S003",
                    f"task {t}: FT {finish} != ST + duration = {expected}",
                    task=t,
                    proc=proc,
                )
            )

    # S004: processor exclusivity.
    for p in machine.procs:
        ordered = sorted(schedule.proc_tasks(p), key=schedule.start_of)
        for a, b in zip(ordered, ordered[1:]):
            if schedule.start_of(b) < schedule.finish_of(a) - eps:
                out.append(
                    Violation(
                        "S004",
                        f"tasks {a} and {b} overlap on processor {p}: "
                        f"[{schedule.start_of(a)}, {schedule.finish_of(a)}) vs "
                        f"[{schedule.start_of(b)}, {schedule.finish_of(b)})",
                        task=b,
                        proc=p,
                    )
                )

    # S005: precedence + communication — ST(t) >= FT(pred) + delay with the
    # delay zeroed on co-location (the paper's EMT lower bound).
    for src, dst, comm in graph.edges():
        if not (schedule.is_scheduled(src) and schedule.is_scheduled(dst)):
            continue
        delay = machine.comm_delay(
            schedule.proc_of(src), schedule.proc_of(dst), comm
        )
        earliest = schedule.finish_of(src) + delay
        if schedule.start_of(dst) < earliest - eps:
            out.append(
                Violation(
                    "S005",
                    f"edge ({src}->{dst}): task {dst} starts at "
                    f"{schedule.start_of(dst)} before message arrival {earliest}",
                    task=dst,
                    proc=schedule.proc_of(dst),
                )
            )

    # S006: reported makespan and per-processor ready times match the
    # placements.
    true_prt = [0.0] * machine.num_procs
    for t in placed:
        p = schedule.proc_of(t)
        finish = schedule.finish_of(t)
        if finish > true_prt[p]:
            true_prt[p] = finish
    for p in machine.procs:
        if abs(schedule.prt(p) - true_prt[p]) > eps:
            out.append(
                Violation(
                    "S006",
                    f"PRT({p}) reported as {schedule.prt(p)} but placements "
                    f"finish at {true_prt[p]}",
                    proc=p,
                )
            )
    true_makespan = max(true_prt)
    if abs(schedule.makespan - true_makespan) > eps:
        out.append(
            Violation(
                "S006",
                f"makespan reported as {schedule.makespan} but placements "
                f"finish at {true_makespan}",
            )
        )
    return out


# -- greedy certificate ------------------------------------------------------


def _greedy_violations(
    schedule: Schedule, flavor: str, eps: float
) -> List[Violation]:
    """Replay the schedule in start order and check the Theorem-3 invariant.

    The replay is sound under start-time ties: tasks are visited in
    ``(ST, FT, id)`` order, which always visits predecessors first (a
    predecessor finishes no later than its successor starts, and positive
    computation costs make its start strictly earlier).  Reordering tasks
    *within* a start-time tie can only raise other tasks' ready times, never
    lower them, so the minimum-EST comparison cannot produce false
    positives.
    """
    graph = schedule.graph
    machine = schedule.machine
    num_procs = machine.num_procs

    order = sorted(
        graph.tasks(),
        key=lambda t: (schedule.start_of(t), schedule.finish_of(t), t),
    )
    prt = [0.0] * num_procs
    remaining_preds = [graph.in_degree(t) for t in graph.tasks()]
    # Cached once when a task becomes ready (O(E) total over the replay):
    # its LMT, enabling processor (-1 for entry tasks), and EMT on the
    # enabling processor.
    lmt = [0.0] * graph.num_tasks
    ep = [-1] * graph.num_tasks
    emt_ep = [0.0] * graph.num_tasks
    ready: List[int] = []

    def admit(t: int) -> None:
        """Compute LMT / EP / EMT-on-EP for a newly ready task."""
        best_key: Tuple[float, float, int] = (-1.0, -1.0, -1)
        best_proc = -1
        for pred in graph.preds(t):
            ft = schedule.finish_of(pred)
            arrival = ft + machine.remote_delay(graph.comm(pred, t))
            key = (arrival, ft, pred)
            if key > best_key:
                best_key = key
                best_proc = schedule.proc_of(pred)
        lmt[t] = best_key[0] if best_proc >= 0 else 0.0
        ep[t] = best_proc
        emt = 0.0
        if best_proc >= 0:
            for pred in graph.preds(t):
                arrival = schedule.finish_of(pred) + machine.comm_delay(
                    schedule.proc_of(pred), best_proc, graph.comm(pred, t)
                )
                if arrival > emt:
                    emt = arrival
        emt_ep[t] = emt
        ready.append(t)

    for t in graph.entry_tasks:
        admit(t)

    out: List[Violation] = []
    for step, t in enumerate(order):
        if not ready:
            # Unreachable when the structural checks passed (S005 guarantees
            # predecessors finish before their successors start); guard
            # anyway so a replay bug surfaces as a violation, not silence.
            out.append(
                Violation(
                    "F001",
                    f"replay step {step}: task {t} has unscheduled "
                    f"predecessors (replay desync)",
                    task=t,
                )
            )
            break

        # Recompute the two Theorem-3 candidates over the current ready set.
        min_prt = min(prt)
        best_ep_est = float("inf")
        best_non_ep_est = float("inf")
        chosen_est = float("inf")
        chosen_is_ep = False
        for u in ready:
            e = ep[u]
            if e >= 0 and lmt[u] >= prt[e]:
                # EP-type: runs on its enabling processor.
                est = emt_ep[u] if emt_ep[u] > prt[e] else prt[e]
                if est < best_ep_est:
                    best_ep_est = est
                is_ep = True
            else:
                # Non-EP (entry tasks always are): earliest-idle processor.
                est = lmt[u] if lmt[u] > min_prt else min_prt
                if est < best_non_ep_est:
                    best_non_ep_est = est
                is_ep = False
            if u == t:
                chosen_est = est
                chosen_is_ep = is_ep
        best = min(best_ep_est, best_non_ep_est)

        start = schedule.start_of(t)
        if chosen_est == float("inf"):
            out.append(
                Violation(
                    "F001",
                    f"replay step {step}: task {t} scheduled before it was "
                    f"ready (replay desync)",
                    task=t,
                )
            )
            break
        if start > best + eps:
            out.append(
                Violation(
                    "F001",
                    f"replay step {step}: task {t} starts at {start} but a "
                    f"ready candidate could start at {best} "
                    f"(ETF-greedy invariant violated)",
                    task=t,
                    proc=schedule.proc_of(t),
                )
            )
        elif start > chosen_est + eps:
            out.append(
                Violation(
                    "F001",
                    f"replay step {step}: task {t} starts at {start} but its "
                    f"own earliest start was {chosen_est}",
                    task=t,
                    proc=schedule.proc_of(t),
                )
            )
        elif (
            flavor == "flb"
            and chosen_is_ep
            and best_non_ep_est <= start + eps
        ):
            out.append(
                Violation(
                    "F002",
                    f"replay step {step}: EP-type task {t} chosen at {start} "
                    f"but a non-EP candidate achieves {best_non_ep_est} "
                    f"(ties must favour the non-EP task)",
                    task=t,
                    proc=schedule.proc_of(t),
                )
            )

        # Commit the placement exactly as the schedule recorded it, then
        # release newly ready successors.
        ready.remove(t)
        finish = schedule.finish_of(t)
        p = schedule.proc_of(t)
        if finish > prt[p]:
            prt[p] = finish
        for succ in graph.succs(t):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                admit(succ)

        if out:
            # One greedy violation invalidates every later replay state;
            # stop at the first to keep the report actionable.
            break
    return out


# -- related-machines replay certificate (F003) ------------------------------


def _heft_replay_violations(schedule: Schedule, eps: float) -> List[Violation]:
    """Replay HEFT's insertion-based EFT loop and check each recorded finish.

    The replay is fully independent of :mod:`repro.schedulers.heft`: upward
    ranks are recomputed here from the machine model's mean durations, tasks
    are visited in decreasing-rank order (ties toward the lower task id —
    the algorithm's own order), and for every task the insertion-based
    earliest finish time is rescanned over all processors against the
    placements *recorded for the tasks replayed so far*.  Message arrivals
    use the recorded predecessor processors, so the lower bound is exactly
    the one the algorithm faced at that step.  ``F003`` fires when the
    recorded finish exceeds the best achievable finish: on related machines
    this catches placements that ignore processor speeds (a slow processor's
    scaled duration loses the EFT scan) as well as gaps the insertion policy
    would have used.
    """
    graph = schedule.graph
    machine = schedule.machine

    # Upward ranks from mean durations, over reverse topological order.
    rank = [0.0] * graph.num_tasks
    for t in reversed(graph.topological_order):
        best = 0.0
        for succ in graph.succs(t):
            via = machine.remote_delay(graph.comm(t, succ)) + rank[succ]
            if via > best:
                best = via
        rank[t] = machine.mean_duration(graph.comp(t)) + best

    order = sorted(graph.tasks(), key=lambda t: (-rank[t], t))

    # Per-processor busy intervals of the tasks replayed so far, kept sorted
    # by start time — mirrors Schedule.earliest_gap's position-ordered scan.
    busy: List[List[Tuple[float, float]]] = [[] for _ in machine.procs]
    replayed = [False] * graph.num_tasks

    out: List[Violation] = []
    for step, t in enumerate(order):
        for pred in graph.preds(t):
            if not replayed[pred]:
                out.append(
                    Violation(
                        "F003",
                        f"replay step {step}: task {t} precedes its "
                        f"predecessor {pred} in rank order (replay desync)",
                        task=t,
                    )
                )
                break
        if out:
            break

        comp = graph.comp(t)
        best_finish = float("inf")
        for p in machine.procs:
            duration = machine.duration(comp, p)
            lower = 0.0
            for pred in graph.preds(t):
                arrival = schedule.finish_of(pred) + machine.comm_delay(
                    schedule.proc_of(pred), p, graph.comm(pred, t)
                )
                if arrival > lower:
                    lower = arrival
            # Insertion scan: first gap on p fitting `duration` at or after
            # `lower` (same tolerance discipline as Schedule.earliest_gap).
            candidate = lower if lower > 0.0 else 0.0
            for s, f in busy[p]:
                if s - candidate >= duration - eps:
                    break
                if f > candidate:
                    candidate = f
            finish = candidate + duration
            if finish < best_finish:
                best_finish = finish

        recorded_finish = schedule.finish_of(t)
        if recorded_finish > best_finish + eps:
            out.append(
                Violation(
                    "F003",
                    f"replay step {step}: task {t} finishes at "
                    f"{recorded_finish} but the insertion-based EFT scan "
                    f"achieves {best_finish} (related-machines replay "
                    f"certificate violated)",
                    task=t,
                    proc=schedule.proc_of(t),
                )
            )
            break

        # Commit the recorded placement for the remaining steps.
        p = schedule.proc_of(t)
        interval = (schedule.start_of(t), recorded_finish)
        row = busy[p]
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid][0] < interval[0]:
                lo = mid + 1
            else:
                hi = mid
        row.insert(lo, interval)
        replayed[t] = True
    return out
