"""Task-graph linting: static analysis of a DAG *before* it is scheduled.

The schedulers assume a frozen, well-formed :class:`~repro.graph.TaskGraph`;
:class:`TaskGraph` itself rejects the worst malformations at construction
time (non-positive computation costs, negative communication costs,
self-loops, duplicate edges).  The linter covers everything the constructor
cannot or deliberately does not reject:

* graphs that arrive as *raw data* (JSON files, generator output) and have
  not passed through ``TaskGraph`` validation yet — :func:`lint_data`;
* values the constructor's comparisons let through (``NaN`` communication
  costs, infinite weights);
* structural anomalies that are legal DAGs but almost always input bugs:
  isolated tasks, multi-component graphs, zero-cost super-sources/sinks,
  extreme communication-to-computation outliers.

A small companion checker, :func:`lint_machine`, does the same for the
*machine* side of a scheduling problem: degenerate
:class:`~repro.machine.MachineModel` configurations (codes ``M001``..) that
are legal models but usually mean the experiment is not measuring what its
author thinks — a single processor, extreme speed skew, a communication-free
machine, or a redundant all-equal ``speeds`` vector.

Every check is a registered :class:`LintRule` with a stable code
(``G001``..), a severity (``error`` / ``warning`` / ``info``) and a title;
:func:`rule_catalogue` lists them all (rendered in ``docs/verification.md``).
:func:`lint` returns a :class:`LintReport` with human and machine-readable
(:meth:`LintReport.to_dict`) views; ``repro-sched lint`` exposes it on the
command line with ``--json`` and ``--strict`` (promote warnings to failures).

:func:`find_cycle` — the witness-path finder behind rule ``G001`` — is also
used by :meth:`TaskGraph.freeze` so that a :class:`~repro.exceptions.CycleError`
names an actual cycle instead of the set of stuck tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "LintIssue",
    "LintReport",
    "LintRule",
    "find_cycle",
    "lint",
    "lint_data",
    "lint_machine",
    "rule_catalogue",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Graph-level CCR at or above which rule G009 fires.
EXTREME_CCR = 100.0
#: Single-edge communication cost, as a multiple of the *median*
#: communication cost, at or above which rule G009 flags the edge as an
#: outlier.  (The median, unlike the mean, is not dragged up by the outlier
#: itself.)
EDGE_OUTLIER_FACTOR = 1000.0

#: Fastest-over-slowest speed ratio at or above which rule M002 fires: the
#: slow processors are effectively decorative and the "parallel" machine is
#: really the fast ones plus stragglers.
EXTREME_SPEED_SKEW = 100.0


@dataclass(frozen=True)
class _GraphData:
    """Normalised raw view of a graph: what every rule consumes.

    Unlike :class:`TaskGraph` this can represent malformed inputs —
    duplicate edges, self-loops, non-positive weights — which is the point:
    rules lint the data, not the class invariants.
    """

    comps: Tuple[float, ...]
    names: Tuple[str, ...]
    edges: Tuple[Tuple[int, int, float], ...]

    @property
    def num_tasks(self) -> int:
        return len(self.comps)

    def name(self, task: int) -> str:
        if 0 <= task < len(self.names):
            return self.names[task]
        return f"t{task}"


@dataclass(frozen=True)
class LintIssue:
    """One finding: a stable rule code, a severity, and a description."""

    code: str
    severity: str
    message: str
    tasks: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "tasks": list(self.tasks),
        }


@dataclass(frozen=True)
class LintReport:
    """All findings for one graph, plus the graph's vital statistics."""

    issues: Tuple[LintIssue, ...]
    num_tasks: int
    num_edges: int

    @property
    def errors(self) -> Tuple[LintIssue, ...]:
        return tuple(i for i in self.issues if i.severity == ERROR)

    @property
    def warnings(self) -> Tuple[LintIssue, ...]:
        return tuple(i for i in self.issues if i.severity == WARNING)

    def ok(self, strict: bool = False) -> bool:
        """True when the graph is schedulable: no errors (and, under
        ``strict``, no warnings either — the CLI's ``--strict``)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def codes(self) -> Tuple[str, ...]:
        return tuple(i.code for i in self.issues)

    def to_dict(self, strict: bool = False) -> Dict[str, object]:
        return {
            "ok": self.ok(strict),
            "strict": strict,
            "num_tasks": self.num_tasks,
            "num_edges": self.num_edges,
            "issues": [i.to_dict() for i in self.issues],
        }

    def render(self) -> str:
        """Human-readable report, one line per issue."""
        lines = [f"linted graph: V={self.num_tasks} E={self.num_edges}"]
        if not self.issues:
            lines.append("  clean: no issues found")
        for issue in self.issues:
            lines.append(f"  {issue.code} [{issue.severity}] {issue.message}")
        return "\n".join(lines)


RuleFn = Callable[[_GraphData], List[LintIssue]]


@dataclass(frozen=True)
class LintRule:
    """A registered lint check: stable code, default severity, short title."""

    code: str
    severity: str
    title: str
    fn: RuleFn = field(repr=False, compare=False)


_RULES: List[LintRule] = []


def _rule(code: str, severity: str, title: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under ``code`` in the global registry."""

    def register(fn: RuleFn) -> RuleFn:
        _RULES.append(LintRule(code=code, severity=severity, title=title, fn=fn))
        return fn

    return register


def rule_catalogue() -> List[LintRule]:
    """All registered rules in code order (for docs and ``--json`` output)."""
    return sorted(_RULES, key=lambda r: r.code)


# -- witness-path cycle detection -------------------------------------------


def find_cycle(
    num_tasks: int, edges: Iterable[Tuple[int, int]]
) -> Optional[List[int]]:
    """Return one directed cycle as a task list ``[t0, t1, ..., t0]``.

    ``None`` when the graph is acyclic.  Iterative colour-marking DFS,
    ``O(V + E)``; edges with out-of-range endpoints are ignored (they are
    reported by other rules).  A self-loop yields the two-element witness
    ``[t, t]``.
    """
    succs: List[List[int]] = [[] for _ in range(num_tasks)]
    for src, dst in edges:
        if 0 <= src < num_tasks and 0 <= dst < num_tasks:
            succs[src].append(dst)
    # 0 = unvisited, 1 = on the current DFS path, 2 = done.
    color = [0] * num_tasks
    parent: Dict[int, int] = {}
    for root in range(num_tasks):
        if color[root]:
            continue
        color[root] = 1
        stack: List[Tuple[int, int]] = [(root, 0)]  # (node, next successor index)
        while stack:
            node, idx = stack[-1]
            if idx < len(succs[node]):
                stack[-1] = (node, idx + 1)
                nxt = succs[node][idx]
                if color[nxt] == 0:
                    color[nxt] = 1
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif color[nxt] == 1:
                    # Back edge node -> nxt: walk the parent chain back to
                    # nxt to materialise the witness path.
                    path = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        path.append(cur)
                    path.reverse()
                    return [*path, nxt]
            else:
                color[node] = 2
                stack.pop()
    return None


# -- helpers shared by rules -------------------------------------------------


def _bad_float(value: float) -> bool:
    return math.isnan(value) or math.isinf(value)


def _fmt_tasks(data: _GraphData, tasks: Sequence[int], limit: int = 8) -> str:
    shown = ", ".join(data.name(t) for t in tasks[:limit])
    more = f", ... (+{len(tasks) - limit} more)" if len(tasks) > limit else ""
    return shown + more


# -- rules -------------------------------------------------------------------


@_rule("G001", ERROR, "graph contains a directed cycle")
def _check_cycle(data: _GraphData) -> List[LintIssue]:
    cycle = find_cycle(data.num_tasks, ((s, d) for s, d, _ in data.edges))
    if cycle is None:
        return []
    witness = " -> ".join(data.name(t) for t in cycle)
    return [
        LintIssue(
            code="G001",
            severity=ERROR,
            message=f"directed cycle: {witness}",
            tasks=tuple(cycle[:-1]),
        )
    ]


@_rule("G002", ERROR, "self-edge (task depends on itself)")
def _check_self_edges(data: _GraphData) -> List[LintIssue]:
    bad = sorted({s for s, d, _ in data.edges if s == d})
    if not bad:
        return []
    return [
        LintIssue(
            code="G002",
            severity=ERROR,
            message=f"self-edge on task(s) {_fmt_tasks(data, bad)}",
            tasks=tuple(bad),
        )
    ]


@_rule("G003", ERROR, "duplicate edge between the same task pair")
def _check_duplicate_edges(data: _GraphData) -> List[LintIssue]:
    seen: Dict[Tuple[int, int], int] = {}
    for s, d, _ in data.edges:
        seen[(s, d)] = seen.get((s, d), 0) + 1
    dups = sorted(pair for pair, count in seen.items() if count > 1)
    if not dups:
        return []
    shown = ", ".join(f"{data.name(s)}->{data.name(d)}" for s, d in dups[:8])
    more = f", ... (+{len(dups) - 8} more)" if len(dups) > 8 else ""
    tasks = tuple(sorted({t for pair in dups for t in pair}))
    return [
        LintIssue(
            code="G003",
            severity=ERROR,
            message=f"duplicate edge(s): {shown}{more}",
            tasks=tasks,
        )
    ]


@_rule("G004", ERROR, "non-positive, NaN, or infinite computation cost")
def _check_comp_weights(data: _GraphData) -> List[LintIssue]:
    bad = [
        t
        for t, comp in enumerate(data.comps)
        if _bad_float(comp) or comp <= 0.0
    ]
    if not bad:
        return []
    samples = ", ".join(
        f"{data.name(t)}={data.comps[t]!r}" for t in bad[:8]
    )
    more = f", ... (+{len(bad) - 8} more)" if len(bad) > 8 else ""
    return [
        LintIssue(
            code="G004",
            severity=ERROR,
            message=f"computation cost must be positive and finite: {samples}{more}",
            tasks=tuple(bad),
        )
    ]


@_rule("G005", ERROR, "negative, NaN, or infinite communication cost")
def _check_comm_weights(data: _GraphData) -> List[LintIssue]:
    bad = [
        (s, d, c)
        for s, d, c in data.edges
        if _bad_float(c) or c < 0.0
    ]
    if not bad:
        return []
    samples = ", ".join(
        f"{data.name(s)}->{data.name(d)}={c!r}" for s, d, c in bad[:8]
    )
    more = f", ... (+{len(bad) - 8} more)" if len(bad) > 8 else ""
    tasks = tuple(sorted({t for s, d, _ in bad for t in (s, d)}))
    return [
        LintIssue(
            code="G005",
            severity=ERROR,
            message=(
                f"communication cost must be non-negative and finite: "
                f"{samples}{more}"
            ),
            tasks=tasks,
        )
    ]


@_rule("G006", WARNING, "isolated task (no dependencies in either direction)")
def _check_isolated(data: _GraphData) -> List[LintIssue]:
    if data.num_tasks <= 1:
        return []
    connected = {t for s, d, _ in data.edges for t in (s, d) if s != d}
    isolated = [t for t in range(data.num_tasks) if t not in connected]
    if not isolated or not data.edges:
        # A fully edge-free graph is an (unusual but coherent) bag of
        # independent tasks; flagging every task would be noise.
        return []
    return [
        LintIssue(
            code="G006",
            severity=WARNING,
            message=(
                f"{len(isolated)} isolated task(s) with no edges: "
                f"{_fmt_tasks(data, isolated)}"
            ),
            tasks=tuple(isolated),
        )
    ]


@_rule("G007", WARNING, "graph splits into multiple weakly-connected components")
def _check_components(data: _GraphData) -> List[LintIssue]:
    n = data.num_tasks
    if n <= 1:
        return []
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s, d, _ in data.edges:
        if 0 <= s < n and 0 <= d < n and s != d:
            rs, rd = find(s), find(d)
            if rs != rd:
                parent[rs] = rd
    sizes: Dict[int, int] = {}
    for t in range(n):
        root = find(t)
        sizes[root] = sizes.get(root, 0) + 1
    if len(sizes) <= 1:
        return []
    ordered = sorted(sizes.values(), reverse=True)
    shown = ", ".join(str(s) for s in ordered[:8])
    more = ", ..." if len(ordered) > 8 else ""
    return [
        LintIssue(
            code="G007",
            severity=WARNING,
            message=(
                f"graph has {len(sizes)} weakly-connected components "
                f"(sizes {shown}{more}); schedulers treat them as one program"
            ),
        )
    ]


@_rule("G008", INFO, "zero-cost super-source/sink anomaly")
def _check_zero_cost_terminals(data: _GraphData) -> List[LintIssue]:
    if not data.edges:
        return []
    total_comm = sum(c for _, _, c in data.edges if not _bad_float(c))
    if total_comm <= 0.0:
        return []
    out_comms: Dict[int, List[float]] = {}
    in_comms: Dict[int, List[float]] = {}
    for s, d, c in data.edges:
        out_comms.setdefault(s, []).append(c)
        in_comms.setdefault(d, []).append(c)
    issues: List[LintIssue] = []
    sources = [
        t
        for t in range(data.num_tasks)
        if t not in in_comms and t in out_comms and all(c == 0.0 for c in out_comms[t])
    ]
    sinks = [
        t
        for t in range(data.num_tasks)
        if t not in out_comms and t in in_comms and all(c == 0.0 for c in in_comms[t])
    ]
    if sources:
        issues.append(
            LintIssue(
                code="G008",
                severity=INFO,
                message=(
                    f"entry task(s) with only zero-cost out-edges (artificial "
                    f"super-source?): {_fmt_tasks(data, sources)}"
                ),
                tasks=tuple(sources),
            )
        )
    if sinks:
        issues.append(
            LintIssue(
                code="G008",
                severity=INFO,
                message=(
                    f"exit task(s) with only zero-cost in-edges (artificial "
                    f"super-sink?): {_fmt_tasks(data, sinks)}"
                ),
                tasks=tuple(sinks),
            )
        )
    return issues


@_rule("G009", WARNING, "extreme communication-to-computation ratio")
def _check_extreme_ccr(data: _GraphData) -> List[LintIssue]:
    if not data.edges or data.num_tasks == 0:
        return []
    comps = [c for c in data.comps if not _bad_float(c) and c > 0]
    comms = [c for _, _, c in data.edges if not _bad_float(c) and c >= 0]
    if not comps or not comms:
        return []
    mean_comp = sum(comps) / len(comps)
    mean_comm = sum(comms) / len(comms)
    issues: List[LintIssue] = []
    if mean_comp > 0 and mean_comm / mean_comp >= EXTREME_CCR:
        issues.append(
            LintIssue(
                code="G009",
                severity=WARNING,
                message=(
                    f"extreme CCR {mean_comm / mean_comp:.3g} (>= {EXTREME_CCR:g}): "
                    f"communication dwarfs computation; schedules will serialise"
                ),
            )
        )
    median_comm = sorted(comms)[len(comms) // 2]
    if median_comm > 0:
        threshold = EDGE_OUTLIER_FACTOR * median_comm
        outliers = [
            (s, d, c) for s, d, c in data.edges if not _bad_float(c) and c >= threshold
        ]
        if outliers:
            shown = ", ".join(
                f"{data.name(s)}->{data.name(d)}={c:g}" for s, d, c in outliers[:5]
            )
            more = f", ... (+{len(outliers) - 5} more)" if len(outliers) > 5 else ""
            tasks = tuple(sorted({t for s, d, _ in outliers for t in (s, d)}))
            issues.append(
                LintIssue(
                    code="G009",
                    severity=WARNING,
                    message=(
                        f"communication outlier(s) >= {EDGE_OUTLIER_FACTOR:g}x the "
                        f"median edge cost {median_comm:.3g}: {shown}{more}"
                    ),
                    tasks=tasks,
                )
            )
    return issues


# -- entry points ------------------------------------------------------------


def _run_rules(data: _GraphData) -> LintReport:
    issues: List[LintIssue] = []
    for rule in rule_catalogue():
        issues.extend(rule.fn(data))
    return LintReport(
        issues=tuple(issues),
        num_tasks=data.num_tasks,
        num_edges=len(data.edges),
    )


def lint(graph: TaskGraph) -> LintReport:
    """Lint a :class:`TaskGraph` (frozen or still building)."""
    data = _GraphData(
        comps=tuple(graph.comps),
        names=tuple(graph.name(t) for t in graph.tasks()),
        edges=tuple(graph.edges()),
    )
    return _run_rules(data)


def lint_machine(machine: MachineModel) -> LintReport:
    """Lint a :class:`~repro.machine.MachineModel` for degenerate configs.

    Machine checks carry ``M``-codes and ride the same :class:`LintReport`
    vehicle as the graph rules (``num_tasks``/``num_edges`` are zero — there
    is no graph in play):

    * ``M001`` (warning) — a single processor: every schedule is the serial
      order and comparisons against parallel baselines are vacuous;
    * ``M002`` (warning) — extreme speed skew (fastest/slowest at or above
      :data:`EXTREME_SPEED_SKEW`): the slow processors contribute noise, not
      parallelism;
    * ``M003`` (info) — a communication-free machine (``comm_scale == 0``
      and ``latency == 0``): remote messages are free, so placement quality
      degenerates to pure load balancing;
    * ``M004`` (info) — an explicit ``speeds`` vector whose entries are all
      equal: the model is homogeneous but will *not* compare or fingerprint
      equal to the plain ``MachineModel(P)`` spelling, which silently splits
      result-cache entries.
    """
    issues: List[LintIssue] = []
    if machine.num_procs == 1:
        issues.append(
            LintIssue(
                code="M001",
                severity=WARNING,
                message=(
                    "machine has a single processor: every schedule is the "
                    "serial order"
                ),
            )
        )
    if machine.speeds is not None:
        fastest = max(machine.speeds)
        slowest = min(machine.speeds)
        if slowest > 0 and fastest / slowest >= EXTREME_SPEED_SKEW:
            issues.append(
                LintIssue(
                    code="M002",
                    severity=WARNING,
                    message=(
                        f"extreme speed skew {fastest / slowest:.3g} "
                        f"(>= {EXTREME_SPEED_SKEW:g}): slowest processors "
                        f"are effectively decorative"
                    ),
                )
            )
        if len(set(machine.speeds)) == 1:
            issues.append(
                LintIssue(
                    code="M004",
                    severity=INFO,
                    message=(
                        f"speeds vector is uniform ({machine.speeds[0]:g} "
                        f"everywhere): model behaves homogeneously but is "
                        f"not equal to MachineModel({machine.num_procs}) — "
                        f"cache keys and fingerprints will differ"
                    ),
                )
            )
    if machine.comm_scale == 0.0 and machine.latency == 0.0:
        issues.append(
            LintIssue(
                code="M003",
                severity=INFO,
                message=(
                    "communication-free machine (comm_scale=0, latency=0): "
                    "remote messages cost nothing and placement reduces to "
                    "load balancing"
                ),
            )
        )
    return LintReport(issues=tuple(issues), num_tasks=0, num_edges=0)


def lint_data(
    comps: Sequence[float],
    edges: Sequence[Tuple[int, int, float]],
    names: Optional[Sequence[Optional[str]]] = None,
) -> LintReport:
    """Lint raw graph data that has not passed ``TaskGraph`` validation.

    This is the entry point for inputs :class:`TaskGraph` would reject
    outright (duplicate edges, self-loops, non-positive weights): the linter
    reports *all* problems with stable codes instead of stopping at the
    first constructor error.
    """
    resolved: List[str] = []
    for t in range(len(comps)):
        name = names[t] if names is not None and t < len(names) else None
        resolved.append(name if name is not None else f"t{t}")
    data = _GraphData(
        comps=tuple(float(c) for c in comps),
        names=tuple(resolved),
        edges=tuple((int(s), int(d), float(c)) for s, d, c in edges),
    )
    return _run_rules(data)
