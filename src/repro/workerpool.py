"""Supervised worker processes with deadlines that are actually enforced.

``concurrent.futures.ProcessPoolExecutor`` cannot contain a hung worker: a
future has no handle on the process running it, so "timing out" a future
merely stops waiting for the answer — the worker keeps spinning, the pool
slot stays occupied, and the executor's shutdown joins the runaway process,
blocking the caller indefinitely.  For a serving layer that must answer by a
deadline no matter what user-supplied work does (the lesson of decentralized
list scheduling: tolerate slow or failed participants without global
stalls), that is the wrong primitive.

This module owns the worker lifecycle directly:

* each worker is a ``multiprocessing.Process`` with a private duplex pipe;
  the supervisor assigns one item at a time and the worker acknowledges
  with a ``started`` message *before* touching the item, so deadlines are
  measured from true execution start, never from submission — queued items
  cannot be falsely expired by a slow predecessor;
* the supervisor waits on pipes *and* process sentinels with a
  deadline-aware timeout (the earliest kill deadline or retry due-time), so
  an overrunning item is detected promptly instead of after up to a full
  extra budget;
* an item that exceeds its ``timeout`` gets its worker ``SIGKILL``-ed and
  the pool slot replaced, bounding each overrun to ``timeout + grace``;
* a worker that dies mid-item (OOM-kill, segfault, interpreter abort) is
  detected via its sentinel, the item is retried up to ``retries`` times
  with exponential backoff, and the slot is replaced.  Timeouts are *not*
  retried: the work here is deterministic, so an item that overran once
  would overrun again.

Outcomes carry a small taxonomy (:data:`COMPLETED` / :data:`TIMEOUT` /
:data:`DIED` / :data:`RAISED`) plus queue-wait vs run-time accounting, so
callers can report failures structurally instead of parsing tracebacks.
:mod:`repro.batch` builds its scheduling front-end on top of this.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from multiprocessing.connection import wait as _connection_wait
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TaskOutcome",
    "run_supervised",
    "MAX_BACKOFF",
    "COMPLETED",
    "TIMEOUT",
    "DIED",
    "RAISED",
    "OUTCOME_KINDS",
]

#: Default ceiling for the exponential death-retry backoff, in seconds.
#: Uncapped doubling balloons fast (``backoff=0.1`` is already ~51 s by
#: attempt 10) and the ballooned due-time feeds the supervisor's
#: earliest-wake calculation — a retry scheduled hours out would have the
#: supervisor sleeping (or churning) far past any sane deadline.  The cap
#: bounds any single wait while keeping the early-attempt spacing intact.
MAX_BACKOFF = 30.0

#: Exponent clamp for ``2.0 ** (attempt - 1)``: beyond this the doubling
#: has long since passed any finite cap, and a huge user-supplied
#: ``retries`` would otherwise overflow float exponentiation entirely.
_BACKOFF_EXP_CAP = 60


def _retry_delay(backoff: float, attempt: int, max_backoff: float) -> float:
    """Delay before re-running attempt ``attempt + 1``: exponential in the
    attempt number, clamped to ``max_backoff`` (overflow-safe for any
    ``attempt`` — the exponent saturates before ``float`` does)."""
    return min(max_backoff, backoff * 2.0 ** min(attempt - 1, _BACKOFF_EXP_CAP))

COMPLETED = "completed"
TIMEOUT = "timeout"
DIED = "died"
RAISED = "raised"
OUTCOME_KINDS = (COMPLETED, TIMEOUT, DIED, RAISED)


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one item.

    ``seconds`` is execution wall-clock time (zero if the item never
    started); ``queue_seconds`` is the wait between (re-)enqueueing and
    execution start.  ``attempts`` counts runs including the final one.
    """

    kind: str
    value: Any = None  # the runner's return value when kind == COMPLETED
    error: Optional[str] = None
    seconds: float = 0.0
    queue_seconds: float = 0.0
    attempts: int = 1

    @property
    def completed(self) -> bool:
        return self.kind == COMPLETED


def _worker_main(conn: Connection, runner: Callable[[Any], Any]) -> None:
    """Worker loop: receive ``(index, item)``, ack ``started``, run, reply.

    The ``started`` ack is sent before the item is touched, so the
    supervisor's deadline clock measures execution, not queue wait.  A
    ``None`` message is the shutdown signal.
    """
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                return
            if msg is None:
                return
            index, item = msg
            conn.send(("started", index))
            try:
                value = runner(item)
            except BaseException:
                conn.send(("raised", index, traceback.format_exc(limit=8)))
                continue
            try:
                conn.send(("done", index, value))
            except Exception:
                # The result itself failed to pickle; report that rather
                # than dying and looking like an infrastructure failure.
                conn.send(("raised", index, traceback.format_exc(limit=8)))
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _Assignment:
    index: int
    attempt: int
    enqueued_at: float
    sent_at: float
    started_at: Optional[float] = None


class _Worker:
    __slots__ = ("proc", "conn", "assignment", "exitcode")

    def __init__(self, proc: BaseProcess, conn: Connection) -> None:
        self.proc = proc
        self.conn = conn
        self.assignment: Optional[_Assignment] = None
        self.exitcode: Optional[int] = None  # captured at retirement


def run_supervised(
    items: Sequence[Any],
    runner: Callable[[Any], Any],
    workers: int,
    timeout: Optional[float] = None,
    grace: float = 1.0,
    retries: int = 2,
    backoff: float = 0.1,
    max_backoff: float = MAX_BACKOFF,
    metrics: Optional["MetricsRegistry"] = None,
) -> List[TaskOutcome]:
    """Run ``runner(item)`` for every item across supervised workers.

    Parameters
    ----------
    items:
        The work; outcomes come back in the same order.
    runner:
        Module-level (picklable) callable executed in the workers.  It
        should catch its own expected errors; an escaped exception becomes
        a :data:`RAISED` outcome.
    workers:
        Worker process count (clamped to ``len(items)``).
    timeout:
        Per-item execution budget in seconds, measured from the worker's
        ``started`` ack.  An overrunning worker is killed and replaced;
        the item's outcome is :data:`TIMEOUT`.  ``None`` disables deadlines.
    grace:
        Detection-and-cleanup slack: an overrun is contained within
        ``timeout + grace`` of execution start, and final shutdown waits at
        most ``grace`` before force-killing stragglers.
    retries:
        How many times an item whose worker *died* is re-run (timeouts are
        never retried).  ``retries=2`` allows up to three attempts.
    backoff:
        Base delay before a retry; doubles per failed attempt
        (``backoff * 2**(attempt-1)``), clamped to ``max_backoff``.
    max_backoff:
        Ceiling on any single retry delay (default :data:`MAX_BACKOFF`).
        The clamp keeps a large user-supplied ``retries`` from scheduling
        retries arbitrarily far out — the retry due-time participates in
        the supervisor's earliest-wake calculation alongside kill
        deadlines, and an unbounded one would dominate it.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when set, the pool
        records ``workerpool_spawned_total``, ``workerpool_outcomes_total
        {kind=...}``, ``workerpool_deaths_total`` / ``workerpool_retries_total``
        / ``workerpool_sigkills_total``, and the ``workerpool_exec_seconds``
        / ``workerpool_queue_seconds`` histograms.  ``None`` (default)
        records nothing.

    Returns
    -------
    list[TaskOutcome]
        One outcome per item, in input order — never raises for an
        item-level problem.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if grace <= 0:
        raise ValueError(f"grace must be positive, got {grace}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if max_backoff <= 0:
        raise ValueError(f"max_backoff must be positive, got {max_backoff}")

    items = list(items)
    n = len(items)
    if n == 0:
        return []
    # fork keeps workers cheap and lets them inherit the parent's live
    # module state (test monkeypatching relies on this); fall back to the
    # platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:
        ctx = multiprocessing.get_context()
    nworkers = min(workers, n)

    outcomes: List[Optional[TaskOutcome]] = [None] * n
    remaining = n
    now = time.monotonic()
    # (index, attempt, enqueued_at); retries re-enter through `delayed`.
    ready: Deque[Tuple[int, int, float]] = deque((i, 1, now) for i in range(n))
    delayed: List[Tuple[float, int, int]] = []  # heap of (due, index, attempt)
    pool: List[_Worker] = []

    def spawn() -> None:
        if metrics is not None:
            metrics.counter("workerpool_spawned_total").inc()
        parent_conn, child_conn = ctx.Pipe()
        try:
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, runner), daemon=True
            )
            proc.start()
        except BaseException:
            # A failed start must not leak either pipe end.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        pool.append(_Worker(proc, parent_conn))

    def settle(index: int, outcome: TaskOutcome) -> None:
        nonlocal remaining
        if outcomes[index] is None:
            outcomes[index] = outcome
            remaining -= 1
            if metrics is not None:
                metrics.counter(
                    "workerpool_outcomes_total", kind=outcome.kind
                ).inc()
                metrics.histogram("workerpool_exec_seconds").observe(
                    outcome.seconds
                )
                metrics.histogram("workerpool_queue_seconds").observe(
                    outcome.queue_seconds
                )

    def retire(worker: _Worker, kill: bool) -> None:
        if worker in pool:
            pool.remove(worker)
        if kill:
            worker.proc.kill()
        worker.proc.join(grace)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(grace)
        worker.exitcode = worker.proc.exitcode
        try:
            worker.conn.close()
        except OSError:
            pass
        # Release the Process object's sentinel/pipe fds *now* rather than
        # whenever the GC finalises it: N kill-and-replace cycles must not
        # grow the supervisor's fd table (tests/test_workerpool_fds.py).
        try:
            worker.proc.close()
        except ValueError:
            pass  # unkillable straggler; the GC finaliser will reap it

    def work_waiting() -> bool:
        return bool(ready) or bool(delayed)

    def handle_message(worker: _Worker, msg: Tuple[Any, ...]) -> None:
        a = worker.assignment
        kind = msg[0]
        if a is None or msg[1] != a.index:
            return  # stale message for an already-settled assignment
        if kind == "started":
            a.started_at = time.monotonic()
            return
        t = time.monotonic()
        run = t - (a.started_at if a.started_at is not None else a.sent_at)
        queue = (a.started_at if a.started_at is not None else t) - a.enqueued_at
        if kind == "done":
            settle(a.index, TaskOutcome(
                COMPLETED, value=msg[2], seconds=run,
                queue_seconds=queue, attempts=a.attempt,
            ))
        elif kind == "raised":
            settle(a.index, TaskOutcome(
                RAISED, error=msg[2], seconds=run,
                queue_seconds=queue, attempts=a.attempt,
            ))
        worker.assignment = None

    def handle_death(worker: _Worker) -> None:
        # Salvage messages already in the pipe (e.g. a `done` sent just
        # before a crash in teardown) before declaring the item lost.
        try:
            while worker.conn.poll(0):
                handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        a = worker.assignment
        worker.assignment = None
        retire(worker, kill=False)
        if metrics is not None:
            metrics.counter("workerpool_deaths_total").inc()
        if a is not None and outcomes[a.index] is None:
            t = time.monotonic()
            if a.attempt <= retries:
                if metrics is not None:
                    metrics.counter("workerpool_retries_total").inc()
                due = t + _retry_delay(backoff, a.attempt, max_backoff)
                heapq.heappush(delayed, (due, a.index, a.attempt + 1))
            else:
                run = t - a.started_at if a.started_at is not None else 0.0
                queue = (a.started_at if a.started_at is not None else t) - a.enqueued_at
                settle(a.index, TaskOutcome(
                    DIED,
                    error=(
                        f"worker process died (exit code {worker.exitcode}) "
                        f"after {a.attempt} attempt(s)"
                    ),
                    seconds=run, queue_seconds=queue, attempts=a.attempt,
                ))
        if work_waiting() and len(pool) < nworkers:
            spawn()

    for _ in range(nworkers):
        spawn()
    try:
        while remaining:
            t = time.monotonic()
            # Promote retries whose backoff has elapsed.
            while delayed and delayed[0][0] <= t:
                _, index, attempt = heapq.heappop(delayed)
                ready.append((index, attempt, t))
            # Keep capacity available for waiting work (every slot may have
            # been retired by kills/deaths since the last iteration).
            while (
                work_waiting()
                and len(pool) < nworkers
                and not any(w.assignment is None for w in pool)
            ):
                spawn()
            # Assign ready work to idle workers.
            for worker in list(pool):
                if not ready:
                    break
                if worker.assignment is not None:
                    continue
                index, attempt, enqueued_at = ready.popleft()
                worker.assignment = _Assignment(
                    index, attempt, enqueued_at, sent_at=time.monotonic()
                )
                try:
                    worker.conn.send((index, items[index]))
                except (BrokenPipeError, OSError):
                    handle_death(worker)  # re-queues via the death path
                except Exception:
                    # The item itself failed to pickle: fail it, replace the
                    # worker (its pipe may hold a partial message).
                    settle(index, TaskOutcome(
                        RAISED, error=traceback.format_exc(limit=8),
                        attempts=attempt,
                    ))
                    worker.assignment = None
                    retire(worker, kill=True)
                    if remaining:
                        spawn()
            # Earliest event we must wake for: a kill deadline or a retry.
            deadline: Optional[float] = None
            if timeout is not None:
                for worker in pool:
                    a = worker.assignment
                    if a is not None and a.started_at is not None:
                        d = a.started_at + timeout
                        deadline = d if deadline is None else min(deadline, d)
            if delayed:
                deadline = (
                    delayed[0][0] if deadline is None
                    else min(deadline, delayed[0][0])
                )
            wait_objects: List[Any] = []
            for worker in pool:
                wait_objects.append(worker.conn)
                wait_objects.append(worker.proc.sentinel)
            if not wait_objects:
                # No workers alive (all retired) but work is still waiting
                # on a backoff; sleep until it is due.
                if deadline is not None:
                    time.sleep(max(0.0, deadline - time.monotonic()))
                continue
            wait_timeout = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            ready_objects = _connection_wait(wait_objects, timeout=wait_timeout)
            by_conn = {w.conn: w for w in pool}
            by_sentinel = {w.proc.sentinel: w for w in pool}
            dead: List[_Worker] = []
            for obj in ready_objects:
                worker = by_conn.get(obj)
                if worker is not None:
                    try:
                        while worker.conn.poll(0):
                            handle_message(worker, worker.conn.recv())
                    except (EOFError, OSError):
                        if worker not in dead:
                            dead.append(worker)
                    continue
                worker = by_sentinel.get(obj)
                if (
                    worker is not None
                    and not worker.proc.is_alive()
                    and worker not in dead
                ):
                    dead.append(worker)
            for worker in dead:
                if worker in pool:
                    handle_death(worker)
            # Deadline enforcement: kill overrunners, replace the slot.
            if timeout is not None:
                t = time.monotonic()
                for worker in list(pool):
                    a = worker.assignment
                    if a is None or a.started_at is None:
                        continue
                    run = t - a.started_at
                    if run < timeout:
                        continue
                    settle(a.index, TaskOutcome(
                        TIMEOUT,
                        error=(
                            f"timeout: exceeded the {timeout:g}s budget "
                            f"(killed after {run:.3f}s of execution)"
                        ),
                        seconds=run,
                        queue_seconds=a.started_at - a.enqueued_at,
                        attempts=a.attempt,
                    ))
                    worker.assignment = None
                    if metrics is not None:
                        metrics.counter("workerpool_sigkills_total").inc()
                    retire(worker, kill=True)
                    if work_waiting() and len(pool) < nworkers:
                        spawn()
    finally:
        for worker in pool:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        shutdown_by = time.monotonic() + grace
        for worker in pool:
            worker.proc.join(max(0.0, shutdown_by - time.monotonic()))
        for worker in pool:
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(grace)
            try:
                worker.conn.close()
            except OSError:
                pass
            try:
                worker.proc.close()
            except ValueError:
                pass
    return [o for o in outcomes if o is not None]
