"""Workload (task-graph) generators: the paper's evaluation problems plus
randomised families for testing and scaling studies."""

from repro.workloads.base import build_weighted_graph
from repro.workloads.cholesky import cholesky, cholesky_size_for_tasks
from repro.workloads.fft import fft, fft_size_for_tasks
from repro.workloads.gallery import paper_example, simple_diamond, two_chains
from repro.workloads.laplace import laplace, laplace_size_for_tasks
from repro.workloads.lu import lu, lu_chain, lu_size_for_tasks
from repro.workloads.random_dags import (
    chain,
    erdos_dag,
    fork_join,
    in_tree,
    independent_tasks,
    layered_random,
    out_tree,
    series_parallel,
)
from repro.workloads.stencil import stencil, stencil_size_for_tasks
from repro.workloads.wavefront import wavefront, wavefront_size_for_tasks

__all__ = [
    "build_weighted_graph",
    "lu",
    "lu_chain",
    "lu_size_for_tasks",
    "laplace",
    "laplace_size_for_tasks",
    "stencil",
    "stencil_size_for_tasks",
    "wavefront",
    "wavefront_size_for_tasks",
    "fft",
    "fft_size_for_tasks",
    "cholesky",
    "cholesky_size_for_tasks",
    "layered_random",
    "erdos_dag",
    "fork_join",
    "out_tree",
    "in_tree",
    "chain",
    "independent_tasks",
    "series_parallel",
    "paper_example",
    "simple_diamond",
    "two_chains",
]
