"""Shared machinery for workload generators.

Every generator in this package works in two stages:

1. build the *topology* — a task list (names) plus a dependency list — which
   is fully determined by the structural parameters (matrix size, grid size,
   FFT points, ...);
2. assign *weights* — computation costs sampled i.i.d. from a chosen
   distribution, and communication costs sampled i.i.d. and then rescaled so
   the instance's CCR is exactly the requested value (this mirrors the
   paper's experimental setup: fixed problem topology, random weights,
   granularity controlled through CCR).

Passing ``rng=None`` yields deterministic unit-mean weights (comp =
``mean_comp``, comm = ``ccr * mean_comp``), which is convenient for unit
tests and worked examples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.util.rng import sample_weights, scale_to_ccr

__all__ = ["build_weighted_graph", "Edge"]

#: ``(src_index, dst_index)`` pairs into the generator's task-name list.
Edge = Tuple[int, int]


def build_weighted_graph(
    names: Sequence[str],
    edges: Iterable[Edge],
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Materialise a topology into a frozen, weighted :class:`TaskGraph`.

    Parameters
    ----------
    names:
        One name per task; task ids follow list order.
    edges:
        ``(src, dst)`` index pairs.
    rng:
        Seeded generator for weight sampling, or ``None`` for deterministic
        unit-coefficient weights.
    ccr:
        Target communication-to-computation ratio (exactly achieved).
    mean_comp:
        Mean computation cost.
    distribution:
        Weight distribution name (see :data:`repro.util.rng.WEIGHT_DISTRIBUTIONS`).
    """
    edge_list: List[Edge] = list(edges)
    n = len(names)
    if rng is None:
        comps = np.full(n, float(mean_comp))
        comms = np.full(len(edge_list), float(ccr) * float(mean_comp))
    else:
        comps = sample_weights(rng, mean_comp, n, distribution)
        raw = sample_weights(rng, 1.0, len(edge_list), distribution)
        comms = scale_to_ccr(comps, raw, ccr)
    graph = TaskGraph()
    for name, comp in zip(names, comps):
        graph.add_task(float(comp), name=name)
    for (src, dst), comm in zip(edge_list, comms):
        graph.add_edge(src, dst, float(comm))
    return graph.freeze()
