"""Tiled Cholesky factorisation task graph (extension workload).

The right-looking tiled Cholesky DAG widely used in runtime-system
benchmarks (POTRF / TRSM / SYRK-GEMM tiles).  Included beyond the paper's
three problems to exercise schedulers on a graph with cubic task counts,
long dependency chains *and* wide update fronts.

Tasks for ``tiles = n``:

* ``potrf[k]`` for ``k = 0..n-1``
* ``trsm[k][i]`` for ``k < i < n``
* ``upd[k][i][j]`` for ``k < j <= i < n`` (``syrk`` when ``i == j``)

``V = n + n(n-1)/2 + n(n-1)(n+1)/6``  (``O(n^3/6)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["cholesky", "cholesky_size_for_tasks"]


def _num_tasks(n: int) -> int:
    return n + n * (n - 1) // 2 + sum((n - 1 - k) * (n - k) // 2 for k in range(n))


def cholesky_size_for_tasks(target_tasks: int) -> int:
    """Smallest tile count whose Cholesky graph has >= ``target_tasks``."""
    n = 1
    while _num_tasks(n) < target_tasks:
        n += 1
    return n


def cholesky(
    tiles: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Build the tiled Cholesky task graph for a ``tiles x tiles`` tile matrix."""
    if tiles < 1:
        raise ValueError(f"cholesky requires tiles >= 1, got {tiles}")
    names: List[str] = []
    index: Dict[str, int] = {}

    def task(name: str) -> int:
        index[name] = len(names)
        names.append(name)
        return index[name]

    n = tiles
    for k in range(n):
        task(f"potrf[{k}]")
        for i in range(k + 1, n):
            task(f"trsm[{k}][{i}]")
        for i in range(k + 1, n):
            for j in range(k + 1, i + 1):
                task(f"upd[{k}][{i}][{j}]")

    edges: List[Tuple[int, int]] = []
    for k in range(n):
        potrf_k = index[f"potrf[{k}]"]
        if k > 0:
            edges.append((index[f"upd[{k-1}][{k}][{k}]"], potrf_k))
        for i in range(k + 1, n):
            trsm_ki = index[f"trsm[{k}][{i}]"]
            edges.append((potrf_k, trsm_ki))
            if k > 0:
                edges.append((index[f"upd[{k-1}][{i}][{k}]"], trsm_ki))
        for i in range(k + 1, n):
            for j in range(k + 1, i + 1):
                upd = index[f"upd[{k}][{i}][{j}]"]
                edges.append((index[f"trsm[{k}][{i}]"], upd))
                if j != i:
                    edges.append((index[f"trsm[{k}][{j}]"], upd))
                if k > 0:
                    edges.append((index[f"upd[{k-1}][{i}][{j}]"], upd))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
