"""Radix-2 FFT butterfly task graph ("FFT" in the paper's Fig. 3 discussion).

The classic FFT task graph: ``points`` input tasks followed by
``log2(points)`` butterfly stages of ``points`` tasks each.  Task ``i`` of
stage ``s`` consumes task ``i`` and task ``i XOR 2^(s-1)`` of stage ``s-1``
(the butterfly exchange).  Perfectly regular with out-degree 2 everywhere —
the second problem class the paper reports achieving linear speedup.

``V = points * (log2(points) + 1)``; width ``W = points``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["fft", "fft_size_for_tasks"]


def fft_size_for_tasks(target_tasks: int) -> int:
    """Smallest power-of-two point count whose FFT graph has >= ``target_tasks``."""
    points = 2
    while points * (points.bit_length()) < target_tasks:
        points *= 2
    return points


def fft(
    points: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Build the radix-2 FFT butterfly graph over ``points`` (a power of two)."""
    if points < 2 or points & (points - 1):
        raise ValueError(f"fft requires a power-of-two point count >= 2, got {points}")
    stages = points.bit_length() - 1  # log2(points)

    def tid(s: int, i: int) -> int:
        return s * points + i

    names: List[str] = [
        ("in" if s == 0 else f"bfly[{s}]") + f"({i})"
        for s in range(stages + 1)
        for i in range(points)
    ]
    edges: List[Tuple[int, int]] = []
    for s in range(1, stages + 1):
        span = 1 << (s - 1)
        for i in range(points):
            edges.append((tid(s - 1, i), tid(s, i)))
            edges.append((tid(s - 1, i ^ span), tid(s, i)))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
