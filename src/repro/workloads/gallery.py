"""Fixed example graphs, including the paper's Fig. 1 trace example.

:func:`paper_example` returns the 8-task graph the paper uses for the FLB
execution trace (Section 5, Table 1).  The printed figure is illegible in
the available scan, so the graph was reconstructed from the trace itself;
the reconstruction reproduces every EMT / LMT / bottom-level value and every
scheduling decision in the published Table 1 (see DESIGN.md, Section 3).
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph

__all__ = ["paper_example", "simple_diamond", "two_chains"]

#: Fig. 1 computation costs, ``t0 .. t7``.
PAPER_EXAMPLE_COMP = (2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 2.0, 2.0)

#: Fig. 1 edges: ``(src, dst, comm)``.
PAPER_EXAMPLE_EDGES = (
    (0, 1, 1.0),
    (0, 2, 4.0),
    (0, 3, 1.0),
    (1, 4, 2.0),
    (1, 5, 1.0),
    (3, 5, 1.0),
    (2, 6, 1.0),
    (4, 7, 1.0),
    (5, 7, 3.0),
    (6, 7, 2.0),
)


def paper_example() -> TaskGraph:
    """The Fig. 1 task graph used by the paper's Table 1 execution trace."""
    g = TaskGraph()
    for i, comp in enumerate(PAPER_EXAMPLE_COMP):
        g.add_task(comp, name=f"t{i}")
    for src, dst, comm in PAPER_EXAMPLE_EDGES:
        g.add_edge(src, dst, comm)
    return g.freeze()


def simple_diamond() -> TaskGraph:
    """A 4-task diamond: quick fixture for docs and unit tests."""
    g = TaskGraph()
    a = g.add_task(1.0, name="a")
    b = g.add_task(2.0, name="b")
    c = g.add_task(3.0, name="c")
    d = g.add_task(1.0, name="d")
    g.add_edge(a, b, 1.0)
    g.add_edge(a, c, 1.0)
    g.add_edge(b, d, 2.0)
    g.add_edge(c, d, 1.0)
    return g.freeze()


def two_chains() -> TaskGraph:
    """Two independent 3-task chains: exercises multi-entry / multi-exit paths."""
    g = TaskGraph()
    ids = [g.add_task(1.0, name=f"c{i}") for i in range(6)]
    g.add_edge(ids[0], ids[1], 1.0)
    g.add_edge(ids[1], ids[2], 1.0)
    g.add_edge(ids[3], ids[4], 1.0)
    g.add_edge(ids[4], ids[5], 1.0)
    return g.freeze()
