"""Laplace equation solver task graph ("Laplace" in the paper's evaluation).

An iterative Jacobi-style solver on an ``m x m`` grid: each sweep updates
every grid point from its 4-neighbourhood (and its own previous value), so
iteration ``l``'s point ``(i, j)`` depends on iteration ``l-1``'s points
``(i, j)``, ``(i±1, j)`` and ``(i, j±1)``.  The result is a layered graph of
``iters`` layers with ``m*m`` tasks each — wide and regular, but every
interior task joins five predecessors, giving the join-heavy behaviour the
paper observes for Laplace.

``V = m*m*iters``; width ``W = m*m``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["laplace", "laplace_size_for_tasks"]


def laplace_size_for_tasks(target_tasks: int, grid: int = 10) -> Tuple[int, int]:
    """``(grid, iters)`` with ``grid**2 * iters >= target_tasks``."""
    iters = max(1, -(-target_tasks // (grid * grid)))
    return grid, iters


def laplace(
    grid: int,
    iters: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Build the Jacobi/Laplace task graph for a ``grid x grid`` mesh."""
    if grid < 1 or iters < 1:
        raise ValueError(f"laplace requires grid >= 1 and iters >= 1, got {grid}, {iters}")

    def tid(lvl: int, i: int, j: int) -> int:
        return lvl * grid * grid + i * grid + j

    names: List[str] = [
        f"jacobi[{lvl}]({i},{j})"
        for lvl in range(iters)
        for i in range(grid)
        for j in range(grid)
    ]
    edges: List[Tuple[int, int]] = []
    for lvl in range(1, iters):
        for i in range(grid):
            for j in range(grid):
                dst = tid(lvl, i, j)
                edges.append((tid(lvl - 1, i, j), dst))
                if i > 0:
                    edges.append((tid(lvl - 1, i - 1, j), dst))
                if i + 1 < grid:
                    edges.append((tid(lvl - 1, i + 1, j), dst))
                if j > 0:
                    edges.append((tid(lvl - 1, i, j - 1), dst))
                if j + 1 < grid:
                    edges.append((tid(lvl - 1, i, j + 1), dst))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
