"""LU decomposition task graphs ("LU" in the paper's evaluation).

Two classic variants of the dense-elimination DAG exist in the scheduling
literature; this module provides both.

:func:`lu` — the **join-style** variant used for the paper's evaluation
suite.  At step ``k`` a *pivot* task forks one *update* task per remaining
column, and the next pivot **joins all** of the updates (full partial
pivoting needs every updated column before the next pivot can be chosen).
The paper describes its LU as involving "many successive forks and joins"
and "a large number of join operations", which singles out this variant;
empirically it also reproduces the paper's FLB ~ ETF ~ MCP parity on LU,
whereas the chain variant does not (see EXPERIMENTS.md).

:func:`lu_chain` — the **chain-style** variant (PYRROS / DSC lineage):
``upd[k][j]`` feeds ``upd[k+1][j]`` along each column and only
``upd[k][k+1]`` feeds the next pivot.  Its single critical successor per
step makes it a deliberately adversarial case for schedulers whose
tie-breaking ignores bottom levels at equal start times; it is kept both as
an extra workload family and as the documented worst case for FLB's dynamic
tie-breaking.

Both have ``V = (n-1) + n(n-1)/2`` tasks and width ``W = n - 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["lu", "lu_chain", "lu_size_for_tasks"]


def lu_size_for_tasks(target_tasks: int) -> int:
    """Smallest matrix dimension ``n`` whose LU graph has >= ``target_tasks``."""
    n = 2
    while (n - 1) + n * (n - 1) // 2 < target_tasks:
        n += 1
    return n


def _lu_tasks(n: int) -> Tuple[List[str], Dict[str, int]]:
    names: List[str] = []
    index: Dict[str, int] = {}
    for k in range(n - 1):
        index[f"pivot[{k}]"] = len(names)
        names.append(f"pivot[{k}]")
        for j in range(k + 1, n):
            index[f"upd[{k}][{j}]"] = len(names)
            names.append(f"upd[{k}][{j}]")
    return names, index


def lu(
    n: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Join-style LU elimination graph (the paper's evaluation variant)."""
    if n < 2:
        raise ValueError(f"LU requires n >= 2, got {n}")
    names, index = _lu_tasks(n)
    edges: List[Tuple[int, int]] = []
    for k in range(n - 1):
        pk = index[f"pivot[{k}]"]
        for j in range(k + 1, n):
            edges.append((pk, index[f"upd[{k}][{j}]"]))
        if k + 1 < n - 1:
            nxt = index[f"pivot[{k+1}]"]
            for j in range(k + 1, n):
                edges.append((index[f"upd[{k}][{j}]"], nxt))
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def lu_chain(
    n: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Chain-style LU elimination graph (PYRROS / DSC lineage)."""
    if n < 2:
        raise ValueError(f"LU requires n >= 2, got {n}")
    names, index = _lu_tasks(n)
    edges: List[Tuple[int, int]] = []
    for k in range(n - 1):
        pk = index[f"pivot[{k}]"]
        for j in range(k + 1, n):
            edges.append((pk, index[f"upd[{k}][{j}]"]))
        if k + 1 < n - 1:
            edges.append((index[f"upd[{k}][{k+1}]"], index[f"pivot[{k+1}]"]))
        for j in range(k + 2, n):
            if k + 1 < n - 1:
                edges.append((index[f"upd[{k}][{j}]"], index[f"upd[{k+1}][{j}]"]))
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
