"""Randomised task-graph families for tests and scaling studies.

These families are not in the paper's evaluation suite but are essential for
property-based testing (schedule validity on arbitrary DAG shapes) and for
the complexity-scaling benchmark:

* :func:`layered_random` — layered graphs with tunable width and density,
  the workhorse for scaling studies because ``V``, ``E`` and ``W`` are all
  directly controllable;
* :func:`erdos_dag` — G(n, p) over a random topological order, producing
  irregular shapes;
* :func:`fork_join` — repeated fork/join diamonds;
* :func:`out_tree` / :func:`in_tree` — complete trees (pure forks / joins);
* :func:`chain` — a sequential pipeline (width 1);
* :func:`independent_tasks` — no edges at all (width = V), the pure load
  balancing case;
* :func:`series_parallel` — recursive series/parallel compositions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.util.rng import make_rng
from repro.workloads.base import build_weighted_graph

__all__ = [
    "layered_random",
    "erdos_dag",
    "fork_join",
    "out_tree",
    "in_tree",
    "chain",
    "independent_tasks",
    "series_parallel",
]


def layered_random(
    layers: int,
    layer_width: int,
    rng: Optional[np.random.Generator] = None,
    edge_density: float = 0.3,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Layered random DAG: edges only between consecutive layers.

    Each of the ``layer_width**2`` possible edges between adjacent layers is
    present independently with probability ``edge_density``; every non-first
    layer task is guaranteed at least one predecessor so depth equals layer
    index.
    """
    if layers < 1 or layer_width < 1:
        raise ValueError("layers and layer_width must be >= 1")
    if not 0.0 <= edge_density <= 1.0:
        raise ValueError(f"edge_density must be in [0, 1], got {edge_density}")
    rng_local = rng if rng is not None else make_rng(0)

    def tid(lvl: int, i: int) -> int:
        return lvl * layer_width + i

    names = [f"n[{lvl}]({i})" for lvl in range(layers) for i in range(layer_width)]
    edges: List[Tuple[int, int]] = []
    for lvl in range(1, layers):
        mask = rng_local.random((layer_width, layer_width)) < edge_density
        for i in range(layer_width):
            preds = np.flatnonzero(mask[:, i])
            if preds.size == 0:
                preds = rng_local.integers(0, layer_width, size=1)
            for p in preds:
                edges.append((tid(lvl - 1, int(p)), tid(lvl, i)))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def erdos_dag(
    n: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """G(n, p) DAG: each pair ``i < j`` is an edge with probability ``p``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng_local = rng if rng is not None else make_rng(0)
    names = [f"n{i}" for i in range(n)]
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng_local.random() < p:
                edges.append((i, j))
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def fork_join(
    stages: int,
    width: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """``stages`` fork/join diamonds of the given ``width`` in sequence."""
    if stages < 1 or width < 1:
        raise ValueError("stages and width must be >= 1")
    names: List[str] = []
    edges: List[Tuple[int, int]] = []
    prev_join: Optional[int] = None
    for s in range(stages):
        fork = len(names)
        names.append(f"fork[{s}]")
        if prev_join is not None:
            edges.append((prev_join, fork))
        mids = []
        for i in range(width):
            mid = len(names)
            names.append(f"work[{s}]({i})")
            edges.append((fork, mid))
            mids.append(mid)
        join = len(names)
        names.append(f"join[{s}]")
        for mid in mids:
            edges.append((mid, join))
        prev_join = join
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def out_tree(
    depth: int,
    branching: int = 2,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Complete out-tree (root forks down); ``depth`` levels below the root."""
    if depth < 0 or branching < 1:
        raise ValueError("depth must be >= 0 and branching >= 1")
    names = ["root"]
    edges: List[Tuple[int, int]] = []
    frontier = [0]
    for d in range(1, depth + 1):
        new_frontier = []
        for parent in frontier:
            for b in range(branching):
                child = len(names)
                names.append(f"n[{d}]({len(new_frontier)})")
                edges.append((parent, child))
                new_frontier.append(child)
        frontier = new_frontier
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def in_tree(
    depth: int,
    branching: int = 2,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Complete in-tree (leaves join up to a single sink): reversed out-tree."""
    tree = out_tree(depth, branching)  # topology only; weights resampled below
    names = [f"n{i}" for i in range(tree.num_tasks)]
    edges = [(dst, src) for src, dst, _ in tree.edges()]
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def chain(
    n: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """A linear pipeline of ``n`` tasks (width 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    names = [f"n{i}" for i in range(n)]
    edges = [(i, i + 1) for i in range(n - 1)]
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)


def independent_tasks(
    n: int,
    rng: Optional[np.random.Generator] = None,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """``n`` tasks with no dependencies (width = V): pure load balancing."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    names = [f"n{i}" for i in range(n)]
    return build_weighted_graph(names, [], rng, 0.0, mean_comp, distribution)


def series_parallel(
    n_leaves: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Random series-parallel DAG with roughly ``n_leaves`` work tasks.

    Built by recursive composition: a block is either a single task, a
    series of two sub-blocks, or a parallel split/merge of two sub-blocks
    (with explicit split and merge tasks so the graph stays single-entry /
    single-exit).
    """
    if n_leaves < 1:
        raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
    rng_local = rng if rng is not None else make_rng(0)
    names: List[str] = []
    edges: List[Tuple[int, int]] = []

    def new_task(label: str) -> int:
        names.append(f"{label}{len(names)}")
        return len(names) - 1

    def build(leaves: int) -> Tuple[int, int]:
        """Return (entry, exit) task ids of a block with ``leaves`` work tasks."""
        if leaves == 1:
            t = new_task("w")
            return t, t
        left = int(rng_local.integers(1, leaves))
        right = leaves - left
        if rng_local.random() < 0.5:
            e1, x1 = build(left)
            e2, x2 = build(right)
            edges.append((x1, e2))
            return e1, x2
        split = new_task("s")
        merge_children = []
        for part in (left, right):
            e, x = build(part)
            edges.append((split, e))
            merge_children.append(x)
        merge = new_task("m")
        for x in merge_children:
            edges.append((x, merge))
        return split, merge

    build(n_leaves)
    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
