"""1-D stencil pipeline task graph ("Stencil" in the paper's evaluation).

A time-stepped 1-D stencil of radius 1: ``steps`` layers of ``m`` cells,
where cell ``i`` at step ``l`` depends on cells ``i-1, i, i+1`` at step
``l-1``.  Compared with Laplace, the neighbourhood is smaller (3-point vs
5-point joins) and the layer width is typically chosen smaller, making the
graph more regular and communication more local — the class of problems the
paper reports achieving linear speedup.

``V = m * steps``; width ``W = m``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["stencil", "stencil_size_for_tasks"]


def stencil_size_for_tasks(target_tasks: int, cells: int = 40) -> Tuple[int, int]:
    """``(cells, steps)`` with ``cells * steps >= target_tasks``."""
    steps = max(1, -(-target_tasks // cells))
    return cells, steps


def stencil(
    cells: int,
    steps: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Build the radius-1 1-D stencil graph with ``cells`` cells, ``steps`` steps."""
    if cells < 1 or steps < 1:
        raise ValueError(f"stencil requires cells >= 1 and steps >= 1, got {cells}, {steps}")

    def tid(lvl: int, i: int) -> int:
        return lvl * cells + i

    names: List[str] = [f"cell[{lvl}]({i})" for lvl in range(steps) for i in range(cells)]
    edges: List[Tuple[int, int]] = []
    for lvl in range(1, steps):
        for i in range(cells):
            dst = tid(lvl, i)
            for di in (-1, 0, 1):
                j = i + di
                if 0 <= j < cells:
                    edges.append((tid(lvl - 1, j), dst))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
