"""2-D wavefront (Gauss–Seidel / dynamic-programming diamond) task graph.

The classic diamond dependence pattern: cell ``(i, j)`` of an ``n x n``
grid depends on its north and west neighbours, ``(i-1, j)`` and
``(i, j-1)``.  Parallelism sweeps as an anti-diagonal wavefront whose width
grows from 1 to ``n`` and shrinks back to 1 — unlike the constant-width
layered families, the available parallelism *changes over time*, which
stresses schedulers' load-balancing differently from LU or stencil.

Used by Gauss–Seidel solvers, sequence alignment (Smith–Waterman), and
dynamic-programming kernels.  ``V = n^2``; width ``W = n``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.workloads.base import build_weighted_graph

__all__ = ["wavefront", "wavefront_size_for_tasks"]


def wavefront_size_for_tasks(target_tasks: int) -> int:
    """Smallest grid dimension ``n`` with ``n^2 >= target_tasks``."""
    n = 1
    while n * n < target_tasks:
        n += 1
    return n


def wavefront(
    n: int,
    rng: Optional[np.random.Generator] = None,
    ccr: float = 1.0,
    mean_comp: float = 1.0,
    distribution: str = "uniform",
) -> TaskGraph:
    """Build the ``n x n`` diamond wavefront graph."""
    if n < 1:
        raise ValueError(f"wavefront requires n >= 1, got {n}")

    def tid(i: int, j: int) -> int:
        return i * n + j

    names: List[str] = [f"cell({i},{j})" for i in range(n) for j in range(n)]
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(n):
            if i > 0:
                edges.append((tid(i - 1, j), tid(i, j)))
            if j > 0:
                edges.append((tid(i, j - 1), tid(i, j)))

    return build_weighted_graph(names, edges, rng, ccr, mean_comp, distribution)
