"""A101 trigger: blocking calls inside async def."""

import subprocess
import time


async def handler(conn):
    time.sleep(0.1)
    subprocess.run(["true"], check=False)
    payload = conn.recv()
    with open("state.json") as fh:
        text = fh.read()
    return payload, text
