"""A101 non-trigger: async-safe equivalents and thread offloading."""

import asyncio
import time


def read_state():
    # Synchronous helper: blocking here is fine, it runs in a worker thread.
    with open("state.json") as fh:
        return fh.read()


async def handler(loop, sock):
    await asyncio.sleep(0.1)
    data = await loop.sock_recv(sock, 4096)
    text = await asyncio.to_thread(read_state)
    return data, text


def warm_up():
    time.sleep(0.1)  # not async: blocking is allowed
