"""A102 trigger: module-level lock in a module that forks workers."""

import multiprocessing
import threading

_REGISTRY_LOCK = threading.Lock()
_STATE = {}


def start_worker(target):
    proc = multiprocessing.get_context("fork").Process(target=target)
    proc.start()
    return proc


def register(name, value):
    with _REGISTRY_LOCK:
        _STATE[name] = value
