"""A102 non-trigger: locks live on instances created after the fork decision."""

import multiprocessing
import threading


class WorkerPool:
    def __init__(self):
        self._lock = threading.Lock()
        self._workers = []

    def start_worker(self, target):
        proc = multiprocessing.get_context("fork").Process(target=target)
        proc.start()
        with self._lock:
            self._workers.append(proc)
        return proc
