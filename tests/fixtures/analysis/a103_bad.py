"""A103 trigger: SharedMemory(create=True) with no unlink path."""

from multiprocessing import shared_memory


def publish(blob):
    shm = shared_memory.SharedMemory(create=True, size=len(blob))
    shm.buf[: len(blob)] = blob
    return shm.name
