"""A103 non-trigger: try/finally unlink, and the finalizer-class discipline."""

import weakref
from multiprocessing import shared_memory


def roundtrip(blob):
    shm = shared_memory.SharedMemory(create=True, size=len(blob))
    try:
        shm.buf[: len(blob)] = blob
        return bytes(shm.buf[: len(blob)])
    finally:
        shm.close()
        shm.unlink()


class SegmentStore:
    def __init__(self):
        self._segments = {}
        self._finalizer = weakref.finalize(
            self, SegmentStore._unlink_all, self._segments
        )

    @staticmethod
    def _unlink_all(segments):
        for shm in segments.values():
            shm.close()
            shm.unlink()

    def register(self, name, blob):
        shm = shared_memory.SharedMemory(name=name, create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        self._segments[name] = shm
        return name

    def attach(self, name):
        # create=False (attach) needs no unlink discipline.
        return shared_memory.SharedMemory(name=name, create=False)
