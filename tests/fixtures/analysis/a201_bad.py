"""A201 trigger: mutating a frozen dataclass after construction."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Options:
    procs: int
    algo: str = "flb"


def tweak():
    opts = Options(procs=4)
    opts.procs = 8
    return opts


def backdoor(opts):
    object.__setattr__(opts, "algo", "heft")
    return opts
