"""A201 non-trigger: dataclasses.replace and __post_init__ only."""

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class Options:
    procs: int
    algo: str = "flb"
    label: str = ""

    def __post_init__(self):
        if not self.label:
            object.__setattr__(self, "label", f"{self.algo}-{self.procs}")


def tweak():
    opts = Options(procs=4)
    return dataclasses.replace(opts, procs=8)


@dataclass
class MutableOptions:
    procs: int


def tweak_mutable():
    opts = MutableOptions(procs=4)
    opts.procs = 8  # not frozen: assignment is fine
    return opts
