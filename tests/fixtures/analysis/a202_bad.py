"""A202 trigger: poking at TaskGraph private caches from outside repro.graph."""


def stash(graph, delays):
    graph._prop_cache[("pred_delay", 1.0)] = delays


def peek(graph):
    cached = graph._prop_cache.get("neg_bl_arr")
    return cached, graph._fingerprint
