"""A202 non-trigger: the public memo API and fingerprint accessor."""


def stash(graph, delays):
    graph.memo_set(("pred_delay", 1.0), delays)


def peek(graph):
    cached = graph.memo_get("neg_bl_arr")
    return cached, graph.fingerprint()
