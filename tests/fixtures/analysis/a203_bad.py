"""A203 trigger: mutating a TaskGraph after freeze() in the same scope."""

from repro.graph.taskgraph import TaskGraph


def build():
    graph = TaskGraph("demo")
    graph.add_task("a", 1.0)
    graph.freeze()
    graph.add_task("b", 2.0)
    graph.add_edge("a", "b", 0.5)
    return graph
