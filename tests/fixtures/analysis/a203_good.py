"""A203 non-trigger: all mutation happens before freeze()."""

from repro.graph.taskgraph import TaskGraph


def build():
    graph = TaskGraph("demo")
    graph.add_task("a", 1.0)
    graph.add_task("b", 2.0)
    graph.add_edge("a", "b", 0.5)
    graph.freeze()
    return graph


def extend(frozen):
    # Mutating a thawed copy is the sanctioned pattern.
    graph = frozen.copy(mutable=True)
    graph.add_task("c", 3.0)
    graph.freeze()
    return graph
