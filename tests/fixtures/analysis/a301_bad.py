"""A301 trigger: inline tuple cache keys instead of make_cache_key."""


def lookup(result_cache, fingerprint, procs, algo):
    hit = result_cache.get((fingerprint, procs, algo))
    if hit is not None:
        return hit
    return None


def store(inflight_cache, fingerprint, procs, value):
    inflight_cache[(fingerprint, procs)] = value
