"""A301 non-trigger: keys built once through the shared helper."""

from repro.resultcache import make_key


def lookup(result_cache, fingerprint, procs, algo, kernel):
    key = make_key(fingerprint, procs, algo, False, False, kernel)
    hit = result_cache.get(key)
    if hit is not None:
        return hit
    return None


def store(result_cache, key, value):
    result_cache.put(key, value)


def tuple_elsewhere(points):
    # Literal tuples are fine when the receiver is not a cache.
    points.append((1, 2))
    return points
