"""A302 trigger: metric names off the *_total / *_seconds conventions."""


def wire(registry):
    runs = registry.counter("batch_runs")
    depth = registry.histogram("serve_queue_depth")
    return runs, depth
