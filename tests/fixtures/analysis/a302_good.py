"""A302 non-trigger: conventional names, or explicit size buckets."""

_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0)


def wire(registry):
    runs = registry.counter("batch_runs_total")
    latency = registry.histogram("serve_request_seconds")
    depth = registry.histogram("serve_queue_depth", buckets=_DEPTH_BUCKETS)
    ready = registry.histogram("flb_ready_tasks", _DEPTH_BUCKETS)
    return runs, latency, depth, ready
