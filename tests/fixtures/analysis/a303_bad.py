"""A303 trigger: warn-once latch with no reset hook."""

import warnings

_fallback_warned = False


def maybe_warn():
    global _fallback_warned
    if not _fallback_warned:
        warnings.warn("falling back to the python kernel", stacklevel=2)
        _fallback_warned = True
