"""A303 non-trigger: the latch ships with a reset_* hook for tests."""

import warnings

_fallback_warned = False


def maybe_warn():
    global _fallback_warned
    if not _fallback_warned:
        warnings.warn("falling back to the python kernel", stacklevel=2)
        _fallback_warned = True


def reset_warnings():
    global _fallback_warned
    _fallback_warned = False
