"""A304 trigger: SchedulingOptions built with the legacy procs= shim."""

from repro.api import SchedulingOptions


def build_options():
    return SchedulingOptions(procs=8, validate=True)
