"""A304 non-trigger: the machine is spelled explicitly."""

from repro.api import SchedulingOptions
from repro.machine import MachineModel


def build_options():
    return SchedulingOptions(machine=MachineModel(8), validate=True)


def forward_options(procs=None):
    # procs=None is the field default, not the legacy integer shim.
    return SchedulingOptions(procs=None, machine=MachineModel(8))
