"""Tests for the static analysis plane (repro.analysis + `repro-sched analyze`).

Every A-rule is proven live against an adversarial fixture pair under
``tests/fixtures/analysis/``: the ``*_bad.py`` file must trigger the rule,
the ``*_good.py`` file must come back completely clean.  On top of the
rule matrix we exercise the engine plumbing (contexts, sorting, syntax
errors), the baseline suppression workflow, and the CLI exit-code contract.
"""

from __future__ import annotations

import json
import unittest
from pathlib import Path

from repro.analysis import (
    AnalysisReport,
    BaselineEntry,
    analyze_paths,
    apply_baseline,
    load_baseline,
    rule_catalogue,
    write_baseline,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

RULE_CODES = (
    "A101",
    "A102",
    "A103",
    "A201",
    "A202",
    "A203",
    "A301",
    "A302",
    "A303",
    "A304",
)


class TestRuleMatrix(unittest.TestCase):
    """Each rule fires on its bad fixture and stays quiet on the good one."""

    def _fixture(self, code: str, kind: str) -> str:
        path = FIXTURES / f"{code.lower()}_{kind}.py"
        self.assertTrue(path.is_file(), f"missing fixture {path}")
        return str(path)

    def test_bad_fixtures_trigger(self) -> None:
        for code in RULE_CODES:
            with self.subTest(code=code):
                report = analyze_paths([self._fixture(code, "bad")])
                self.assertIn(
                    code,
                    report.codes(),
                    f"{code} did not fire on its bad fixture: "
                    f"{[i.code for i in report.issues]}",
                )

    def test_good_fixtures_are_clean(self) -> None:
        for code in RULE_CODES:
            with self.subTest(code=code):
                report = analyze_paths([self._fixture(code, "good")])
                self.assertEqual(
                    report.issues,
                    (),
                    f"good fixture for {code} raised "
                    f"{[(i.code, i.line, i.message) for i in report.issues]}",
                )

    def test_every_registered_rule_has_fixtures(self) -> None:
        registered = {r.code for r in rule_catalogue()}
        self.assertEqual(registered, set(RULE_CODES))

    def test_issue_context_is_qualified(self) -> None:
        report = analyze_paths([self._fixture("A201", "bad")])
        contexts = {i.context for i in report.issues if i.code == "A201"}
        self.assertIn("tweak", contexts)
        self.assertIn("backdoor", contexts)


class TestEngine(unittest.TestCase):
    def test_directory_walk_skips_fixtures_dir(self) -> None:
        # Directory expansion must skip tests/fixtures (adversarial files),
        # otherwise CI's wide `analyze tests/` gate could never be clean.
        report = analyze_paths([str(Path(__file__).parent)])
        analyzed = set(report.file_paths)
        self.assertTrue(analyzed, "expected tests/ to contain analyzable files")
        for path in analyzed:
            self.assertNotIn("fixtures", Path(path).parts)

    def test_explicit_fixture_path_is_always_analyzed(self) -> None:
        report = analyze_paths([str(FIXTURES / "a303_bad.py")])
        self.assertEqual(report.files, 1)
        self.assertIn("A303", report.codes())

    def test_syntax_error_becomes_a000(self) -> None:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            broken = Path(tmp) / "broken.py"
            broken.write_text("def oops(:\n")
            report = analyze_paths([str(broken)])
            self.assertIn("A000", report.codes())
            self.assertFalse(report.ok(strict=False))

    def test_missing_explicit_file_raises(self) -> None:
        with self.assertRaises(FileNotFoundError):
            analyze_paths(["does-not-exist.py"])

    def test_issues_sorted_by_path_line(self) -> None:
        report = analyze_paths(
            [str(FIXTURES / "a101_bad.py"), str(FIXTURES / "a303_bad.py")]
        )
        keys = [(i.path, i.line, i.code) for i in report.issues]
        self.assertEqual(keys, sorted(keys))

    def test_strictness_promotes_warnings(self) -> None:
        # A303 is a WARNING: ok without --strict, failing with it.
        report = analyze_paths([str(FIXTURES / "a303_bad.py")])
        self.assertTrue(report.ok(strict=False))
        self.assertFalse(report.ok(strict=True))


class TestBaseline(unittest.TestCase):
    def _report(self) -> AnalysisReport:
        return analyze_paths([str(FIXTURES / "a303_bad.py")])

    def test_matching_entry_suppresses(self) -> None:
        report = self._report()
        issue = report.issues[0]
        entry = BaselineEntry(
            code=issue.code,
            path=issue.path,
            context=issue.context,
            reason="fixture exercises the latch on purpose",
        )
        filtered = apply_baseline(report, (entry,))
        self.assertEqual(filtered.issues, ())
        self.assertEqual(len(filtered.suppressed), 1)
        self.assertTrue(filtered.ok(strict=True))

    def test_wildcard_context_matches(self) -> None:
        report = self._report()
        issue = report.issues[0]
        entry = BaselineEntry(
            code=issue.code, path=issue.path, context="*", reason="any context"
        )
        filtered = apply_baseline(report, (entry,))
        self.assertEqual(filtered.issues, ())

    def test_stale_entry_fails_strict_only_when_in_scope(self) -> None:
        report = self._report()
        in_scope = BaselineEntry(
            code="A999",
            path=report.issues[0].path,
            context="nope",
            reason="never matches",
        )
        out_of_scope = BaselineEntry(
            code="A999",
            path="src/elsewhere/never_analyzed.py",
            context="*",
            reason="different file set",
        )
        filtered = apply_baseline(report, (in_scope, out_of_scope))
        # The in-scope stale entry is reported and fails --strict ...
        self.assertEqual(len(filtered.unused_baseline), 1)
        self.assertFalse(filtered.ok(strict=True))
        # ... while the out-of-scope entry is silently retained.
        self.assertEqual(filtered.unused_baseline[0].code, "A999")
        self.assertEqual(filtered.unused_baseline[0].path, in_scope.path)

    def test_load_rejects_empty_reason(self) -> None:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "baseline.json"
            path.write_text(
                json.dumps(
                    {
                        "version": 1,
                        "entries": [
                            {"code": "A101", "path": "x.py", "context": "*", "reason": ""}
                        ],
                    }
                )
            )
            with self.assertRaises(ValueError):
                load_baseline(path)

    def test_write_then_load_roundtrip(self) -> None:
        import tempfile

        report = self._report()
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "baseline.json"
            write_baseline(report, path)
            entries = load_baseline(path)
            self.assertEqual(len(entries), 1)
            filtered = apply_baseline(report, entries)
            self.assertEqual(filtered.issues, ())

    def test_report_json_shape(self) -> None:
        report = self._report()
        payload = report.to_dict(strict=True)
        self.assertIn("issues", payload)
        self.assertIn("ok", payload)
        self.assertIn("files", payload)
        self.assertTrue(payload["strict"])
        self.assertFalse(payload["ok"])
        issue = payload["issues"][0]
        for field in ("code", "severity", "message", "path", "line", "context"):
            self.assertIn(field, issue)
        # Must be JSON-serialisable end to end.
        json.dumps(payload)


class TestAnalyzeCli(unittest.TestCase):
    def test_clean_file_exits_zero(self) -> None:
        rc = cli_main(["analyze", str(FIXTURES / "a101_good.py")])
        self.assertEqual(rc, 0)

    def test_findings_exit_one(self) -> None:
        rc = cli_main(["analyze", str(FIXTURES / "a101_bad.py")])
        self.assertEqual(rc, 1)

    def test_warning_only_needs_strict_to_fail(self) -> None:
        bad = str(FIXTURES / "a303_bad.py")
        self.assertEqual(cli_main(["analyze", bad]), 0)
        self.assertEqual(cli_main(["analyze", bad, "--strict"]), 1)

    def test_missing_path_exits_two(self) -> None:
        rc = cli_main(["analyze", "does-not-exist.py"])
        self.assertEqual(rc, 2)

    def test_json_output_parses(self) -> None:
        import contextlib
        import io

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(
                ["analyze", str(FIXTURES / "a302_bad.py"), "--json", "--strict"]
            )
        self.assertEqual(rc, 1)
        payload = json.loads(buf.getvalue())
        codes = {i["code"] for i in payload["issues"]}
        self.assertIn("A302", codes)

    def test_baseline_flag_suppresses(self) -> None:
        import tempfile

        bad = str(FIXTURES / "a303_bad.py")
        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            rc = cli_main(["analyze", bad, "--write-baseline", str(baseline)])
            self.assertEqual(rc, 0)
            self.assertTrue(baseline.is_file())
            rc = cli_main(["analyze", bad, "--strict", "--baseline", str(baseline)])
            self.assertEqual(rc, 0)

    def test_malformed_baseline_exits_two(self) -> None:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            baseline = Path(tmp) / "baseline.json"
            baseline.write_text("{not json")
            rc = cli_main(
                ["analyze", str(FIXTURES / "a101_good.py"), "--baseline", str(baseline)]
            )
            self.assertEqual(rc, 2)

    def test_legacy_graph_mode_still_works(self) -> None:
        import contextlib
        import io

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = cli_main(["analyze", "--problem", "lu", "--tasks", "50"])
        self.assertEqual(rc, 0)
        self.assertIn("tasks", buf.getvalue())


class TestRepoIsClean(unittest.TestCase):
    def test_src_tree_strict_clean(self) -> None:
        """The acceptance gate: `analyze src/ --strict` finds nothing."""
        root = Path(__file__).parent.parent
        report = analyze_paths([str(root / "src")])
        baseline_path = root / "tools" / "analysis-baseline.json"
        entries = load_baseline(baseline_path) if baseline_path.is_file() else ()
        filtered = apply_baseline(report, entries)
        self.assertEqual(
            filtered.issues,
            (),
            f"src/ has unsuppressed findings: "
            f"{[(i.code, i.path, i.line) for i in filtered.issues]}",
        )
        self.assertTrue(filtered.ok(strict=True))


if __name__ == "__main__":
    unittest.main()
