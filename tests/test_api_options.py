"""The unified :class:`repro.SchedulingOptions` record and its
deprecation shims: legacy keywords must warn exactly once per call and
produce bit-identical schedules, all three entry points must accept the
same options object, and mixing the two styles must be rejected."""

import warnings

import pytest

from repro import BatchScheduler, MachineModel, MetricsRegistry, SchedulingOptions, schedule_graph
from repro.api import reset_options_deprecations
from repro.batch import BatchJob, schedule_many
from repro.util.rng import make_rng
from repro.workloads import lu, stencil


@pytest.fixture
def graph():
    return lu(6, make_rng(0), ccr=1.0)


class TestSchedulingOptions:
    def test_defaults(self):
        opts = SchedulingOptions()
        assert opts.procs is None
        assert opts.algorithm == "flb"
        assert opts.validate is False
        assert opts.certify is False
        assert opts.timeout is None
        assert opts.retries == 2
        assert opts.metrics is None

    def test_frozen(self):
        opts = SchedulingOptions()
        with pytest.raises(AttributeError):
            opts.procs = 4

    def test_replace(self):
        opts = SchedulingOptions(machine=MachineModel(4))
        other = opts.replace(algorithm="etf", certify=True)
        assert (other.procs, other.algorithm, other.certify) == (4, "etf", True)
        assert other.machine == MachineModel(4)
        assert opts.algorithm == "flb"  # original untouched

    @pytest.mark.parametrize("bad", [
        {"procs": 0},
        {"procs": -1},
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"retries": -1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SchedulingOptions(**bad)


class TestProcsFieldShim:
    """The legacy integer ``procs=`` field: warn-once, mirror, mixing."""

    def test_procs_field_warns_once_per_process(self):
        reset_options_deprecations()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SchedulingOptions(procs=4)
            SchedulingOptions(procs=8)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "machine=MachineModel" in str(deprecations[0].message)

    def test_procs_resolves_to_homogeneous_machine(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            opts = SchedulingOptions(procs=4)
        assert opts.machine == MachineModel(4)
        assert opts.procs == 4

    def test_machine_backfills_procs_mirror(self):
        opts = SchedulingOptions(machine=MachineModel(6))
        assert opts.procs == 6

    def test_mixing_procs_and_machine_raises(self):
        with pytest.raises(TypeError):
            SchedulingOptions(procs=4, machine=MachineModel(4))

    def test_replace_procs_rebuilds_machine(self):
        opts = SchedulingOptions(machine=MachineModel(4))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            other = opts.replace(procs=8)
        assert other.machine == MachineModel(8)

    def test_legacy_form_is_bit_identical(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = schedule_graph(graph, SchedulingOptions(procs=4))
        modern = schedule_graph(graph, SchedulingOptions(machine=MachineModel(4)))
        assert legacy.makespan == modern.makespan
        for task in range(graph.num_tasks):
            assert legacy.proc_of(task) == modern.proc_of(task)
            assert legacy.start_of(task) == modern.start_of(task)


class TestScheduleGraph:
    def test_options_positional_and_keyword_agree(self, graph):
        opts = SchedulingOptions(machine=MachineModel(4), algorithm="etf")
        a = schedule_graph(graph, opts)
        b = schedule_graph(graph, options=opts)
        assert a.makespan == b.makespan

    def test_legacy_kwargs_warn_exactly_once(self, graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            schedule_graph(graph, 4, algorithm="etf")
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "SchedulingOptions" in str(deprecations[0].message)

    def test_legacy_is_bit_identical(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = schedule_graph(graph, 4, algorithm="mcp")
        modern = schedule_graph(
            graph, SchedulingOptions(machine=MachineModel(4), algorithm="mcp")
        )
        assert legacy.makespan == modern.makespan
        for task in range(graph.num_tasks):
            assert legacy.proc_of(task) == modern.proc_of(task)
            assert legacy.start_of(task) == modern.start_of(task)

    def test_no_warning_for_options_form(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            schedule_graph(graph, SchedulingOptions(machine=MachineModel(4)))

    def test_mixing_styles_raises(self, graph):
        opts = SchedulingOptions(machine=MachineModel(4))
        with pytest.raises(TypeError):
            schedule_graph(graph, 4, options=opts)
        with pytest.raises(TypeError):
            schedule_graph(graph, opts, options=opts)

    def test_validate_and_certify(self, graph):
        s = schedule_graph(
            graph, SchedulingOptions(machine=MachineModel(4), certify=True)
        )
        assert s.makespan > 0

    def test_metrics_records_kernel_span(self, graph):
        reg = MetricsRegistry()
        schedule_graph(graph, SchedulingOptions(machine=MachineModel(4),
                                                metrics=reg, certify=True))
        names = [e["name"] for e in reg.events]
        assert names == ["sched.kernel", "verify.certify"]
        assert reg.histogram("sched_kernel_seconds").count == 1
        kernel = reg.events[0]["attrs"]
        assert kernel["tasks"] == graph.num_tasks
        assert kernel["makespan"] > 0


class TestScheduleMany:
    def test_accepts_options(self, graph):
        jobs = [BatchJob(graph=graph, procs=2), BatchJob(graph=graph, procs=4)]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            results = schedule_many(jobs, workers=1,
                                    options=SchedulingOptions(validate=True))
        assert all(r.ok for r in results)

    def test_legacy_kwargs_warn_once_and_match(self, graph):
        jobs = [BatchJob(graph=graph, procs=3)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = schedule_many(jobs, workers=1, timeout=30.0, validate=True)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        modern = schedule_many(
            jobs, workers=1,
            options=SchedulingOptions(timeout=30.0, validate=True),
        )
        assert legacy[0].makespan == modern[0].makespan

    def test_mixing_styles_raises(self, graph):
        with pytest.raises(TypeError):
            schedule_many([BatchJob(graph=graph, procs=2)], timeout=1.0,
                          options=SchedulingOptions())

    def test_metrics_kwarg_is_not_deprecated(self, graph):
        reg = MetricsRegistry()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            schedule_many([BatchJob(graph=graph, procs=2)], metrics=reg)
        assert reg.total("batch_jobs_total") == 1


class TestBatchScheduler:
    def test_accepts_options(self, graph):
        opts = SchedulingOptions(timeout=30.0, validate=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with BatchScheduler(workers=1, options=opts) as bs:
                results = bs.run([BatchJob(graph=graph, procs=2)])
        assert results[0].ok

    def test_legacy_ctor_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bs = BatchScheduler(workers=1, timeout=30.0, validate=True)
            bs.close()
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_legacy_properties_view_options(self):
        with BatchScheduler(workers=1,
                            options=SchedulingOptions(timeout=7.0)) as bs:
            assert bs.timeout == 7.0
            assert bs.validate is False
            bs.validate = True
            assert bs.options.validate is True
            bs.retries = 0
            assert bs.options.retries == 0

    def test_per_run_options_override(self, graph):
        with BatchScheduler(workers=1) as bs:
            results = bs.run(
                [BatchJob(graph=graph, procs=2)],
                options=SchedulingOptions(certify=True),
            )
            assert results[0].ok and results[0].certified

    def test_mixing_ctor_styles_raises(self):
        with pytest.raises(TypeError):
            BatchScheduler(workers=1, timeout=1.0, options=SchedulingOptions())

    def test_metrics_method_enables_and_returns_registry(self, graph):
        with BatchScheduler(workers=1) as bs:
            reg = bs.metrics()
            assert isinstance(reg, MetricsRegistry)
            assert bs.metrics() is reg  # stable across calls
            bs.run([BatchJob(graph=graph, procs=2)])
            assert reg.total("batch_jobs_total") == 1

    def test_metrics_true_creates_registry(self, graph):
        with BatchScheduler(workers=1, metrics=True) as bs:
            bs.run([BatchJob(graph=graph, procs=2)])
            assert bs.metrics().total("batch_jobs_total") == 1

    def test_metrics_registry_passed_in(self, graph):
        reg = MetricsRegistry()
        with BatchScheduler(workers=1, metrics=reg) as bs:
            assert bs.metrics() is reg


class TestCrossEntryPointAgreement:
    def test_same_options_same_schedule(self):
        graph = stencil(5, 4, make_rng(3), ccr=0.5)
        opts = SchedulingOptions(machine=MachineModel(4), algorithm="flb")
        direct = schedule_graph(graph, opts)
        (via_many,) = schedule_many([BatchJob(graph=graph, procs=4)], workers=1)
        with BatchScheduler(workers=1) as bs:
            (via_bs,) = bs.run([BatchJob(graph=graph, procs=4)])
        assert direct.makespan == via_many.makespan == via_bs.makespan
