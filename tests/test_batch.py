"""Batch scheduling front-end: serial/parallel agreement, error capture,
timeouts, sweep integration, and the ``repro-sched batch`` command."""

import math
import time

import pytest

from repro.batch import BatchJob, BatchResult, batch_throughput, schedule_many
from repro.bench.runner import run_sweep
from repro.bench.suite import paper_suite
from repro.cli import main
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import layered_random, lu, stencil


def _jobs(n_graph_seeds=2):
    jobs = []
    for seed in range(n_graph_seeds):
        g = lu(7, make_rng(seed), ccr=1.0)
        for procs in (2, 5):
            for algo in ("flb", "fcp", "mcp"):
                jobs.append(BatchJob(graph=g, procs=procs, algo=algo, tag=f"lu{seed}"))
    return jobs


# Module-level so forked worker processes resolve them after a monkeypatched
# SCHEDULERS entry is inherited through fork.
def _sleepy_scheduler(graph, num_procs=None, machine=None):
    time.sleep(2.0)
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _broken_scheduler(graph, num_procs=None, machine=None):
    raise RuntimeError("kaboom")


class TestSerial:
    def test_results_in_job_order_with_real_numbers(self):
        jobs = _jobs()
        results = schedule_many(jobs, workers=1)
        assert len(results) == len(jobs)
        for job, res in zip(jobs, results):
            assert res.ok and res.error is None
            assert (res.tag, res.algo, res.procs) == (job.tag, job.algo, job.procs)
            assert res.num_tasks == job.graph.num_tasks
            assert res.makespan > 0 and res.speedup > 0
            assert res.procs_used <= res.procs

    def test_matches_direct_scheduler_call(self):
        g = stencil(6, 5, make_rng(1), ccr=0.2)
        (res,) = schedule_many([BatchJob(graph=g, procs=4, algo="etf")])
        assert res.makespan == SCHEDULERS["etf"](g, 4).makespan

    def test_error_captured_not_raised(self):
        g = lu(5, make_rng(0))
        good = BatchJob(graph=g, procs=2)
        bad = BatchJob(graph=g, procs=2, algo="no-such-algo")
        results = schedule_many([good, bad], workers=1)
        assert results[0].ok
        assert not results[1].ok
        assert "no-such-algo" in results[1].error
        assert math.isnan(results[1].makespan)

    def test_validate_flag(self):
        g = lu(6, make_rng(0))
        (res,) = schedule_many([BatchJob(graph=g, procs=3)], validate=True)
        assert res.ok


class TestParallel:
    def test_parallel_matches_serial(self):
        jobs = _jobs()
        serial = schedule_many(jobs, workers=1)
        parallel = schedule_many(jobs, workers=3)
        assert [(r.tag, r.algo, r.procs, r.makespan, r.speedup) for r in serial] == [
            (r.tag, r.algo, r.procs, r.makespan, r.speedup) for r in parallel
        ]

    def test_error_captured_in_worker(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "broken", _broken_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="flb"),
            BatchJob(graph=g, procs=2, algo="broken"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "kaboom" in results[1].error

    def test_timeout_marks_only_overrunning_job(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "sleepy", _sleepy_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="sleepy"),
            BatchJob(graph=g, procs=2, algo="flb"),
            BatchJob(graph=g, procs=2, algo="fcp"),
        ]
        results = schedule_many(jobs, workers=2, timeout=0.3)
        assert not results[0].ok
        assert "timeout" in results[0].error
        assert results[0].error_kind == "timeout"
        assert results[1].ok and results[2].ok

    def test_throughput_helper(self):
        results = [
            BatchResult("a", "flb", 2, 100, 1.0, 1.0, 2, 0.1),
            BatchResult("b", "flb", 2, 50, 1.0, 1.0, 2, 0.1, error="boom"),
        ]
        assert batch_throughput(results, 2.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            batch_throughput(results, 0.0)


class TestSweepIntegration:
    def test_run_sweep_workers_matches_serial(self):
        instances = paper_suite(80, seeds=1, ccrs=(1.0,), problems=("lu", "stencil"))
        serial = run_sweep(instances, ["flb", "mcp"], (2, 4))
        parallel = run_sweep(instances, ["flb", "mcp"], (2, 4), workers=2)
        assert serial == parallel

    def test_run_sweep_workers_raises_on_job_failure(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "broken", _broken_scheduler)
        instances = paper_suite(60, seeds=1, ccrs=(1.0,), problems=("lu",))
        with pytest.raises(RuntimeError, match="broken"):
            run_sweep(instances, ["broken"], (2,), workers=2)

    def test_measure_time_stays_serial(self):
        # Timed sweeps ignore workers (measurements must not contend).
        instances = paper_suite(60, seeds=1, ccrs=(1.0,), problems=("lu",))
        records = run_sweep(
            instances, ["flb"], (2,), measure_time=True, time_repeats=1, workers=4
        )
        assert all(r.seconds is not None for r in records)


class TestCli:
    def test_batch_command(self, capsys):
        code = main(
            ["batch", "--problems", "lu", "stencil", "--procs", "2", "8",
             "--algos", "flb", "fcp", "--tasks", "120", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8 ok" in out
        assert "tasks/s" in out

    def test_batch_command_reports_failures(self, capsys):
        code = main(
            ["batch", "--problems", "lu", "--procs", "2", "--algos", "flb",
             "--tasks", "60", "--workers", "1", "--timeout", "30"]
        )
        assert code == 0  # sanity: valid run under a generous timeout passes
        err_code = None
        # An invalid job must flip the exit code without raising.  The parser
        # rejects unknown algos, so drive schedule_many's path via procs=0,
        # which the machine model rejects inside the worker.
        err_code = main(
            ["batch", "--problems", "lu", "--procs", "0", "--algos", "flb",
             "--tasks", "60", "--workers", "1"]
        )
        captured = capsys.readouterr()
        assert err_code == 1
        assert "FAILED" in captured.err
        assert "[scheduler-error]" in captured.err

    def test_batch_command_timeout_exit_code(self, capsys, monkeypatch):
        # Infrastructure failures (timeout / worker-died) exit 2, not 1.
        monkeypatch.setitem(SCHEDULERS, "sleepy", _sleepy_scheduler)
        code = main(
            ["batch", "--problems", "lu", "--procs", "2",
             "--algos", "sleepy", "flb", "--tasks", "60", "--workers", "2",
             "--timeout", "0.3", "--grace", "1.0"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "[timeout]" in captured.err
        assert "1/2 ok" in captured.out


def test_parallel_graph_roundtrip_is_exact():
    """Graphs cross the process boundary by pickle; placements must not
    drift (schedulers are deterministic, so equal makespans on re-run imply
    the pickled graph arrived bit-identical)."""
    g = layered_random(6, 5, make_rng(4), edge_density=0.3, ccr=5.0)
    direct = SCHEDULERS["flb"](g, 3).makespan
    (res,) = schedule_many(
        [BatchJob(graph=g, procs=3), BatchJob(graph=g, procs=3)], workers=2
    )[:1]
    assert res.makespan == direct
