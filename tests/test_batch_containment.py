"""Hung-worker containment, deadline accounting, and worker-death retry.

These are the failure-handling guarantees of the supervised batch layer
(``repro.batch`` on top of ``repro.workerpool``):

* a scheduler hung far past the timeout cannot delay ``schedule_many``
  beyond ``timeout + grace`` (its worker is killed, the slot replaced);
* the timeout clock starts at execution start, so jobs queued behind a
  slow job are never falsely expired, and queue wait vs run time are
  reported separately;
* a job whose worker dies (SIGKILL, OOM, segfault) is retried with
  backoff, and reported as ``worker-died`` only once retries are
  exhausted;
* failures carry the structured taxonomy on ``BatchResult.error_kind``.
"""

import os
import signal
import time

import pytest

from repro.batch import (
    ERROR_KINDS,
    INVALID_SCHEDULE,
    SCHEDULER_ERROR,
    TIMEOUT,
    WORKER_DIED,
    BatchJob,
    schedule_many,
)
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workerpool import MAX_BACKOFF, TaskOutcome, _retry_delay, run_supervised
from repro.workloads import lu

_DIE_MARKER_ENV = "REPRO_TEST_DIE_MARKER"


# Module-level so forked worker processes resolve them after a monkeypatched
# SCHEDULERS entry is inherited through fork.
def _hung_scheduler(graph, num_procs=None, machine=None):
    time.sleep(60.0)  # far beyond any test timeout: must be killed, not joined
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _slow_scheduler(graph, num_procs=None, machine=None):
    time.sleep(0.4)
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _die_once_scheduler(graph, num_procs=None, machine=None):
    marker = os.environ[_DIE_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _die_always_scheduler(graph, num_procs=None, machine=None):
    os.kill(os.getpid(), signal.SIGKILL)


def _invalid_scheduler(graph, num_procs=None, machine=None):
    schedule = SCHEDULERS["flb"](graph, num_procs, machine=machine)
    # Corrupt one placement so FT != ST + comp: validation must catch it.
    schedule._finish[0] = schedule._start[0] - 1.0
    return schedule


def _broken_scheduler(graph, num_procs=None, machine=None):
    raise RuntimeError("kaboom")


class TestHungWorkerContainment:
    def test_batch_returns_within_deadline_plus_grace(self, monkeypatch):
        """A worker hung in an effectively-infinite loop must not delay the
        batch past ``timeout + grace``; the other jobs must all complete.
        (The pre-supervision implementation hung here forever: the executor
        shutdown joined the runaway worker.)"""
        monkeypatch.setitem(SCHEDULERS, "hung", _hung_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="hung"),
            BatchJob(graph=g, procs=2, algo="flb"),
            BatchJob(graph=g, procs=2, algo="fcp"),
            BatchJob(graph=g, procs=2, algo="mcp"),
        ]
        t0 = time.perf_counter()
        results = schedule_many(jobs, workers=2, timeout=0.5, grace=1.0)
        wall = time.perf_counter() - t0
        assert wall < 0.5 + 1.0 + 0.5  # timeout + grace + test slack, << 60s
        assert len(results) == len(jobs)
        assert not results[0].ok
        assert results[0].error_kind == TIMEOUT
        assert "timeout" in results[0].error
        for res in results[1:]:
            assert res.ok, res.error
            assert res.makespan > 0

    def test_overrun_detected_promptly_not_at_2x(self, monkeypatch):
        """Deadline-aware polling: the hung job is killed close to its
        budget, not after up to double the budget (the old ``wait(...,
        timeout=timeout)`` rescan pattern)."""
        monkeypatch.setitem(SCHEDULERS, "hung", _hung_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="hung"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2, timeout=0.4, grace=1.0)
        assert results[0].error_kind == TIMEOUT
        # seconds is true execution time before the kill: at least the
        # budget, but well under 2x of it.
        assert 0.4 <= results[0].seconds < 0.7

    def test_all_workers_hung_still_contained(self, monkeypatch):
        """Even with every pool slot hung at once, the slots are killed and
        replaced and the queued jobs still complete."""
        monkeypatch.setitem(SCHEDULERS, "hung", _hung_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="hung"),
            BatchJob(graph=g, procs=2, algo="hung"),
            BatchJob(graph=g, procs=2, algo="flb"),
            BatchJob(graph=g, procs=2, algo="fcp"),
        ]
        t0 = time.perf_counter()
        results = schedule_many(jobs, workers=2, timeout=0.3, grace=1.0)
        wall = time.perf_counter() - t0
        assert wall < 5.0  # two hung slots at 0.3s each + replacements
        assert results[0].error_kind == TIMEOUT
        assert results[1].error_kind == TIMEOUT
        assert results[2].ok and results[3].ok


class TestDeadlineAccounting:
    def test_queued_jobs_not_falsely_expired(self, monkeypatch):
        """The budget clock starts at execution start: a fast job queued
        behind slow jobs whose combined wait exceeds the timeout must still
        succeed.  (The old implementation timed the queue wait from submit
        and expired it.)"""
        monkeypatch.setitem(SCHEDULERS, "slow", _slow_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="slow"),
            BatchJob(graph=g, procs=2, algo="slow"),
            BatchJob(graph=g, procs=2, algo="flb"),  # queued ~0.4s > timeout - run
        ]
        results = schedule_many(jobs, workers=2, timeout=0.5, grace=1.0)
        assert all(res.ok for res in results), [r.error for r in results]
        queued = results[2]
        # Queue wait and run time are attributed separately.
        assert queued.queue_seconds >= 0.2
        assert queued.seconds < 0.2

    def test_inline_path_reports_zero_queue_wait(self):
        g = lu(5, make_rng(0))
        (res,) = schedule_many([BatchJob(graph=g, procs=2)], workers=1)
        assert res.ok
        assert res.queue_seconds == 0.0
        assert res.attempts == 1

    def test_parameter_validation(self):
        g = lu(5, make_rng(0))
        jobs = [BatchJob(graph=g, procs=2)]
        with pytest.raises(ValueError):
            schedule_many(jobs, workers=2, timeout=-1.0)
        with pytest.raises(ValueError):
            schedule_many(jobs, workers=2, grace=0.0)
        with pytest.raises(ValueError):
            schedule_many(jobs, workers=2, retries=-1)
        with pytest.raises(ValueError):
            schedule_many(jobs, workers=2, backoff=-0.1)


class TestWorkerDeathRetry:
    def test_killed_worker_is_retried_and_succeeds(self, monkeypatch, tmp_path):
        monkeypatch.setenv(_DIE_MARKER_ENV, str(tmp_path / "died.marker"))
        monkeypatch.setitem(SCHEDULERS, "die-once", _die_once_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="die-once"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2, retries=2, backoff=0.05)
        assert results[0].ok, results[0].error
        assert results[0].attempts == 2  # died once, succeeded on the retry
        assert results[1].ok

    def test_retries_exhausted_reports_worker_died(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "die-always", _die_always_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="die-always"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2, retries=1, backoff=0.01)
        assert not results[0].ok
        assert results[0].error_kind == WORKER_DIED
        assert results[0].attempts == 2  # initial run + 1 retry
        assert "died" in results[0].error
        assert results[1].ok

    def test_no_retries_fails_on_first_death(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "die-always", _die_always_scheduler)
        g = lu(5, make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="die-always"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2, retries=0)
        assert results[0].error_kind == WORKER_DIED
        assert results[0].attempts == 1


class TestErrorTaxonomy:
    def test_scheduler_error_kind(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "broken", _broken_scheduler)
        g = lu(5, make_rng(0))
        for workers in (1, 2):
            results = schedule_many(
                [BatchJob(graph=g, procs=2, algo="broken"),
                 BatchJob(graph=g, procs=2, algo="flb")],
                workers=workers,
            )
            assert results[0].error_kind == SCHEDULER_ERROR
            assert "kaboom" in results[0].error
            assert results[1].ok

    def test_invalid_schedule_kind(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "invalid", _invalid_scheduler)
        g = lu(5, make_rng(0))
        for workers in (1, 2):
            results = schedule_many(
                [BatchJob(graph=g, procs=2, algo="invalid"),
                 BatchJob(graph=g, procs=2, algo="flb")],
                workers=workers, validate=True,
            )
            assert results[0].error_kind == INVALID_SCHEDULE
            assert results[1].ok

    def test_without_validate_bad_schedule_passes_through(self, monkeypatch):
        # The taxonomy distinguishes "scheduler raised" from "schedule
        # failed validation" — the latter only exists under validate=True.
        monkeypatch.setitem(SCHEDULERS, "invalid", _invalid_scheduler)
        g = lu(5, make_rng(0))
        (res,) = schedule_many([BatchJob(graph=g, procs=2, algo="invalid")])
        assert res.ok  # nobody asked for validation

    def test_kinds_are_the_documented_taxonomy(self):
        assert set(ERROR_KINDS) == {
            "timeout", "worker-died", "scheduler-error", "invalid-schedule"
        }
        assert (TIMEOUT, WORKER_DIED, SCHEDULER_ERROR, INVALID_SCHEDULE) == ERROR_KINDS


# -- the generic pool, exercised directly -----------------------------------

def _square(x):
    return x * x


def _sleep_then_square(x):
    time.sleep(x)
    return x * x


def _raise_runner(x):
    raise ValueError(f"bad item {x}")


def _die_once_runner(x):
    marker = os.environ[_DIE_MARKER_ENV]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


class TestWorkerPool:
    def test_outcomes_in_order(self):
        outcomes = run_supervised([1, 2, 3, 4], _square, workers=2)
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        assert all(o.completed and o.attempts == 1 for o in outcomes)

    def test_runner_exception_is_raised_outcome(self):
        outcomes = run_supervised([7], _raise_runner, workers=2)
        # workers is clamped to len(items); a single item still goes
        # through the supervised path when workers >= 1.
        assert not outcomes[0].completed
        assert outcomes[0].kind == "raised"
        assert "bad item 7" in outcomes[0].error

    def test_timeout_only_kills_overrunner(self):
        outcomes = run_supervised(
            [1.5, 0.0, 0.0], _sleep_then_square, workers=2,
            timeout=0.3, grace=0.5,
        )
        assert outcomes[0].kind == "timeout"
        assert outcomes[1].completed and outcomes[2].completed

    def test_empty_items(self):
        assert run_supervised([], _square, workers=4) == []


class TestRetryBackoffClamp:
    """Regression: the death-retry delay ``backoff * 2**(attempt-1)`` had
    no ceiling — a generous ``retries`` budget scheduled retries minutes
    (or, via float overflow, astronomically far) into the future."""

    def test_retry_delay_doubles_then_clamps(self):
        assert _retry_delay(0.1, 1, 30.0) == pytest.approx(0.1)
        assert _retry_delay(0.1, 2, 30.0) == pytest.approx(0.2)
        assert _retry_delay(0.1, 3, 30.0) == pytest.approx(0.4)
        assert _retry_delay(0.1, 20, 30.0) == 30.0

    def test_huge_attempt_counts_do_not_overflow(self):
        # 2**(10**6) overflows float pow; the exponent clamp must keep the
        # arithmetic finite and the result at the ceiling.
        delay = _retry_delay(0.1, 10**6, MAX_BACKOFF)
        assert delay == MAX_BACKOFF

    def test_max_backoff_beats_a_large_base(self):
        assert _retry_delay(10.0, 5, 0.5) == 0.5

    def test_clamp_is_honored_end_to_end(self, tmp_path, monkeypatch):
        """With a huge base backoff but a tight ``max_backoff``, a killed
        worker's retry must run promptly — and the supervisor must wake for
        the retry due-time instead of sleeping toward the kill deadline."""
        monkeypatch.setenv(_DIE_MARKER_ENV, str(tmp_path / "died"))
        t0 = time.perf_counter()
        outcomes = run_supervised(
            [3], _die_once_runner, workers=1, retries=2,
            backoff=120.0, max_backoff=0.2, timeout=30.0, grace=1.0,
        )
        wall = time.perf_counter() - t0
        assert outcomes[0].completed and outcomes[0].value == 9
        assert outcomes[0].attempts == 2
        # Far below both the uncapped backoff and the kill deadline.
        assert wall < 10.0

    def test_invalid_max_backoff_rejected(self):
        with pytest.raises(ValueError):
            run_supervised([1], _square, workers=1, max_backoff=0.0)

    def test_outcome_dataclass_defaults(self):
        o = TaskOutcome("completed", value=5)
        assert o.completed and o.seconds == 0.0 and o.attempts == 1
