"""The zero-copy graph plane end to end: keyed dispatch equivalence, the
inline-pickle fallback, result-cache serving semantics, BatchScheduler
lifecycle, segment-leak guarantees, CLI stats, and the ``perfgate``
throughput floors (shared-graph sweep vs. the old inline-pickle path)."""

import os
import time

import pytest

from repro import graphstore
from repro.batch import (
    INLINE_ONESHOT_MAX,
    BatchJob,
    BatchScheduler,
    batch_stats,
    schedule_many,
)
from repro.cli import main
from repro.graphstore import GraphStoreError
from repro.machine.model import MachineModel
from repro.resultcache import ResultCache
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import lu, lu_size_for_tasks, stencil

_HAS_DEV_SHM = os.path.isdir("/dev/shm")


def _summaries(results):
    return [
        (r.tag, r.algo, r.procs, r.num_tasks, r.makespan, r.speedup, r.procs_used)
        for r in results
    ]


# Module-level so forked workers resolve it after monkeypatching SCHEDULERS.
def _sleepy_scheduler(graph, num_procs=None, machine=None):
    time.sleep(30.0)
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _sweep_jobs(graph, procs=(2, 3, 5), algos=("flb", "fcp", "mcp")):
    return [
        BatchJob(graph=graph, procs=p, algo=a, tag=f"{p}/{a}")
        for p in procs
        for a in algos
    ]


class TestKeyedDispatch:
    def test_keyed_matches_inline_bit_identically(self):
        g = lu(8, make_rng(0), ccr=1.0)
        jobs = _sweep_jobs(g)
        inline = schedule_many(jobs, workers=2, share_graphs=False)
        keyed = schedule_many(jobs, workers=2, share_graphs=True)
        assert all(r.ok for r in keyed)
        assert _summaries(inline) == _summaries(keyed)

    def test_repeated_graph_is_shared_once(self):
        g = lu(8, make_rng(0))
        stats = {}
        schedule_many(_sweep_jobs(g), workers=2, stats_out=stats)
        assert stats["shared_graphs"] == 1
        assert stats["keyed_jobs"] == stats["dispatched"]
        assert stats["inline_graph_jobs"] == 0
        assert stats["shared_bytes"] > 0

    def test_small_oneshot_graph_stays_inline(self):
        graphs = [lu(5, make_rng(seed)) for seed in range(3)]
        assert all(g.num_tasks + g.num_edges < INLINE_ONESHOT_MAX for g in graphs)
        jobs = [BatchJob(graph=g, procs=2, algo="flb", tag=str(i))
                for i, g in enumerate(graphs)]
        stats = {}
        results = schedule_many(jobs, workers=2, stats_out=stats)
        assert all(r.ok for r in results)
        assert stats["shared_graphs"] == 0
        assert stats["inline_graph_jobs"] == 3

    def test_share_graphs_true_forces_sharing(self):
        jobs = [BatchJob(graph=lu(5, make_rng(seed)), procs=2, tag=str(seed))
                for seed in range(2)]
        stats = {}
        results = schedule_many(jobs, workers=2, share_graphs=True, stats_out=stats)
        assert all(r.ok for r in results)
        assert stats["shared_graphs"] == 2

    def test_large_oneshot_graph_is_shared(self):
        g = lu(lu_size_for_tasks(400), make_rng(0))
        assert g.num_tasks + g.num_edges >= INLINE_ONESHOT_MAX
        stats = {}
        (res,) = schedule_many(
            [BatchJob(graph=g, procs=2), BatchJob(graph=g, procs=4)],
            workers=2, stats_out=stats,
        )[:1]
        assert res.ok
        assert stats["shared_graphs"] == 1

    def test_graph_key_job_roundtrip(self):
        g = stencil(6, 5, make_rng(1), ccr=0.2)
        direct = SCHEDULERS["etf"](g, 4).makespan
        with BatchScheduler(workers=2) as bs:
            key = bs.register(g)
            out = bs.run([
                BatchJob(graph=None, procs=4, algo="etf", graph_key=key, tag="k"),
                BatchJob(graph=None, procs=4, algo="flb", graph_key=key),
            ])
        assert all(r.ok for r in out)
        assert out[0].makespan == direct
        assert out[0].num_tasks == g.num_tasks

    def test_unknown_graph_key_is_job_error_not_batch_poison(self):
        g = lu(5, make_rng(0))
        results = schedule_many(
            [
                BatchJob(graph=None, procs=2, graph_key="repro_tg_bogus_0_0"),
                BatchJob(graph=g, procs=2),
            ],
            workers=2,
        )
        assert not results[0].ok
        assert "does not exist" in results[0].error
        assert results[1].ok

    def test_coalescing_duplicate_jobs(self):
        # Within-batch duplicates are part of the caching plane: with a
        # cache in play, identical (graph, procs, algo) requests dispatch
        # once and share the outcome.
        g = lu(8, make_rng(0))
        jobs = [BatchJob(graph=g, procs=2, algo="flb", tag=f"req{i}")
                for i in range(5)]
        stats = {}
        results = schedule_many(jobs, workers=2, cache=ResultCache(8),
                                stats_out=stats)
        assert stats["dispatched"] == 1
        assert stats["coalesced"] == 4
        assert [r.tag for r in results] == [f"req{i}" for i in range(5)]
        assert len({r.makespan for r in results}) == 1
        assert sum(1 for r in results if r.cached) == 4

    def test_no_coalescing_without_cache(self):
        # Without a cache every job dispatches individually — plain
        # schedule_many keeps per-job timing/queue accounting.
        g = lu(8, make_rng(0))
        jobs = [BatchJob(graph=g, procs=2, algo="flb", tag=str(i))
                for i in range(3)]
        stats = {}
        results = schedule_many(jobs, workers=2, stats_out=stats)
        assert stats["dispatched"] == 3 and stats["coalesced"] == 0
        assert not any(r.cached for r in results)

    def test_machine_jobs_coalesce_by_fingerprint(self):
        # Custom machines used to bypass the cache entirely; the machine
        # fingerprint is now part of the key, so identical machine jobs
        # coalesce while distinct machines never share a dispatch.
        g = lu(6, make_rng(0))
        machine = MachineModel(3, comm_scale=2.0)
        jobs = [BatchJob(graph=g, procs=3, machine=machine, tag=str(i))
                for i in range(2)]
        jobs.append(BatchJob(graph=g, machine=MachineModel(3), tag="plain"))
        stats = {}
        results = schedule_many(jobs, workers=2, cache=ResultCache(8),
                                stats_out=stats)
        assert all(r.ok for r in results)
        assert stats["dispatched"] == 2 and stats["coalesced"] == 1
        assert results[0].makespan == results[1].makespan
        assert results[2].makespan != results[0].makespan


class TestResultCache:
    def test_second_batch_hits_without_dispatch(self):
        g = lu(8, make_rng(0))
        jobs = _sweep_jobs(g)
        cache = ResultCache(64)
        first = schedule_many(jobs, workers=2, cache=cache)
        stats = {}
        second = schedule_many(jobs, workers=2, cache=cache, stats_out=stats)
        assert stats["dispatched"] == 0  # O(1) hits, no worker touched
        assert stats["cache_hits"] == len(jobs)
        assert all(r.cached and r.seconds == 0.0 and r.queue_seconds == 0.0
                   for r in second)
        assert not any(r.cached for r in first)
        assert _summaries(first) == _summaries(second)
        assert cache.hits == len(jobs) and cache.misses == len(jobs)

    def test_cache_works_on_serial_path(self):
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        (r1,) = schedule_many([BatchJob(graph=g, procs=3)], workers=1, cache=cache)
        (r2,) = schedule_many([BatchJob(graph=g, procs=3)], workers=1, cache=cache)
        assert not r1.cached and r2.cached
        assert r2.makespan == r1.makespan

    def test_validate_flag_is_part_of_the_key(self):
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        schedule_many([BatchJob(graph=g, procs=3)], cache=cache)
        (res,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                               validate=True)
        assert not res.cached  # different validate -> different key
        assert len(cache) == 2

    def test_kernel_is_part_of_the_key(self):
        """Regression: an explicit ``kernel="array"`` run used to be served
        a ``kernel="object"`` cached entry (the key omitted the kernel), so
        ``BatchResult.kernel`` lied about which backend produced it."""
        from repro.api import SchedulingOptions

        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        (obj,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                               options=SchedulingOptions(kernel="object"))
        (arr,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                               options=SchedulingOptions(kernel="array"))
        assert obj.kernel == "object" and not obj.cached
        assert arr.kernel == "array"
        assert not arr.cached  # different kernel -> different key
        assert len(cache) == 2
        (hit,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                               options=SchedulingOptions(kernel="array"))
        assert hit.cached and hit.kernel == "array"  # never misreported

    def test_auto_and_its_resolution_share_one_entry(self):
        """Keys carry the *resolved* kernel: ``auto`` and whatever it
        resolves to on this host must hit the same cache entry."""
        from repro.api import SchedulingOptions, resolve_job_kernel

        resolved = resolve_job_kernel("flb", "auto")
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        (first,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                                 options=SchedulingOptions(kernel="auto"))
        (second,) = schedule_many([BatchJob(graph=g, procs=3)], cache=cache,
                                  options=SchedulingOptions(kernel=resolved))
        assert first.kernel == resolved
        assert second.cached and second.kernel == resolved
        assert len(cache) == 1

    def test_cache_keys_require_a_resolved_kernel(self):
        from repro.resultcache import make_key

        with pytest.raises(ValueError, match="resolved"):
            make_key("fp", 3, "flb", False, False, "auto")

    def test_machine_jobs_cache_under_their_fingerprint(self):
        # Custom machines used to bypass the cache; they now key on the
        # machine fingerprint, so a repeat is a hit while a different
        # model for the same procs never shares the entry.
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        job = BatchJob(graph=g, procs=3, machine=MachineModel(3, latency=1.0))
        (first,) = schedule_many([job], cache=cache)
        (again,) = schedule_many([job], cache=cache)
        assert len(cache) == 1
        assert again.cached and again.makespan == first.makespan
        other = BatchJob(graph=g, machine=MachineModel(3, latency=2.0))
        (miss,) = schedule_many([other], cache=cache)
        assert not miss.cached
        assert len(cache) == 2

    def test_failures_are_not_cached(self):
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        bad = BatchJob(graph=g, procs=2, algo="no-such-algo")
        schedule_many([bad], cache=cache)
        assert len(cache) == 0
        (again,) = schedule_many([bad], cache=cache)
        assert not again.ok and not again.cached

    def test_eviction_is_bounded_and_counted(self):
        cache = ResultCache(2)
        graphs = [lu(5, make_rng(seed)) for seed in range(4)]
        for g in graphs:
            schedule_many([BatchJob(graph=g, procs=2)], cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 2
        assert cache.stats()["capacity"] == 2

    def test_zero_capacity_disables(self):
        g = lu(5, make_rng(0))
        cache = ResultCache(0)
        schedule_many([BatchJob(graph=g, procs=2)], cache=cache)
        schedule_many([BatchJob(graph=g, procs=2)], cache=cache)
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_batch_stats_reports_counters(self):
        g = lu(6, make_rng(0))
        cache = ResultCache(8)
        results = schedule_many(_sweep_jobs(g, procs=(2,), algos=("flb", "fcp")),
                                cache=cache)
        stats = batch_stats(results, 0.5, cache)
        assert stats["jobs"] == 2 and stats["ok"] == 2
        assert stats["cache_misses"] == 2 and stats["cache_hits"] == 0
        assert stats["tasks_per_s"] > 0 and stats["jobs_per_s"] == pytest.approx(4.0)


class TestBatchScheduler:
    def test_serving_loop_accumulates_stats(self):
        g = lu(8, make_rng(0))
        jobs = _sweep_jobs(g, procs=(2, 4), algos=("flb",))
        with BatchScheduler(workers=2) as bs:
            first = bs.run(jobs)
            second = bs.run(jobs)
            stats = bs.stats()
        assert _summaries(first) == _summaries(second)
        assert all(r.cached for r in second)
        assert stats["jobs"] == 4
        assert stats["cache_hits"] == 2
        assert stats["results"] == 4 and stats["failed"] == 0
        assert stats["store_graphs"] == 1 and stats["store_bytes"] > 0

    def test_closed_scheduler_refuses_runs(self):
        bs = BatchScheduler(workers=1)
        bs.close()
        with pytest.raises(GraphStoreError, match="closed"):
            bs.run([BatchJob(graph=lu(5, make_rng(0)), procs=2)])

    def test_register_is_idempotent(self):
        g = lu(6, make_rng(0))
        with BatchScheduler() as bs:
            assert bs.register(g) == bs.register(g.copy())


@pytest.mark.skipif(not _HAS_DEV_SHM, reason="requires /dev/shm (Linux)")
class TestNoLeakedSegments:
    def test_schedule_many_unlinks_on_return(self):
        before = graphstore.list_segments()
        g = lu(lu_size_for_tasks(300), make_rng(0))
        results = schedule_many(_sweep_jobs(g), workers=2)
        assert all(r.ok for r in results)
        assert graphstore.list_segments() == before

    def test_timeout_sigkill_does_not_leak(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "sleepy", _sleepy_scheduler)
        before = graphstore.list_segments()
        g = lu(lu_size_for_tasks(300), make_rng(0))
        jobs = [
            BatchJob(graph=g, procs=2, algo="sleepy"),
            BatchJob(graph=g, procs=2, algo="flb"),
        ]
        results = schedule_many(jobs, workers=2, timeout=0.3, grace=1.0)
        assert results[0].error_kind == "timeout"
        assert results[1].ok
        assert graphstore.list_segments() == before

    def test_batchscheduler_exit_unlinks(self):
        before = graphstore.list_segments()
        with BatchScheduler(workers=2) as bs:
            bs.register(lu(lu_size_for_tasks(300), make_rng(0)))
            assert graphstore.list_segments() != before
        assert graphstore.list_segments() == before


class TestCli:
    def test_batch_stats_flag(self, capsys):
        code = main(
            ["batch", "--problems", "lu", "--procs", "2", "4", "--algos",
             "flb", "fcp", "--tasks", "120", "--workers", "2", "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 ok" in out
        assert "graph plane:" in out
        assert "result cache:" in out

    def test_batch_no_share_still_correct(self, capsys):
        code = main(
            ["batch", "--problems", "lu", "--procs", "2", "--algos", "flb",
             "--tasks", "120", "--workers", "2", "--no-share", "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 keyed" in out


def _best_jobs_per_s(fn, jobs, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return jobs / best


def _bench_tasks(default=300):
    try:
        return int(os.environ.get("REPRO_BENCH_TASKS", default))
    except ValueError:
        return default


@pytest.mark.perfgate
def test_shared_graph_sweep_not_slower_than_inline():
    """Smoke floor for the graph plane itself (no result cache): a
    repeated-graph sweep dispatched by key must not be slower than the old
    inline-pickle dispatch, and must return bit-identical summaries.

    The transport win scales with graph size (register/attach overhead is
    fixed, per-job pickle cost is linear), so below ~500 tasks the two paths
    are within noise of each other.  This check therefore runs at >= 800
    tasks regardless of REPRO_BENCH_TASKS, where the keyed path wins by
    ~1.2x and a strict floor stays meaningful (see
    results/batch_payload.txt)."""
    g = lu(lu_size_for_tasks(max(_bench_tasks(), 800)), make_rng(0), ccr=1.0)
    jobs = [BatchJob(graph=g, procs=p, algo=a, tag=f"{p}/{a}")
            for p in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
            for a in ("flb", "fcp")]
    assert len(jobs) >= 20
    captured = {}

    def run_inline():
        captured["inline"] = schedule_many(jobs, workers=2, share_graphs=False)

    def run_keyed():
        captured["keyed"] = schedule_many(jobs, workers=2, share_graphs=True)

    inline_jps = _best_jobs_per_s(run_inline, len(jobs))
    keyed_jps = _best_jobs_per_s(run_keyed, len(jobs))
    assert _summaries(captured["inline"]) == _summaries(captured["keyed"])
    assert keyed_jps >= inline_jps, (keyed_jps, inline_jps)


@pytest.mark.perfgate
def test_graph_plane_serving_beats_inline_2x():
    """The acceptance floor: serving a repeated-graph sweep (1 graph x >= 20
    jobs per pass, several passes) through the graph plane + result cache
    achieves >= 2x the jobs/s of the old per-job inline-pickle path, with
    bit-identical summaries; cache hits return in O(1) without dispatching
    a worker."""
    g = lu(lu_size_for_tasks(_bench_tasks()), make_rng(0), ccr=1.0)
    jobs = [BatchJob(graph=g, procs=p, algo=a, tag=f"{p}/{a}")
            for p in (2, 3, 4, 6, 8, 12, 16, 24, 32, 48)
            for a in ("flb", "fcp")]
    assert len(jobs) >= 20
    passes = 4
    captured = {}

    def run_old():
        captured["old"] = [
            schedule_many(jobs, workers=2, share_graphs=False)
            for _ in range(passes)
        ]

    def run_new():
        with BatchScheduler(workers=2) as bs:
            out = [bs.run(jobs) for _ in range(passes)]
            captured["stats"] = bs.stats()
        captured["new"] = out

    old_jps = _best_jobs_per_s(run_old, passes * len(jobs))
    new_jps = _best_jobs_per_s(run_new, passes * len(jobs))

    for old_pass, new_pass in zip(captured["old"], captured["new"]):
        assert _summaries(old_pass) == _summaries(new_pass)
    # Passes 2..N are pure cache hits: answered without dispatching.
    assert all(r.cached for batch in captured["new"][1:] for r in batch)
    assert captured["stats"]["dispatched"] == len(jobs)
    assert captured["stats"]["cache_hits"] == (passes - 1) * len(jobs)
    assert new_jps >= 2.0 * old_jps, (new_jps, old_jps)
