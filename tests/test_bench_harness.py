"""Tests for the experiment harness (suite, runner, experiment reproductions)
at miniature scale — the full-scale runs live in benchmarks/ and
EXPERIMENTS.md."""

import pytest

from repro.bench import (
    PAPER_CCRS,
    PAPER_PROBLEMS,
    PAPER_PROCS,
    group_mean,
    paper_suite,
    run_ablation_llb,
    run_ablation_ties,
    run_fig2,
    run_fig3,
    run_fig4,
    run_robustness,
    run_scaling,
    run_sweep,
    run_table1,
)
from repro.graph import ccr as graph_ccr


class TestSuite:
    def test_paper_defaults(self):
        assert PAPER_PROBLEMS == ("lu", "laplace", "stencil", "fft")
        assert PAPER_CCRS == (0.2, 5.0)
        assert PAPER_PROCS == (2, 4, 8, 16, 32)

    def test_suite_composition(self):
        suite = paper_suite(150, seeds=2)
        assert len(suite) == 4 * 2 * 2
        labels = {i.label for i in suite}
        assert len(labels) == len(suite)

    def test_sizes_and_ccr(self):
        for inst in paper_suite(150, seeds=1):
            assert inst.graph.num_tasks >= 150
            assert graph_ccr(inst.graph) == pytest.approx(inst.ccr, rel=1e-9)

    def test_seeds_differ(self):
        a, b = paper_suite(120, seeds=2, problems=("fft",), ccrs=(1.0,))
        assert a.graph.comps != b.graph.comps

    def test_suite_deterministic(self):
        s1 = paper_suite(120, seeds=1, problems=("lu",))
        s2 = paper_suite(120, seeds=1, problems=("lu",))
        assert s1[0].graph.comps == s2[0].graph.comps

    def test_bad_args(self):
        with pytest.raises(ValueError):
            paper_suite(100, seeds=0)
        with pytest.raises(ValueError):
            paper_suite(100, problems=("bogus",))


class TestRunner:
    def test_sweep_records(self):
        suite = paper_suite(100, seeds=1, problems=("fft",))
        records = run_sweep(suite, ["flb", "mcp"], (2, 4), validate=True)
        assert len(records) == len(suite) * 2 * 2
        for rec in records:
            assert rec.makespan > 0
            assert rec.seconds is None

    def test_sweep_with_timing(self):
        suite = paper_suite(100, seeds=1, problems=("fft",), ccrs=(1.0,))
        records = run_sweep(suite, ["flb"], (2,), measure_time=True, time_repeats=1)
        assert all(r.seconds is not None and r.seconds > 0 for r in records)

    def test_sweep_rejects_unknown(self):
        suite = paper_suite(100, seeds=1, problems=("fft",), ccrs=(1.0,))
        with pytest.raises(ValueError):
            run_sweep(suite, ["bogus"], (2,))

    def test_group_mean(self):
        suite = paper_suite(100, seeds=2, problems=("fft",), ccrs=(1.0,))
        records = run_sweep(suite, ["flb"], (2,))
        means = group_mean(records, key=lambda r: (r.algorithm,), value=lambda r: r.speedup)
        assert set(means) == {("flb",)}
        assert means[("flb",)] > 1.0


class TestExperimentReports:
    def test_table1(self):
        report = run_table1()
        assert report.experiment == "table1"
        assert report.data["makespan"] == 14.0
        assert len(report.data["placements"]) == 8

    def test_fig2_small(self):
        report = run_fig2(120, seeds=1, procs=(2, 4), algorithms=("flb", "mcp"), time_repeats=1)
        assert "Fig. 2" in report.text
        assert set(report.data["mean_ms"]) == {"flb", "mcp"}
        assert all(v > 0 for vs in report.data["mean_ms"].values() for v in vs)

    def test_fig3_small(self):
        report = run_fig3(120, seeds=1, procs=(1, 4), problems=("fft", "stencil"))
        series = report.data["speedup"]
        for ccr in PAPER_CCRS:
            for problem in ("fft", "stencil"):
                sp = series[ccr][problem]
                assert sp[0] == pytest.approx(1.0, rel=1e-6)
                assert sp[1] > 1.0

    def test_fig4_small(self):
        report = run_fig4(120, seeds=1, procs=(2, 4), problems=("stencil",))
        nsl = report.data["nsl"][("stencil", 0.2)]
        assert nsl["mcp"] == [pytest.approx(1.0)] * 2
        for algo, series in nsl.items():
            for value in series:
                assert 0.3 < value < 3.0

    def test_fig4_adds_mcp_if_missing(self):
        report = run_fig4(
            120, seeds=1, procs=(2,), problems=("fft",), algorithms=("flb",)
        )
        assert "mcp" in report.data["nsl"][("fft", 0.2)]

    def test_scaling_small(self):
        report = run_scaling(sizes=(100, 200), procs=4, time_repeats=1)
        assert report.data["sizes"] == [100, 200]
        assert all(v > 0 for v in report.data["ms"]["flb"])

    def test_ablation_ties_small(self):
        report = run_ablation_ties(100, seeds=1, procs=(2,))
        assert 0.5 < report.data["mean"] < 1.5
        assert "FLB/ETF" in report.text

    def test_ablation_llb_small(self):
        report = run_ablation_llb(100, seeds=1, procs=(2,))
        assert report.data["mean"] > 0.5

    def test_robustness_small(self):
        report = run_robustness(100, seeds=1, procs=4, cvs=(0.2,), draws=3, problems=("fft",))
        values = report.data["relative"][0.2]
        assert all(v > 0.5 for v in values)


class TestExtendedSweep:
    def test_small_run(self):
        from repro.bench import run_extended_sweep

        report = run_extended_sweep(target_tasks=80, seeds=1, procs=(2,), ccrs=(0.5, 2.0))
        nsl = report.data["nsl"]
        assert set(nsl) >= {"mcp", "flb"}
        assert nsl["mcp"] == [pytest.approx(1.0)] * 2
        for series in nsl.values():
            for value in series:
                assert 0.3 < value < 3.0
        assert "X8" in report.text
