"""Tests for the independent schedule certifier (repro.verify.certify).

The adversarial half is the point: hand-built invalid schedules — built
with ``Schedule._append`` (no validation) or by corrupting internals — must
each be rejected with the *expected* rule code, proving the checker has
teeth and does not merely rubber-stamp whatever the kernels emit.
"""

import pytest

from repro.core.flb import flb
from repro.graph.taskgraph import TaskGraph
from repro.machine.model import MachineModel
from repro.schedule.schedule import Schedule
from repro.schedulers import SCHEDULERS
from repro.verify import certify, greedy_flavor
from repro.workloads.gallery import paper_example, simple_diamond, two_chains

GALLERY = [paper_example, simple_diamond, two_chains]


def sequential_schedule(graph, num_procs):
    """Cram every task onto processor 0 in topological order (valid but
    maximally non-greedy on a multi-processor machine)."""
    graph.freeze()
    machine = MachineModel(num_procs)
    s = Schedule(graph, machine)
    for t in graph.topological_order:
        earliest = s.prt(0)
        for pred in graph.preds(t):
            arrival = s.finish_of(pred)  # co-located: no comm delay
            if arrival > earliest:
                earliest = arrival
        s._append(t, 0, earliest)
    return s


class TestGalleryCertification:
    @pytest.mark.parametrize("make_graph", GALLERY)
    @pytest.mark.parametrize("algo", ["flb", "etf", "fcp"])
    @pytest.mark.parametrize("procs", [2, 3, 8])
    def test_gallery_schedules_certify(self, make_graph, algo, procs):
        schedule = SCHEDULERS[algo](make_graph(), procs)
        cert = certify(schedule, flavor=greedy_flavor(algo))
        assert cert.ok, cert.render()
        # FLB/ETF carry the greedy certificate; FCP is structural only.
        assert cert.greedy_checked == (algo in ("flb", "etf"))

    @pytest.mark.parametrize("problem", ["lu", "fft", "stencil"])
    def test_fast_path_flb_carries_greedy_certificate(self, problem):
        from repro.cli import _build_problem

        graph = _build_problem(problem, 150, 1.0, 0)
        cert = certify(flb(graph, num_procs=4), flavor="flb")
        assert cert.ok, cert.render()
        assert cert.greedy_checked

    def test_nontrivial_machine_models(self):
        g = paper_example()
        machine = MachineModel(3, comm_scale=2.0, latency=0.5)
        cert = certify(flb(g, machine=machine), flavor="flb")
        assert cert.ok, cert.render()

    def test_greedy_flavor_mapping(self):
        assert greedy_flavor("flb") == "flb"
        assert greedy_flavor("etf") == "etf"
        assert greedy_flavor("fcp") is None
        assert greedy_flavor("mcp") is None

    def test_unknown_flavor_rejected(self):
        s = flb(paper_example(), num_procs=2)
        with pytest.raises(ValueError):
            certify(s, flavor="dls")


class TestStructuralMutants:
    def test_s001_missing_task(self):
        g = paper_example()
        g.freeze()
        s = Schedule(g, MachineModel(2))
        s._append(0, 0, 0.0)  # only one of eight tasks placed
        cert = certify(s)
        assert not cert.ok
        assert "S001" in cert.codes()
        assert any("not scheduled" in v.message for v in cert.violations)

    def test_s001_duplicate_placement(self):
        g = simple_diamond()
        g.freeze()
        s = flb(g, num_procs=2)
        # Corrupt: append task 0 a second time behind the schedule's back.
        s._proc_tasks[1].append(0)
        cert = certify(s)
        assert any(
            v.code == "S001" and "scheduled 2 times" in v.message
            for v in cert.violations
        )

    def test_s002_negative_start(self):
        g = simple_diamond()
        g.freeze()
        s = flb(g, num_procs=2)
        t = s.proc_tasks(0)[0]
        s._start[t] = -1.0
        cert = certify(s)
        assert "S002" in cert.codes()

    def test_s003_wrong_finish(self):
        g = paper_example()
        s = flb(g, num_procs=3)
        t = s.proc_tasks(0)[0]
        s._finish[t] += 0.5
        cert = certify(s)
        assert "S003" in cert.codes()

    def test_s004_overlap(self):
        g = TaskGraph()
        g.add_task(2.0)
        g.add_task(2.0)
        g.freeze()
        s = Schedule(g, MachineModel(1))
        s._append(0, 0, 0.0)
        # Starts while task 0 is still running on the same processor.
        s._start[1] = 1.0
        s._finish[1] = 3.0
        s._placed[1] = True
        s._num_placed += 1
        s._proc_tasks[0].append(1)
        if s._finish[1] > s._prt[0]:
            s._prt[0] = s._finish[1]
        cert = certify(s)
        assert "S004" in cert.codes()

    def test_s005_comm_delay_violated(self):
        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(1.0)
        g.add_edge(0, 1, 5.0)
        g.freeze()
        s = Schedule(g, MachineModel(2))
        s._append(0, 0, 0.0)
        # Task 1 on the *other* processor at t=1: the message needs 5 more.
        s._append(1, 1, 1.0)
        cert = certify(s)
        assert "S005" in cert.codes()
        assert any("message arrival" in v.message for v in cert.violations)

    def test_s005_ok_when_colocated(self):
        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(1.0)
        g.add_edge(0, 1, 5.0)
        g.freeze()
        s = Schedule(g, MachineModel(2))
        s._append(0, 0, 0.0)
        s._append(1, 0, 1.0)  # same processor: comm is free
        assert certify(s).ok

    def test_s006_makespan_mismatch(self):
        g = paper_example()
        s = flb(g, num_procs=3)
        s._prt[0] += 5.0  # reported PRT/makespan no longer match placements
        cert = certify(s)
        assert "S006" in cert.codes()

    def test_certificate_shape(self):
        g = paper_example()
        s = flb(g, num_procs=3)
        s._prt[0] += 5.0
        doc = certify(s).to_dict()
        assert doc["ok"] is False
        assert doc["violations"][0]["code"] == "S006"
        text = certify(s).render()
        assert "S006" in text


class TestGreedyMutants:
    def test_f001_sequential_flb_schedule_rejected(self):
        """A valid-but-serial schedule passes structurally and fails F001."""
        s = sequential_schedule(paper_example(), 2)
        structural = certify(s)
        assert structural.ok, structural.render()
        cert = certify(s, flavor="flb")
        assert not cert.ok
        assert cert.codes() == ("F001",)

    def test_f001_also_fires_for_etf_flavor(self):
        s = sequential_schedule(paper_example(), 2)
        cert = certify(s, flavor="etf")
        assert cert.codes() == ("F001",)

    def test_f002_ep_preferred_tie_rejected(self):
        """FLB with the tie rule ablated picks the EP task on a tie; the
        certificate catches exactly that (F002, not F001 — the start time
        is still greedy-minimal)."""
        g = TaskGraph()
        a = g.add_task(1.0, name="a")
        c = g.add_task(1.0, name="c")
        g.add_task(2.0, name="e")
        g.add_task(0.5, name="d")
        g.add_edge(a, c, 1.0)
        mutant = flb(g, num_procs=2, prefer_non_ep_on_tie=False)
        cert = certify(mutant, flavor="flb")
        assert not cert.ok
        assert cert.codes() == ("F002",)
        # The same schedule is fine under the plain ETF obligation...
        assert certify(mutant, flavor="etf").ok
        # ...and the faithful FLB run passes the full FLB certificate.
        g2 = TaskGraph()
        a2 = g2.add_task(1.0, name="a")
        c2 = g2.add_task(1.0, name="c")
        g2.add_task(2.0, name="e")
        g2.add_task(0.5, name="d")
        g2.add_edge(a2, c2, 1.0)
        assert certify(flb(g2, num_procs=2), flavor="flb").ok

    def test_greedy_skipped_on_structural_failure(self):
        g = paper_example()
        s = flb(g, num_procs=3)
        s._prt[0] += 5.0
        cert = certify(s, flavor="flb")
        assert not cert.ok
        assert not cert.greedy_checked
        assert all(v.code.startswith("S") for v in cert.violations)

    def test_greedy_skipped_on_incomplete_schedule(self):
        g = paper_example()
        g.freeze()
        s = Schedule(g, MachineModel(2))
        cert = certify(s, flavor="flb")
        assert not cert.greedy_checked


class TestScheduleDelegation:
    def test_violations_messages_preserved(self):
        g = paper_example()
        g.freeze()
        s = Schedule(g, MachineModel(2))
        msgs = s.violations()
        assert len(msgs) == g.num_tasks
        assert all("not scheduled" in m for m in msgs)

    def test_validate_raises_with_codeful_message(self):
        from repro.exceptions import InvalidScheduleError

        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(1.0)
        g.add_edge(0, 1, 5.0)
        g.freeze()
        s = Schedule(g, MachineModel(2))
        s._append(0, 0, 0.0)
        s._append(1, 1, 1.0)
        with pytest.raises(InvalidScheduleError, match="message arrival"):
            s.validate()

    def test_all_schedulers_still_validate(self):
        g = paper_example()
        for name, scheduler in SCHEDULERS.items():
            assert scheduler(g, 3).violations() == [], name


class TestBatchCertification:
    def test_certified_flag_and_cache_gating(self):
        from repro.batch import BatchJob, schedule_many
        from repro.resultcache import ResultCache

        g = paper_example()
        cache = ResultCache(16)
        jobs = [BatchJob(graph=g, procs=2, algo="flb")]
        first = schedule_many(jobs, workers=1, certify=True, cache=cache)[0]
        assert first.ok and first.certified and not first.cached
        again = schedule_many(jobs, workers=1, certify=True, cache=cache)[0]
        assert again.cached and again.certified
        # certify is part of the key: the uncertified request re-runs.
        plain = schedule_many(jobs, workers=1, certify=False, cache=cache)[0]
        assert not plain.cached and not plain.certified

    def test_invalid_schedule_classification(self, monkeypatch):
        import repro.schedulers as schedulers
        from repro.batch import INVALID_SCHEDULE, BatchJob, schedule_many

        def broken(graph, num_procs=None, machine=None):
            procs = machine.num_procs if machine is not None else num_procs
            return sequential_schedule(graph, procs)

        monkeypatch.setitem(schedulers.SCHEDULERS, "flb", broken)
        res = schedule_many(
            [BatchJob(graph=paper_example(), procs=2, algo="flb")],
            workers=1, certify=True,
        )[0]
        assert not res.ok
        assert res.error_kind == INVALID_SCHEDULE
        assert "F001" in res.error
        assert not res.certified

    def test_uncertified_failures_not_cached(self, monkeypatch):
        import repro.schedulers as schedulers
        from repro.batch import BatchJob, schedule_many
        from repro.resultcache import ResultCache

        def broken(graph, num_procs=None, machine=None):
            procs = machine.num_procs if machine is not None else num_procs
            return sequential_schedule(graph, procs)

        monkeypatch.setitem(schedulers.SCHEDULERS, "flb", broken)
        cache = ResultCache(16)
        jobs = [BatchJob(graph=paper_example(), procs=2, algo="flb")]
        schedule_many(jobs, workers=1, certify=True, cache=cache)
        assert len(cache) == 0

    def test_multiworker_certify(self):
        from repro.batch import BatchJob, schedule_many

        jobs = [
            BatchJob(graph=paper_example(), procs=p, algo=a)
            for p in (2, 3) for a in ("flb", "etf", "fcp")
        ]
        results = schedule_many(jobs, workers=2, certify=True)
        assert all(r.ok and r.certified for r in results)
