"""Tests for the repro-sched command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestGenerate:
    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code, text = run_cli(
            capsys, "generate", "--problem", "fft", "--tasks", "100", "-o", str(out)
        )
        assert code == 0
        assert "wrote fft" in text
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-taskgraph"
        assert len(doc["tasks"]) >= 100

    @pytest.mark.parametrize(
        "problem", ["lu", "lu-chain", "laplace", "stencil", "fft", "cholesky"]
    )
    def test_all_problems(self, tmp_path, capsys, problem):
        out = tmp_path / "g.json"
        code, _ = run_cli(
            capsys, "generate", "--problem", problem, "--tasks", "60", "-o", str(out)
        )
        assert code == 0
        assert out.exists()


class TestSchedule:
    def test_generated_workload(self, capsys):
        code, text = run_cli(
            capsys,
            "schedule", "--problem", "stencil", "--tasks", "80",
            "--procs", "3", "--algo", "flb",
        )
        assert code == 0
        assert "makespan" in text
        assert "speedup" in text

    def test_from_file_with_gantt_and_table(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        run_cli(capsys, "generate", "--problem", "lu", "--tasks", "40", "-o", str(out))
        code, text = run_cli(
            capsys,
            "schedule", "--graph", str(out), "--procs", "2",
            "--algo", "mcp", "--gantt", "--table",
        )
        assert code == 0
        assert "P0" in text  # gantt rows
        assert "proc" in text  # placement table header

    def test_every_algorithm(self, capsys):
        from repro.schedulers import SCHEDULERS

        for algo in sorted(SCHEDULERS):
            code, text = run_cli(
                capsys,
                "schedule", "--problem", "fft", "--tasks", "40",
                "--procs", "2", "--algo", algo,
            )
            assert code == 0, algo
            assert "makespan" in text


class TestCompare:
    def test_table_lists_all_algorithms(self, capsys):
        code, text = run_cli(
            capsys, "compare", "--problem", "fft", "--tasks", "60", "--procs", "2"
        )
        assert code == 0
        for algo in ("flb", "etf", "mcp", "dsc-llb"):
            assert algo in text
        assert "NSL" in text


class TestTrace:
    def test_default_is_paper_example(self, capsys):
        code, text = run_cli(capsys, "trace")
        assert code == 0
        assert "t3[2;12/3]" in text
        assert "makespan = 14" in text

    def test_custom_graph(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        run_cli(capsys, "generate", "--problem", "fft", "--tasks", "30", "-o", str(out))
        code, text = run_cli(capsys, "trace", "--graph", str(out), "--procs", "3")
        assert code == 0
        assert "scheduling" in text


class TestExperiment:
    def test_table1(self, capsys):
        code, text = run_cli(capsys, "experiment", "table1")
        assert code == 0
        assert "t7 -> p0, [12 - 14]" in text

    def test_fig3_small(self, capsys, tmp_path):
        out = tmp_path / "report.txt"
        code, text = run_cli(
            capsys,
            "experiment", "fig3", "--tasks", "60", "--seeds", "1", "-o", str(out),
        )
        assert code == 0
        assert "FLB speedup" in text
        assert out.exists()
        assert "FLB speedup" in out.read_text()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--algo", "bogus"])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "bogus"])


class TestAnalyze:
    def test_properties_printed(self, capsys):
        code, text = run_cli(
            capsys, "analyze", "--problem", "cholesky", "--tasks", "80"
        )
        assert code == 0
        for field in ("tasks:", "width:", "critical path:", "ccr:"):
            assert field in text

    def test_from_file(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        run_cli(capsys, "generate", "--problem", "fft", "--tasks", "40", "-o", str(out))
        code, text = run_cli(capsys, "analyze", "--graph", str(out))
        assert code == 0
        assert "width:" in text


class TestExecute:
    def test_contention_free_matches(self, capsys):
        code, text = run_cli(
            capsys, "execute", "--problem", "stencil", "--tasks", "60", "--procs", "3"
        )
        assert code == 0
        assert "matches" in text

    def test_noise_and_contention_flags(self, capsys):
        code, text = run_cli(
            capsys,
            "execute", "--problem", "fft", "--tasks", "60", "--procs", "4",
            "--noise-cv", "0.3", "--bandwidth", "1.0", "--draws", "3",
        )
        assert code == 0
        assert "contended" in text
        assert "perturbed" in text


class TestLint:
    def test_clean_workload(self, capsys):
        code, text = run_cli(capsys, "lint", "--problem", "lu", "--tasks", "80")
        assert code == 0
        assert "clean" in text

    def test_json_output(self, capsys):
        code, text = run_cli(
            capsys, "lint", "--problem", "fft", "--tasks", "60", "--json"
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["ok"] is True
        assert doc["issues"] == []

    def test_malformed_file_reports_all_codes(self, tmp_path, capsys):
        doc = {
            "format": "repro-taskgraph",
            "version": 1,
            "tasks": [{"id": 0, "comp": 1.0}, {"id": 1, "comp": -1.0}],
            "edges": [
                {"src": 0, "dst": 1, "comm": 1.0},
                {"src": 0, "dst": 1, "comm": 2.0},
                {"src": 1, "dst": 0, "comm": 1.0},
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        code, text = run_cli(capsys, "lint", "--graph", str(path))
        assert code == 1
        for rule in ("G001", "G003", "G004"):
            assert rule in text

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        doc = {
            "format": "repro-taskgraph",
            "version": 1,
            "tasks": [
                {"id": 0, "comp": 1.0},
                {"id": 1, "comp": 1.0},
                {"id": 2, "comp": 1.0},
            ],
            "edges": [{"src": 0, "dst": 1, "comm": 1.0}],
        }
        path = tmp_path / "warn.json"
        path.write_text(json.dumps(doc))
        code, _ = run_cli(capsys, "lint", "--graph", str(path))
        assert code == 0  # G006 isolated task is only a warning
        code, _ = run_cli(capsys, "lint", "--graph", str(path), "--strict")
        assert code == 1

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{ not json")
        assert main(["lint", "--graph", str(path)]) == 2


class TestCertify:
    def test_flb_certifies(self, capsys):
        code, text = run_cli(
            capsys, "certify", "--problem", "lu", "--tasks", "80",
            "--procs", "4", "--algo", "flb",
        )
        assert code == 0
        assert "greedy certificate (flb): checked" in text
        assert "valid" in text

    def test_structural_only_algo(self, capsys):
        code, text = run_cli(
            capsys, "certify", "--problem", "fft", "--tasks", "60",
            "--procs", "4", "--algo", "mcp", "--json",
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["ok"] is True
        assert doc["flavor"] is None
        assert doc["algo"] == "mcp"

    def test_from_file(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        run_cli(capsys, "generate", "--problem", "stencil", "--tasks", "50",
                "-o", str(out))
        code, text = run_cli(
            capsys, "certify", "--graph", str(out), "--procs", "2", "--algo", "etf"
        )
        assert code == 0
        assert "greedy certificate (etf): checked" in text


class TestBatchCertify:
    def test_batch_certify_flag(self, capsys):
        code, text = run_cli(
            capsys,
            "batch", "--problems", "lu", "--procs", "2", "--algos", "flb", "etf",
            "--tasks", "60", "--workers", "1", "--certify",
        )
        assert code == 0
        assert "2/2 ok" in text
