"""Tests for the link-contention execution model (extension X5)."""

import pytest

from repro.core import flb
from repro.exceptions import ScheduleError
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.schedulers import SCHEDULERS
from repro.sim import execute, execute_contended
from repro.util.rng import make_rng
from repro.workloads import chain, fft, independent_tasks, lu, paper_example


class TestBasics:
    def test_high_bandwidth_converges_to_contention_free(self):
        g = fft(32, make_rng(0), ccr=2.0)
        s = flb(g, 4)
        free = execute(s)
        contended = execute_contended(s, bandwidth=1e9)
        assert contended.makespan == pytest.approx(free.makespan)
        for t in g.tasks():
            assert contended.start[t] == pytest.approx(free.start[t])

    def test_contention_never_speeds_up(self):
        for bw in (0.5, 1.0, 2.0):
            g = lu(9, make_rng(1), ccr=3.0)
            s = flb(g, 4)
            free = execute(s)
            contended = execute_contended(s, bandwidth=bw)
            assert contended.makespan >= free.makespan - 1e-9

    def test_monotone_in_bandwidth(self):
        g = fft(32, make_rng(2), ccr=5.0)
        s = flb(g, 8)
        spans = [execute_contended(s, bandwidth=bw).makespan for bw in (0.5, 1.0, 2.0, 8.0)]
        for a, b in zip(spans, spans[1:]):
            assert b <= a + 1e-9

    def test_no_communication_unaffected(self):
        g = independent_tasks(12)
        s = flb(g, 4)
        assert execute_contended(s, bandwidth=0.1).makespan == pytest.approx(
            execute(s).makespan
        )

    def test_local_messages_skip_the_port(self):
        # Everything on one processor: all messages local, no contention.
        g = chain(8, make_rng(3), ccr=5.0)
        s = flb(g, 1)
        assert execute_contended(s, bandwidth=0.01).makespan == pytest.approx(
            s.makespan
        )

    def test_rejects_bad_bandwidth(self):
        s = flb(paper_example(), 2)
        with pytest.raises(ValueError):
            execute_contended(s, bandwidth=0.0)

    def test_incomplete_schedule_rejected(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            execute_contended(s)


class TestSerialisation:
    def test_fork_serialises_on_sender_port(self):
        """A root forking two remote children: the second message waits for
        the first transfer to finish."""
        g = TaskGraph()
        root = g.add_task(1.0)
        a = g.add_task(1.0)
        b = g.add_task(1.0)
        g.add_edge(root, a, 4.0)
        g.add_edge(root, b, 4.0)
        g.freeze()
        s = Schedule(g, MachineModel(3))
        s.place(root, 0, 0.0)
        s.place(a, 1, 5.0)  # contention-free: arrival 1 + 4
        s.place(b, 2, 5.0)
        assert s.violations() == []
        result = execute_contended(s, bandwidth=1.0)
        starts = sorted((result.start[a], result.start[b]))
        assert starts[0] == pytest.approx(5.0)  # first transfer: 1 + 4
        assert starts[1] == pytest.approx(9.0)  # second waits for the port

    def test_busy_time_is_comp_only(self):
        g = fft(16, make_rng(4), ccr=5.0)
        s = flb(g, 4)
        result = execute_contended(s, bandwidth=1.0)
        assert sum(result.busy_time) == pytest.approx(g.total_comp())


class TestAcrossSchedulers:
    @pytest.mark.parametrize("algo", ["flb", "mcp", "dsc-llb"])
    def test_terminates_and_valid_for_all(self, algo):
        g = lu(9, make_rng(5), ccr=5.0)
        s = SCHEDULERS[algo](g, 4)
        result = execute_contended(s, bandwidth=1.0)
        assert result.makespan > 0
        # Every task ran exactly once within the makespan.
        assert max(result.finish) == result.makespan

    def test_communication_minimising_schedules_degrade_less(self):
        """DSC-LLB zeroes heavy edges; under severe contention its relative
        degradation should not exceed a communication-oblivious baseline's
        by much.  (Statistical, generous bound.)"""
        g = fft(64, make_rng(6), ccr=5.0)
        ratios = {}
        for algo in ("hlfet", "dsc-llb"):
            s = SCHEDULERS[algo](g, 8)
            free = execute(s).makespan
            contended = execute_contended(s, bandwidth=1.0).makespan
            ratios[algo] = contended / free
        assert ratios["dsc-llb"] < ratios["hlfet"] * 1.5
