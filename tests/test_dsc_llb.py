"""Tests for DSC clustering, LLB mapping, and the DSC-LLB composition."""

import pytest

from repro.exceptions import SchedulerError
from repro.graph import critical_path_length
from repro.machine import MachineModel
from repro.schedulers import dsc, dsc_llb, llb
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fork_join,
    independent_tasks,
    lu,
    paper_example,
    stencil,
)


class TestDsc:
    def test_partition(self):
        g = erdos_dag(30, 0.2, make_rng(0), ccr=2.0)
        c = dsc(g)
        seen = sorted(t for cl in c.clusters for t in cl)
        assert seen == list(range(30))
        for cl_id, cl in enumerate(c.clusters):
            for t in cl:
                assert c.cluster_of[t] == cl_id

    def test_cluster_order_is_topological_and_times_consistent(self):
        g = lu(8, make_rng(1), ccr=3.0)
        c = dsc(g)
        for cl in c.clusters:
            finish = 0.0
            for t in cl:
                assert c.tlevel[t] >= finish - 1e-9  # appended after previous
                finish = c.tlevel[t] + g.comp(t)

    def test_tlevels_respect_dependencies(self):
        g = erdos_dag(25, 0.25, make_rng(2), ccr=1.0)
        c = dsc(g)
        for src, dst, comm in g.edges():
            ft = c.tlevel[src] + g.comp(src)
            if c.cluster_of[src] == c.cluster_of[dst]:
                assert c.tlevel[dst] >= ft - 1e-9
            else:
                assert c.tlevel[dst] >= ft + comm - 1e-9

    def test_chain_collapses_to_one_cluster(self):
        # Zeroing every edge of a chain always reduces the start time.
        g = chain(10, make_rng(3), ccr=4.0)
        c = dsc(g)
        assert c.num_clusters == 1
        assert c.makespan == pytest.approx(g.total_comp())

    def test_independent_tasks_one_cluster_each(self):
        g = independent_tasks(7)
        c = dsc(g)
        assert c.num_clusters == 7
        assert c.makespan == pytest.approx(1.0)

    def test_makespan_bounds(self):
        # Clustered (unbounded procs) makespan is at most serial time and at
        # least the communication-free critical path.
        for seed in range(4):
            g = erdos_dag(30, 0.2, make_rng(seed), ccr=2.0)
            c = dsc(g)
            assert c.makespan <= g.total_comp() + 1e-9
            from repro.graph import static_levels

            assert c.makespan >= max(static_levels(g)) - 1e-9

    def test_clustering_reduces_cp_when_comm_heavy(self):
        # With heavy communication, DSC's virtual makespan must beat the
        # no-clustering bound (the full critical path with communication).
        g = chain(6, None, ccr=10.0)
        c = dsc(g)
        assert c.makespan < critical_path_length(g)

    def test_paper_example_clustering(self):
        g = paper_example()
        c = dsc(g)
        # The heavy t0 -> t2 edge (comm 4) is zeroed first: t0 and t2 end up
        # co-clustered, and the dominant sequence t3 -> t5 -> t7 forms a
        # chain cluster.
        assert c.cluster_of[0] == c.cluster_of[2]
        assert c.cluster_of[3] == c.cluster_of[5] == c.cluster_of[7]
        assert c.makespan <= critical_path_length(g)
        assert c.makespan == pytest.approx(11.0)


class TestLlb:
    def test_paper_example(self):
        g = paper_example()
        s = llb(g, dsc(g), 2)
        assert s.complete
        assert s.violations() == []

    def test_respects_cluster_affinity(self):
        # Once a cluster is mapped, its tasks all run on that processor.
        g = lu(8, make_rng(4), ccr=2.0)
        c = dsc(g)
        s = llb(g, c, 3)
        proc_of_cluster = {}
        for t in g.tasks():
            cl = c.cluster_of[t]
            if cl in proc_of_cluster:
                assert s.proc_of(t) == proc_of_cluster[cl]
            else:
                proc_of_cluster[cl] = s.proc_of(t)

    def test_priority_flag(self):
        g = stencil(6, 5, make_rng(5), ccr=1.0)
        c = dsc(g)
        s_largest = llb(g, c, 3, priority="largest")
        s_least = llb(g, c, 3, priority="least")
        assert s_largest.violations() == []
        assert s_least.violations() == []

    def test_unknown_priority(self):
        g = paper_example()
        with pytest.raises(SchedulerError):
            llb(g, dsc(g), 2, priority="median")

    def test_more_clusters_than_procs(self):
        g = independent_tasks(9)
        s = llb(g, dsc(g), 2)
        assert s.violations() == []
        # Perfect balance on unit tasks: 9 tasks over 2 procs -> makespan 5.
        assert s.makespan == pytest.approx(5.0)


class TestDscLlb:
    def test_valid_on_suite(self):
        for builder in (
            lambda: lu(8, make_rng(6), ccr=0.2),
            lambda: stencil(6, 5, make_rng(7), ccr=5.0),
            lambda: fork_join(3, 6, make_rng(8), ccr=1.0),
        ):
            g = builder()
            for procs in (2, 4):
                s = dsc_llb(g, procs)
                assert s.complete
                assert s.violations() == []

    def test_quality_within_expected_band_of_flb(self):
        # The paper reports DSC-LLB typically within ~20-40% of the one-step
        # algorithms; allow a generous band to keep the test robust.
        from repro.core import flb

        worst = 0.0
        for seed in range(5):
            g = lu(10, make_rng(seed), ccr=1.0)
            ratio = dsc_llb(g, 4).makespan / flb(g, 4).makespan
            worst = max(worst, ratio)
        assert worst < 2.0

    def test_machine_model_passes_through(self):
        g = paper_example()
        m = MachineModel(2, comm_scale=2.0, latency=0.5)
        s = dsc_llb(g, machine=m)
        assert s.violations() == []
