"""Tests for the duplication subsystem: DuplicationSchedule and DSH."""

import pytest
from typing import ClassVar
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import flb
from repro.duplication import DuplicationSchedule, dsh
from repro.exceptions import ScheduleError
from repro.graph import TaskGraph, static_levels
from repro.machine import MachineModel
from repro.metrics import time_scheduler
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fft,
    fork_join,
    independent_tasks,
    lu,
    out_tree,
    paper_example,
    stencil,
)


class TestDuplicationSchedule:
    def test_place_and_query(self):
        g = paper_example()
        s = DuplicationSchedule(g, MachineModel(2))
        c = s.place_copy(0, 0, 0.0)
        assert c.finish == 2.0
        assert s.prt(0) == 2.0
        assert s.is_scheduled(0)
        assert not s.complete
        assert len(s.copies_of(0)) == 1

    def test_multiple_copies_different_procs(self):
        g = paper_example()
        s = DuplicationSchedule(g, MachineModel(2))
        s.place_copy(0, 0, 0.0)
        s.place_copy(0, 1, 0.0)
        assert len(s.copies_of(0)) == 2
        assert s.total_copies() == 2

    def test_duplicate_on_same_proc_rejected(self):
        g = paper_example()
        s = DuplicationSchedule(g, MachineModel(2))
        s.place_copy(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place_copy(0, 0, 5.0)

    def test_place_before_prt_rejected(self):
        g = paper_example()
        s = DuplicationSchedule(g, MachineModel(1))
        s.place_copy(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place_copy(1, 0, 1.0)

    def test_requires_frozen(self):
        g = TaskGraph()
        g.add_task(1.0)
        with pytest.raises(ScheduleError):
            DuplicationSchedule(g, MachineModel(1))

    def test_arrival_uses_best_copy(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(1.0)
        g.add_edge(a, b, 10.0)
        g.freeze()
        s = DuplicationSchedule(g, MachineModel(2))
        s.place_copy(a, 0, 0.0)
        # Remote copy would arrive at 11 on p1; add a local copy.
        s.place_copy(a, 1, 3.0)
        assert s.arrival_of_edge(a, b, 1) == pytest.approx(4.0)
        assert s.arrival_of_edge(a, b, 0) == pytest.approx(1.0)

    def test_violations_detect_missing_and_early(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(1.0)
        g.add_edge(a, b, 5.0)
        g.freeze()
        s = DuplicationSchedule(g, MachineModel(2))
        s.place_copy(b, 1, 0.0)  # no copy of a anywhere, and b starts at 0
        problems = s.violations()
        assert any("no copy" in p for p in problems)
        s.place_copy(a, 0, 0.0)
        problems = s.violations()
        assert any("before message" in p for p in problems)
        with pytest.raises(ScheduleError):
            s.validate()

    def test_duplication_ratio(self):
        g = paper_example()
        s = DuplicationSchedule(g, MachineModel(2))
        for t in g.topological_order:
            s.place_copy(t, 0, s.prt(0))
        assert s.duplication_ratio() == 1.0
        assert s.complete


class TestDsh:
    WORKLOADS: ClassVar = [
        lambda: paper_example(),
        lambda: lu(8, make_rng(0), ccr=5.0),
        lambda: fft(16, make_rng(1), ccr=2.0),
        lambda: stencil(5, 5, make_rng(2), ccr=0.2),
        lambda: fork_join(3, 5, make_rng(3), ccr=3.0),
        lambda: out_tree(4, 2, make_rng(4), ccr=5.0),
    ]

    @pytest.mark.parametrize("builder", WORKLOADS)
    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_valid_complete(self, builder, procs):
        s = dsh(builder(), procs)
        assert s.complete
        assert s.violations() == []

    def test_paper_example_beats_flb(self):
        # Duplicating t0 lets both branches start locally: makespan 10 < 13.
        d = dsh(paper_example(), 4)
        f = flb(paper_example(), 4)
        assert d.makespan < f.makespan
        assert d.duplication_ratio() > 1.0

    def test_out_tree_duplication_wins_big(self):
        """Fork-only trees are duplication's best case: every subtree can
        own a copy of its ancestors."""
        g = out_tree(4, 2, make_rng(5), ccr=5.0)
        d = dsh(g, 8).makespan
        f = flb(g, 8).makespan
        assert d <= f + 1e-9

    def test_never_worse_than_its_no_duplication_mode(self):
        for seed in range(5):
            g = erdos_dag(25, 0.2, make_rng(seed), ccr=4.0)
            with_dup = dsh(g, 4, max_chain=8).makespan
            without = dsh(g, 4, max_chain=0).makespan
            assert with_dup <= without + 1e-9

    def test_max_chain_zero_means_no_duplication(self):
        g = lu(8, make_rng(6), ccr=5.0)
        s = dsh(g, 4, max_chain=0)
        assert s.duplication_ratio() == 1.0

    def test_rejects_negative_chain(self):
        with pytest.raises(ValueError):
            dsh(paper_example(), 2, max_chain=-1)

    def test_single_proc_serialises(self):
        g = erdos_dag(20, 0.25, make_rng(7), ccr=2.0)
        s = dsh(g, 1)
        assert s.makespan == pytest.approx(g.total_comp())
        assert s.duplication_ratio() == 1.0

    def test_chain_no_duplication_possible(self):
        s = dsh(chain(6, make_rng(8), ccr=5.0), 3)
        assert s.duplication_ratio() == 1.0

    def test_independent_tasks_balanced(self):
        s = dsh(independent_tasks(8), 4)
        assert s.makespan == pytest.approx(2.0)

    def test_costs_more_than_flb(self):
        """The paper's taxonomy: duplication costs significantly more.  The
        gap widens with P (DSH scans every processor, FLB pays log P) and
        with fan-in (duplication-chain evaluation)."""
        g = lu(32, make_rng(9), ccr=5.0)  # V ~ 530, joins everywhere
        t_dsh = time_scheduler(dsh, g, 16, repeats=1)
        t_flb = time_scheduler(flb, g, 16, repeats=1)
        assert t_dsh > 3.0 * t_flb

    def test_makespan_lower_bound(self):
        g = lu(8, make_rng(10), ccr=1.0)
        s = dsh(g, 4)
        assert s.makespan >= max(static_levels(g)) - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.0, 0.5),
    ccr=st.floats(0.1, 6.0),
    procs=st.integers(1, 5),
    seed=st.integers(0, 5000),
)
def test_property_dsh_valid_on_random_dags(n, p, ccr, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
    s = dsh(g, procs)
    assert s.complete
    assert s.violations() == []
