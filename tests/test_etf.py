"""ETF-specific tests: the greedy earliest-start criterion and its
relationship to FLB (Theorem 3 equivalence up to tie-breaking)."""

import pytest

from repro.core import brute_force_min_est, flb
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.schedulers import etf
from repro.schedulers.base import ReadyTracker
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, paper_example, stencil


class TestEtfBehaviour:
    def test_paper_example(self):
        s = etf(paper_example(), 2)
        assert s.violations() == []
        # ETF shares FLB's selection criterion; on the example both reach
        # makespan 14 (ties are broken differently but harmlessly here).
        assert s.makespan == 14.0

    def test_greedy_criterion_holds_stepwise(self):
        """Replay ETF's schedule and verify each placement achieved the
        global minimum EST at its iteration."""
        g = erdos_dag(25, 0.2, make_rng(1), ccr=2.0)
        machine = MachineModel(3)
        final = etf(g, machine=machine)
        order = sorted(g.tasks(), key=lambda t: (final.start_of(t), final.proc_of(t)))
        # Rebuild incrementally in ETF's own placement order: group by start
        # time is not enough (ties), so re-derive the commit order from
        # start times; for equal starts the relative order cannot violate
        # the greedy property since both achieved the same minimum.
        replay = Schedule(g, machine)
        tracker = ReadyTracker(g)
        for task in order:
            best, _ = brute_force_min_est(replay, tracker.ready)
            assert final.start_of(task) == pytest.approx(best)
            replay.place(task, final.proc_of(task), final.start_of(task))
            tracker.remove_ready(task)
            tracker.mark_scheduled(task)

    def test_flb_matches_etf_start_times_stepwise(self):
        """FLB and ETF pick (possibly different) pairs with the same minimum
        start time at every iteration of their own runs."""
        g = stencil(6, 6, make_rng(2), ccr=1.0)
        s_flb = flb(g, 4)
        s_etf = etf(g, 4)
        # Not necessarily equal schedules, but both valid and close.
        assert s_flb.violations() == []
        assert s_etf.violations() == []
        assert s_flb.makespan == pytest.approx(s_etf.makespan, rel=0.25)

    def test_prefers_higher_bottom_level_on_tie(self):
        # Entry fork: a -> (b, c); b has the longer remaining path, so on
        # the EST tie ETF must take b first.
        g = TaskGraph()
        a = g.add_task(1.0, name="a")
        b = g.add_task(1.0, name="b")
        c = g.add_task(1.0, name="c")
        d = g.add_task(5.0, name="d")
        g.add_edge(a, b, 0.0)
        g.add_edge(a, c, 0.0)
        g.add_edge(b, d, 0.0)
        g.freeze()
        s = etf(g, 1)
        assert s.start_of(b) < s.start_of(c)

    def test_keeps_processors_busy(self):
        # With plenty of independent work, no processor idles at time 0.
        g = erdos_dag(40, 0.02, make_rng(3), ccr=0.1)
        s = etf(g, 4)
        busy_from_zero = sum(
            1 for p in range(4) if s.proc_tasks(p) and s.start_of(s.proc_tasks(p)[0]) == 0.0
        )
        assert busy_from_zero == 4
