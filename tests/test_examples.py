"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_output_mentions_makespan():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "makespan" in proc.stdout


def test_paper_trace_reproduces_table1():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "paper_trace.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "t3[2;12/3]" in proc.stdout
    assert "makespan = 14" in proc.stdout
    assert "Theorem 3 verified" in proc.stdout
