"""The CSR fast paths must be *bit-identical* to the implementations they
replaced.

``docs/performance.md``: the fast kernels (``_flb_fast``, the CSR rewrites
of ETF and FCP, ``Schedule._append``) are pure constant-factor work — the
algorithms' decisions, tie-breaks, and floating-point arithmetic are
unchanged.  That claim is checkable exactly, so these tests use ``==`` on
starts and makespans, never ``approx``:

* FLB: ``flb`` (fast) vs ``_flb_observed`` with no observer (the preserved
  seed loop) vs :func:`repro.core.reference.flb_reference` (brute force),
  across random DAGs swept over V, CCR and P, and across machine variants
  (latency, comm scaling, heterogeneous speeds).
* The *observed* path still reproduces the paper's Table 1 trace, so the
  dispatch on ``observer`` cost no fidelity.
* ETF and FCP: against brute-force re-implementations written here from the
  generic ``est_on``/``emt_on`` helpers — independent of the CSR code they
  check.
* A hypothesis sweep hunts for divergence on arbitrary layered DAGs.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TraceRecorder, flb
from repro.core.flb import _flb_observed
from repro.core.reference import flb_reference
from repro.graph.properties import bottom_levels
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.schedulers import etf, fcp
from repro.schedulers.base import emt_on, est_on, resolve_machine
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, laplace, layered_random, lu, paper_example, stencil


def assert_bit_identical(a: Schedule, b: Schedule, label: str) -> None:
    graph = a.graph
    for t in graph.tasks():
        assert a.proc_of(t) == b.proc_of(t), f"{label}: task {t} on different proc"
        assert a.start_of(t) == b.start_of(t), f"{label}: task {t} start differs"
    assert a.makespan == b.makespan, f"{label}: makespan differs"


def seed_flb(graph, procs, machine=None):
    return _flb_observed(graph, resolve_machine(procs, machine), None, True)


# ---------------------------------------------------------------------------
# FLB: fast vs observed vs brute force
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("v,density", [(20, 0.3), (60, 0.15), (150, 0.08)])
@pytest.mark.parametrize("ccr", [0.2, 1.0, 5.0])
@pytest.mark.parametrize("procs", [1, 2, 8, 32])
def test_flb_three_way_on_random_dags(v, density, ccr, procs):
    graph = erdos_dag(v, density, make_rng(v + procs), ccr=ccr)
    fast = flb(graph, procs)
    observed = seed_flb(graph, procs)
    reference = flb_reference(graph, procs)
    assert_bit_identical(fast, observed, "fast vs observed")
    assert_bit_identical(fast, reference, "fast vs reference")


@pytest.mark.parametrize(
    "machine",
    [
        MachineModel(3, latency=0.5),
        MachineModel(4, comm_scale=2.5),
        MachineModel(3, latency=0.25, comm_scale=0.5),
        MachineModel(4, speeds=(1.0, 2.0, 0.5, 1.5)),
        MachineModel(3, latency=0.1, comm_scale=1.5, speeds=(2.0, 1.0, 1.0)),
    ],
)
def test_flb_three_way_on_machine_variants(machine):
    graph = layered_random(8, 6, make_rng(3), edge_density=0.3, ccr=2.0)
    fast = flb(graph, machine=machine)
    observed = _flb_observed(graph, machine, None, True)
    reference = flb_reference(graph, machine=machine)
    assert_bit_identical(fast, observed, "fast vs observed")
    assert_bit_identical(fast, reference, "fast vs reference")


@pytest.mark.parametrize("prefer", [True, False])
def test_flb_tie_ablation_matches_observed(prefer):
    # Unit weights maximise EP/non-EP ties — the knob's whole domain.
    graph = erdos_dag(40, 0.25, None, ccr=1.0)
    machine = resolve_machine(4, None)
    fast = flb(graph, 4, prefer_non_ep_on_tie=prefer)
    observed = _flb_observed(graph, machine, None, prefer)
    assert_bit_identical(fast, observed, f"prefer_non_ep_on_tie={prefer}")


def test_observed_path_still_traces_table1():
    """Supplying an observer selects the snapshot path; its schedule must
    equal the fast path's and its trace must stay complete and ordered."""
    graph = paper_example()
    recorder = TraceRecorder(graph)
    observed = flb(graph, 2, observer=recorder)
    fast = flb(graph, 2)
    assert_bit_identical(fast, observed, "table1 graph")
    assert len(recorder.rows) == graph.num_tasks
    assert [row.task for row in recorder.rows] == [
        row.task for row in sorted(recorder.rows, key=lambda r: r.start)
    ]
    starts = [row.start for row in recorder.rows]
    assert starts == sorted(starts)


@pytest.mark.parametrize(
    "builder",
    [
        lambda: lu(9, make_rng(2), ccr=5.0),
        lambda: laplace(5, 5, make_rng(2), ccr=0.2),
        lambda: stencil(8, 8, make_rng(2), ccr=1.0),
    ],
)
def test_flb_fast_vs_observed_on_paper_workloads(builder):
    graph = builder()
    for procs in (2, 8):
        assert_bit_identical(
            flb(graph, procs), seed_flb(graph, procs), "paper workload"
        )


# ---------------------------------------------------------------------------
# ETF and FCP: CSR kernels vs brute-force re-implementations
# ---------------------------------------------------------------------------


def etf_brute(graph, procs, machine=None):
    """ETF semantics from the generic helpers: full (ready x proc) scan,
    minimum EST, ties by (-BL, task, proc)."""
    graph.freeze()
    machine = resolve_machine(procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    remaining = [graph.in_degree(t) for t in graph.tasks()]
    ready = set(graph.entry_tasks)
    while ready:
        best = None
        for task in sorted(ready):
            for proc in machine.procs:
                est = est_on(schedule, task, proc)
                key = (est, -bl[task], task, proc)
                if best is None or key < best:
                    best = key
                    choice = (task, proc, est)
        task, proc, est = choice
        schedule.place(task, proc, est)
        ready.discard(task)
        for succ in graph.succs(task):
            remaining[succ] -= 1
            if not remaining[succ]:
                ready.add(succ)
    return schedule


def fcp_brute(graph, procs, machine=None):
    """FCP semantics from the generic helpers: highest-BL ready task, two
    candidate processors (EP with ties by (arrival, FT, id), earliest-idle),
    EP wins ties."""
    graph.freeze()
    machine = resolve_machine(procs, machine)
    schedule = Schedule(graph, machine)
    bl = bottom_levels(graph)
    remaining = [graph.in_degree(t) for t in graph.tasks()]
    ready = [(-bl[t], t) for t in graph.entry_tasks]
    heapq.heapify(ready)
    while ready:
        _, task = heapq.heappop(ready)
        ep, key = 0, (-1.0, -1.0, -1)
        for pred in graph.preds(task):
            ft = schedule.finish_of(pred)
            arrival = ft + machine.remote_delay(graph.comm(pred, task))
            if (arrival, ft, pred) > key:
                key = (arrival, ft, pred)
                ep = schedule.proc_of(pred)
        idle = min(machine.procs, key=lambda p: (schedule.prt(p), p))
        est_ep = est_on(schedule, task, ep)
        est_idle = max(key[0], schedule.prt(idle))
        if est_ep <= est_idle:
            proc, est = ep, est_ep
        else:
            proc, est = idle, est_idle
        schedule.place(task, proc, est)
        for succ in graph.succs(task):
            remaining[succ] -= 1
            if not remaining[succ]:
                heapq.heappush(ready, (-bl[succ], succ))
    return schedule


@pytest.mark.parametrize("procs", [1, 2, 4, 8])
@pytest.mark.parametrize("ccr", [0.2, 1.0, 5.0])
def test_etf_matches_brute_force(procs, ccr):
    graph = erdos_dag(35, 0.2, make_rng(procs), ccr=ccr)
    assert_bit_identical(etf(graph, procs), etf_brute(graph, procs), "etf")


@pytest.mark.parametrize("procs", [1, 2, 4, 8])
@pytest.mark.parametrize("ccr", [0.2, 1.0, 5.0])
def test_fcp_matches_brute_force(procs, ccr):
    graph = erdos_dag(45, 0.2, make_rng(procs + 100), ccr=ccr)
    assert_bit_identical(fcp(graph, procs), fcp_brute(graph, procs), "fcp")


def test_etf_fcp_brute_on_machine_variants():
    graph = layered_random(6, 5, make_rng(9), edge_density=0.35, ccr=2.0)
    machine = MachineModel(3, latency=0.5, comm_scale=1.5)
    assert_bit_identical(
        etf(graph, machine=machine), etf_brute(graph, None, machine), "etf machine"
    )
    assert_bit_identical(
        fcp(graph, machine=machine), fcp_brute(graph, None, machine), "fcp machine"
    )


# ---------------------------------------------------------------------------
# Array kernels: object / array / interpreted-njit-kernel (/ numba) matrix
# ---------------------------------------------------------------------------


def _kernel_backends():
    """Every FLB implementation that must agree bit-for-bit, as
    (label, callable(graph, procs, machine, prefer)) pairs.  The njit
    source is always exercised under the interpreter; the compiled form is
    added when numba is importable."""
    from repro.core.flb_array import (
        _flb_array_run_interpreted,
        flb_array,
        numba_available,
    )

    backends = [
        ("object", lambda g, p, m, pref: flb(
            g, p, machine=m, prefer_non_ep_on_tie=pref)),
        ("seed", lambda g, p, m, pref: _flb_observed(
            g, resolve_machine(p, m), None, pref)),
        ("array", lambda g, p, m, pref: flb_array(
            g, p, machine=m, prefer_non_ep_on_tie=pref, backend="array")),
        ("kernel-interpreted", lambda g, p, m, pref: _flb_array_run_interpreted(
            g, resolve_machine(p, m), pref)[0]),
    ]
    if numba_available():
        backends.append(
            ("numba", lambda g, p, m, pref: flb_array(
                g, p, machine=m, prefer_non_ep_on_tie=pref, backend="numba"))
        )
    return backends


@pytest.mark.parametrize("v,density", [(20, 0.3), (80, 0.12), (200, 0.05)])
@pytest.mark.parametrize("procs", [1, 2, 8, 32])
def test_kernel_matrix_on_random_dags(v, density, procs):
    graph = erdos_dag(v, density, make_rng(v * 31 + procs), ccr=1.0)
    backends = _kernel_backends()
    ref_label, ref_fn = backends[0]
    ref = ref_fn(graph, procs, None, True)
    for label, fn in backends[1:]:
        assert_bit_identical(
            ref, fn(graph, procs, None, True), f"{ref_label} vs {label}"
        )


@pytest.mark.parametrize(
    "machine",
    [
        MachineModel(3, latency=0.5),
        MachineModel(4, comm_scale=2.5),
        MachineModel(4, speeds=(1.0, 2.0, 0.5, 1.5)),
        MachineModel(3, latency=0.1, comm_scale=1.5, speeds=(2.0, 1.0, 1.0)),
    ],
)
@pytest.mark.parametrize("prefer", [True, False])
def test_kernel_matrix_on_machine_variants(machine, prefer):
    graph = layered_random(7, 6, make_rng(11), edge_density=0.3, ccr=2.0)
    backends = _kernel_backends()
    ref = backends[0][1](graph, None, machine, prefer)
    for label, fn in backends[1:]:
        assert_bit_identical(
            ref, fn(graph, None, machine, prefer), f"object vs {label}"
        )


def test_kernel_fuzz_200_random_dags_with_certify():
    """200-graph fuzz sweep: every backend agrees with the object kernel on
    every graph, and the array schedule passes the independent certifier
    (structural invariants S001.. plus the FLB greedy certificate F001/F002).
    """
    from repro.verify import certify as certify_schedule
    from repro.verify import greedy_flavor
    from repro.workloads import fork_join

    backends = _kernel_backends()
    flavor = greedy_flavor("flb")
    for i in range(200):
        rng = make_rng(10_000 + i)
        kind = i % 3
        if kind == 0:
            graph = erdos_dag(
                10 + (i * 7) % 50, 0.08 + (i % 5) * 0.06, rng,
                ccr=(0.2, 1.0, 5.0)[i % 3],
            )
        elif kind == 1:
            graph = layered_random(
                2 + i % 6, 2 + i % 5, rng, edge_density=0.15 + (i % 4) * 0.2,
                ccr=(0.2, 1.0, 5.0)[(i // 3) % 3],
            )
        else:
            graph = fork_join(1 + i % 4, 2 + i % 6, rng)
        procs = (1, 2, 3, 8)[i % 4]
        prefer = (i // 2) % 2 == 0
        ref = backends[0][1](graph, procs, None, prefer)
        schedules = {"object": ref}
        for label, fn in backends[1:]:
            schedules[label] = fn(graph, procs, None, prefer)
            assert_bit_identical(
                ref, schedules[label], f"fuzz graph {i}: object vs {label}"
            )
        if prefer:  # the certifier's greedy certificate assumes the paper rule
            cert = certify_schedule(schedules["array"], flavor=flavor)
            assert cert.ok, f"fuzz graph {i}: {[v.code for v in cert.violations]}"


# ---------------------------------------------------------------------------
# Hypothesis sweep
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    layers=st.integers(2, 7),
    width=st.integers(2, 6),
    density=st.floats(0.1, 0.9),
    ccr=st.sampled_from([0.2, 1.0, 5.0]),
    procs=st.sampled_from([1, 2, 3, 8]),
    seed=st.integers(0, 10_000),
)
def test_flb_fast_never_diverges(layers, width, density, ccr, procs, seed):
    graph = layered_random(
        layers, width, make_rng(seed), edge_density=density, ccr=ccr
    )
    fast = flb(graph, procs)
    assert_bit_identical(fast, seed_flb(graph, procs), "hypothesis observed")
    assert_bit_identical(fast, flb_reference(graph, procs), "hypothesis reference")
