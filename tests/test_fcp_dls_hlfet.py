"""Tests for the FCP, DLS, and HLFET baselines."""

import pytest

from repro.core import flb
from repro.graph import TaskGraph, static_levels
from repro.schedulers import dls, fcp, hlfet
from repro.util.rng import make_rng
from repro.workloads import chain, erdos_dag, fft, independent_tasks, paper_example


class TestFcp:
    def test_paper_example_valid(self):
        s = fcp(paper_example(), 2)
        assert s.violations() == []
        assert s.makespan <= 16.0

    def test_priority_order_is_bottom_level(self):
        # With one processor FCP serialises tasks in bottom-level order
        # among ready tasks; the first scheduled entry task must be the one
        # with the largest bottom level.
        g = TaskGraph()
        a = g.add_task(1.0)  # short branch entry
        b = g.add_task(1.0)  # long branch entry
        c = g.add_task(9.0)
        g.add_edge(b, c, 0.0)
        g.freeze()
        s = fcp(g, 1)
        assert s.start_of(b) < s.start_of(a)

    def test_two_processor_selection_is_sound(self):
        # FCP's placement is one of {enabling proc, earliest idle proc};
        # either way the schedule must be valid and the start time equals
        # the better of the two choices at commit time (validity is checked
        # globally; here we sanity-check load spreading).
        g = independent_tasks(8)
        s = fcp(g, 4)
        assert s.violations() == []
        assert s.makespan == pytest.approx(2.0)

    def test_close_to_flb_quality(self):
        g = fft(16, make_rng(1), ccr=1.0)
        m_fcp = fcp(g, 4).makespan
        m_flb = flb(g, 4).makespan
        assert m_fcp == pytest.approx(m_flb, rel=0.35)


class TestDls:
    def test_paper_example_valid(self):
        s = dls(paper_example(), 2)
        assert s.violations() == []

    def test_dynamic_level_selection(self):
        # Two ready tasks; DLS must prefer the higher SL - EST combination.
        g = TaskGraph()
        g.add_task(1.0)  # "a": ready but with the lower dynamic level
        b = g.add_task(1.0)
        c = g.add_task(10.0)
        g.add_edge(b, c, 0.0)
        g.freeze()
        s = dls(g, 1)
        # DL(b) = SL(b) - 0 = 11 > DL(a) = 1.
        assert s.start_of(b) == 0.0

    def test_quality_reasonable(self):
        g = erdos_dag(40, 0.15, make_rng(2), ccr=1.0)
        s = dls(g, 4)
        assert s.makespan <= g.total_comp()


class TestHlfet:
    def test_static_order_respected(self):
        g = paper_example()
        sl = static_levels(g)
        s = hlfet(g, 1)
        order = sorted(g.tasks(), key=lambda t: s.start_of(t))
        values = [sl[t] for t in order]
        assert values == sorted(values, reverse=True)

    def test_chain_stays_serial(self):
        g = chain(6, make_rng(3), ccr=5.0)
        s = hlfet(g, 3)
        assert s.violations() == []

    def test_ignores_comm_in_priorities(self):
        # HLFET orders by SL only; two graphs differing only in comm weights
        # produce the same priority order (placement may differ).
        g1 = chain(5, None, ccr=0.1)
        g2 = chain(5, None, ccr=9.0)
        assert [static_levels(g1)[t] for t in g1.tasks()] == [
            static_levels(g2)[t] for t in g2.tasks()
        ]
