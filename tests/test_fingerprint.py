"""``TaskGraph.fingerprint()``: the content identity of the graph plane.

The fingerprint must be *stable* — identical across edge insertion order,
``copy()``, pickling, and process boundaries — and *sensitive* — different
whenever any computation cost, communication cost, edge, or task name
changes.  Both the shared-memory registry and the result cache are
addressed by it, so these properties are load-bearing.
"""

import os
import pickle
import subprocess
import sys
import textwrap

from repro.graph.taskgraph import TaskGraph
from repro.util.rng import make_rng
from repro.workloads import lu


def _diamond(edge_order="forward", b_comp=3.0, bc_name=None, d_comm=1.5):
    g = TaskGraph()
    a = g.add_task(2.0, name="a")
    b = g.add_task(b_comp, name=bc_name or "b")
    c = g.add_task(4.0)
    d = g.add_task(5.0, name="d")
    edges = [(a, b, 1.0), (a, c, 2.0), (b, d, d_comm), (c, d, 0.5)]
    if edge_order == "reversed":
        edges = list(reversed(edges))
    for src, dst, comm in edges:
        g.add_edge(src, dst, comm=comm)
    return g


class TestStability:
    def test_edge_insertion_order_irrelevant(self):
        assert _diamond("forward").fingerprint() == _diamond("reversed").fingerprint()

    def test_freeze_does_not_change_it(self):
        g = _diamond()
        before = g.fingerprint()
        g.freeze()
        assert g.fingerprint() == before
        # Frozen graphs cache the digest; the cached answer must agree.
        assert g.fingerprint() == before

    def test_copy_and_mutable_copy_agree(self):
        g = _diamond().freeze()
        assert g.copy().fingerprint() == g.fingerprint()
        assert g.copy(mutable=True).fingerprint() == g.fingerprint()

    def test_pickle_roundtrip(self):
        g = lu(6, make_rng(3), ccr=2.0)
        assert pickle.loads(pickle.dumps(g)).fingerprint() == g.fingerprint()

    def test_unnamed_equals_default_name(self):
        # name(t) falls back to "t<id>"; an explicit "t<id>" is the same
        # effective name, so JSON round-trips keep the fingerprint.
        g1 = TaskGraph()
        g1.add_task(1.0)
        g2 = TaskGraph()
        g2.add_task(1.0, name="t0")
        assert g1.fingerprint() == g2.fingerprint()

    def test_stable_across_process_boundary(self):
        g = lu(7, make_rng(0), ccr=1.0)
        script = textwrap.dedent(
            """
            from repro.workloads import lu
            from repro.util.rng import make_rng

            print(lu(7, make_rng(0), ccr=1.0).fingerprint(), end="")
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env=env, check=True,
        )
        assert out.stdout == g.fingerprint()

    def test_relabeling_changes_it(self):
        # The fingerprint is an id-level identity, not a graph-isomorphism
        # hash: relabeled ids are a different content.
        g = _diamond().freeze()
        assert g.relabeled([1, 0, 2, 3]).fingerprint() != g.fingerprint()


class TestSensitivity:
    def test_comp_change(self):
        assert _diamond(b_comp=3.5).fingerprint() != _diamond().fingerprint()

    def test_comm_change(self):
        assert _diamond(d_comm=1.0).fingerprint() != _diamond().fingerprint()

    def test_name_change(self):
        assert _diamond(bc_name="bb").fingerprint() != _diamond().fingerprint()

    def test_set_name_changes_it(self):
        g = _diamond()
        before = g.fingerprint()
        g.set_name(2, "c")
        assert g.fingerprint() != before

    def test_extra_edge(self):
        g1 = _diamond()
        g2 = _diamond()
        g2.add_edge(0, 3, comm=0.0)
        assert g1.fingerprint() != g2.fingerprint()

    def test_extra_task(self):
        g1 = _diamond()
        g2 = _diamond()
        g2.add_task(1.0)
        assert g1.fingerprint() != g2.fingerprint()

    def test_distinct_workloads_distinct(self):
        fps = {
            lu(n, make_rng(seed), ccr=ccr).fingerprint()
            for n in (5, 6)
            for seed in (0, 1)
            for ccr in (0.5, 2.0)
        }
        assert len(fps) == 8
